#!/usr/bin/env bash
# Tier-1 gate: the checks every PR must keep green.
#
#   release build  →  full test suite  →  bench smoke (compile + run each
#   benchmark once in --test mode, no timing)
#
# Run from the repository root: ./scripts/tier1.sh

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release --workspace

echo "== tier-1: formatting =="
cargo fmt --all -- --check

echo "== tier-1: clippy =="
cargo clippy --workspace -- -D warnings

echo "== tier-1: docs (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== tier-1: tests =="
cargo test -q --workspace

echo "== tier-1: low-memory batteries (forced eviction + spill) =="
MVDESIGN_MEM_BUDGET=256 cargo test -q --release -p mvdesign --test engine_morsel
MVDESIGN_MEM_BUDGET=256 cargo test -q --release -p mvdesign --test engine_paged
MVDESIGN_MEM_BUDGET=256 cargo test -q --release -p mvdesign --test engine_delta
MVDESIGN_MEM_BUDGET=256 cargo test -q --release -p mvdesign --test maintain
MVDESIGN_MEM_BUDGET=256 cargo test -q --release -p mvdesign-serve --test serve

echo "== tier-1: serve smoke (64 clients, correctness gate + timing, no artifact) =="
cargo run --release -p mvdesign-bench --bin repro -- perf-serve smoke \
  --clients 64 --duration-ms 500 --no-write > /dev/null

echo "== tier-1: bench smoke (--test mode) =="
cargo bench -p mvdesign-bench --bench selection_scaling -- --test
cargo bench -p mvdesign-bench --bench engine_and_optimizer -- --test
cargo bench -p mvdesign-bench --bench engine_batch -- --test
cargo bench -p mvdesign-bench --bench engine_parallel -- --test

echo "== tier-1: paper artifacts still reproduce =="
cargo run --release -p mvdesign-bench --bin repro -- fig9 > /dev/null
cargo run --release -p mvdesign-bench --bin repro -- table2 > /dev/null

echo "== tier-1: correctness audit =="
cargo run --release -p mvdesign-bench --bin repro -- audit > /dev/null

echo "tier-1 OK"
