//! Vendored stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses: the
//! [`proptest!`] macro with `ident in strategy` arguments, range / tuple /
//! vec / array / `any::<T>()` / simple-regex strategies, `prop_map`, and the
//! `prop_assert*` macros. Cases are sampled from a deterministic RNG seeded
//! per test; failing cases panic immediately (no shrinking). That is enough
//! for the workspace's property tests, which assert invariants rather than
//! rely on shrunk counterexamples.

#![forbid(unsafe_code)]

#[doc(hidden)]
pub use rand as __rand;

/// Test-runner configuration (`cases` is the only knob honored).
pub mod test_runner {
    /// Mirror of `proptest::test_runner::ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};

    /// A sampler of values of type [`Strategy::Value`].
    ///
    /// Unlike upstream proptest there is no value tree or shrinking — a
    /// strategy is just a deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl<T: Copy> Strategy for core::ops::Range<T>
    where
        core::ops::Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: Copy> Strategy for core::ops::RangeInclusive<T>
    where
        core::ops::RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A/0);
    impl_tuple_strategy!(A/0, B/1);
    impl_tuple_strategy!(A/0, B/1, C/2);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
    impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);

    /// `&str` regex patterns of the restricted form `[class]{min,max}`,
    /// where `class` supports literal chars, `\n`/`\t`/`\r`/`\\` escapes,
    /// and `a-z` ranges. This covers the patterns used in the workspace;
    /// anything else panics with a clear message.
    impl Strategy for str {
        type Value = String;

        fn sample(&self, rng: &mut StdRng) -> String {
            let (alphabet, min, max) = parse_simple_pattern(self)
                .unwrap_or_else(|| panic!("unsupported proptest string pattern: {self:?}"));
            let len = rng.gen_range(min..=max);
            (0..len)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
                .collect()
        }
    }

    fn parse_simple_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let (class, reps) = rest.split_at(close);
        let reps = reps.strip_prefix(']')?.strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = match reps.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = reps.trim().parse().ok()?;
                (n, n)
            }
        };
        if min > max {
            return None;
        }

        let mut alphabet = Vec::new();
        let mut chars = class.chars().peekable();
        while let Some(c) = chars.next() {
            let decoded = match c {
                '\\' => match chars.next()? {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                },
                other => other,
            };
            if chars.peek() == Some(&'-') && {
                let mut look = chars.clone();
                look.next();
                look.peek().is_some()
            } {
                chars.next(); // the '-'
                let hi = match chars.next()? {
                    '\\' => match chars.next()? {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    },
                    other => other,
                };
                if decoded > hi {
                    return None;
                }
                alphabet.extend((decoded..=hi).filter(|c| c.is_ascii() || *c <= hi));
            } else {
                alphabet.push(decoded);
            }
        }
        if alphabet.is_empty() && max > 0 {
            return None;
        }
        if alphabet.is_empty() {
            alphabet.push('x'); // never drawn: max == 0
        }
        Some((alphabet, min, max))
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use core::marker::PhantomData;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value across the type's full range.
        fn arbitrary_sample(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut StdRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut StdRng) -> Self {
                    rand::RngCore::next_u64(rng) as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut StdRng) -> Self {
            rng.gen_range(-1.0e6..1.0e6)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SampleRange<usize> + Clone> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy, R: SampleRange<usize> + Clone>(
        element: S,
        size: R,
    ) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    macro_rules! uniform_array {
        ($name:ident, $wrapper:ident, $n:expr) => {
            /// Strategy returned by the matching `uniformN` function.
            pub struct $wrapper<S>(S);

            impl<S: Strategy> Strategy for $wrapper<S> {
                type Value = [S::Value; $n];

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    core::array::from_fn(|_| self.0.sample(rng))
                }
            }

            /// `[T; N]` strategy drawing each element from `element`.
            pub fn $name<S: Strategy>(element: S) -> $wrapper<S> {
                $wrapper(element)
            }
        };
    }

    uniform_array!(uniform2, Uniform2, 2);
    uniform_array!(uniform3, Uniform3, 3);
    uniform_array!(uniform4, Uniform4, 4);
    uniform_array!(uniform5, Uniform5, 5);
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            // Deterministic per-test seed: stable across runs, distinct per name.
            let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
            for __b in stringify!($name).bytes() {
                __seed = (__seed ^ __b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __context = format!(
                    concat!("[case {}] ", $(stringify!($arg), " = {:?}, ",)+ ""),
                    __case, $(&$arg),+
                );
                let __guard = $crate::__CaseGuard(__context);
                { $body }
                ::std::mem::forget(__guard);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
pub struct __CaseGuard(pub String);

impl Drop for __CaseGuard {
    fn drop(&mut self) {
        // Only reached when the case body panicked (success forgets the guard).
        eprintln!("proptest case failed: {}", self.0);
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;
    use rand::SeedableRng;

    #[test]
    fn string_pattern_parses() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = crate::strategy::Strategy::sample(&"[ -~\\n]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn tuples_vecs_and_arrays(
            pair in (0usize..3, 0i64..6),
            v in crate::collection::vec(0u32..10, 1..5),
            arr in crate::array::uniform3(8u32..200),
            flag in any::<bool>(),
            mapped in (0usize..=2).prop_map(|n| n * 2),
        ) {
            prop_assert!(pair.0 < 3 && (0..6).contains(&pair.1));
            prop_assert!((1..5).contains(&v.len()) && v.iter().all(|x| *x < 10));
            prop_assert!(arr.iter().all(|x| (8..200).contains(x)));
            prop_assert!(flag || !flag);
            prop_assert!(mapped % 2 == 0 && mapped <= 4);
        }
    }
}
