//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates-io mirror, so
//! the workspace vendors the small slice of `rand`'s 0.8 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`], and
//! [`seq::SliceRandom`]. The generator core is xoshiro256** seeded through
//! SplitMix64 — deterministic per seed, which is the only property the
//! workspace relies on (every consumer seeds explicitly and only compares
//! runs against themselves).
//!
//! The streams differ from upstream `rand`'s ChaCha12-based `StdRng`; no
//! test or artifact in this workspace pins upstream streams.

#![forbid(unsafe_code)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from a half-open `[low, high)` interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping: deterministic and
                // close enough to uniform for non-cryptographic use.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, f64::from(low), f64::from(high)) as f32
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard {
    /// Draws a value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(p.is_finite() && (0.0..=1.0).contains(&p), "p={p} out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Draw from the standard distribution of `T`.
    fn r#gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators bundled with the crate.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Deterministic per seed; streams are unrelated to upstream `rand`'s
    /// ChaCha-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let draws_a: Vec<u64> = (0..16).map(|_| a.gen_range(0..u64::MAX)).collect();
        let draws_c: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
