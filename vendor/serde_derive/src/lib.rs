//! Vendored no-op stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` positions; no
//! code path ever serializes or deserializes a value. These derives therefore
//! expand to nothing, which keeps the derive attribute valid while avoiding a
//! dependency on `syn`/`quote` (unavailable offline).

use proc_macro::TokenStream;

/// No-op expansion of `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op expansion of `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
