//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! Provides the API subset the workspace's `harness = false` benches use —
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter` / `iter_batched`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — with simple wall-clock
//! measurement and a plain-text report. Honors `--test` (run every benchmark
//! body exactly once, as a smoke test) and a positional substring filter,
//! mirroring how cargo and CI drive real criterion benches.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted, not used for tuning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup before every iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(name: S, parameter: P) -> Self {
        Self {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { full: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(full: String) -> Self {
        Self { full }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Mean wall-clock time per iteration from the measurement phase.
    measured: Option<Duration>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// `--test`: run the body once, skip measurement.
    Smoke,
    Measure,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::Smoke {
            std::hint::black_box(routine());
            return;
        }
        // Calibrate: time one call, then choose an iteration count that
        // keeps the measurement phase near ~200ms per benchmark.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(200).as_nanos() / once.as_nanos())
            .clamp(1, 10_000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.measured = Some(start.elapsed() / iters);
    }

    /// Times `routine` over inputs produced by `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.mode == Mode::Smoke {
            std::hint::black_box(routine(setup()));
            return;
        }
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(200).as_nanos() / once.as_nanos())
            .clamp(1, 10_000) as u32;
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let mut total = Duration::ZERO;
        for input in inputs {
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.measured = Some(total / iters);
    }
}

/// Top-level harness state.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: Mode::Measure,
            filter: None,
            ran: 0,
        }
    }
}

impl Criterion {
    /// Builds the harness from CLI arguments (`--test`, optional filter).
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.mode = Mode::Smoke,
                // Flags cargo/criterion pass that we accept and ignore.
                "--bench" | "--quick" | "--noplot" | "--nocapture" => {}
                other if other.starts_with("--") => {}
                other => c.filter = Some(other.to_string()),
            }
        }
        c
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 0,
        }
    }

    /// Prints the run summary (called by `criterion_main!`).
    pub fn final_summary(&self) {
        match self.mode {
            Mode::Smoke => println!("criterion: {} benchmark(s) smoke-tested ok", self.ran),
            Mode::Measure => println!("criterion: {} benchmark(s) measured", self.ran),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; measurement is auto-calibrated.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; measurement is auto-calibrated.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.full, |bencher| f(bencher));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<S, I, F>(&mut self, id: S, input: &I, mut f: F) -> &mut Self
    where
        S: Into<BenchmarkId>,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.full, |bencher| f(bencher, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            measured: None,
        };
        f(&mut bencher);
        self.criterion.ran += 1;
        match (self.criterion.mode, bencher.measured) {
            (Mode::Smoke, _) => println!("{full:<56} ok (smoke)"),
            (Mode::Measure, Some(t)) => println!("{full:<56} time: {}", human(t)),
            (Mode::Measure, None) => println!("{full:<56} (no measurement)"),
        }
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn human(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}
