//! Vendored stand-in for the `serde` facade crate.
//!
//! The workspace uses serde only in `#[derive(Serialize, Deserialize)]`
//! positions — nothing is ever serialized at runtime — so this crate simply
//! re-exports the no-op derives from the vendored `serde_derive` and provides
//! empty marker traits under the usual paths for any explicit bounds.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::ser::Serialize`.
pub mod ser {
    /// Empty marker trait; the vendored derives expand to nothing, so no
    /// type implements this and no bound in the workspace requires it.
    pub trait Serialize {}
}

/// Marker stand-in for `serde::de::Deserialize`.
pub mod de {
    /// Empty marker trait mirroring `serde::de::Deserialize`.
    pub trait Deserialize<'de> {}
    /// Empty marker trait mirroring `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
}
