//! Selection predicates: comparisons combined with AND / OR.

use std::fmt;

use mvdesign_catalog::{AttrRef, Catalog};
use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// Evaluates the operator on two ordered values.
    pub fn eval<T: Ord>(self, left: &T, right: &T) -> bool {
        match self {
            CompareOp::Eq => left == right,
            CompareOp::Ne => left != right,
            CompareOp::Lt => left < right,
            CompareOp::Le => left <= right,
            CompareOp::Gt => left > right,
            CompareOp::Ge => left >= right,
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> Self {
        match self {
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
            other => other,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// The right-hand side of a comparison: a literal or another attribute.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rhs {
    /// Compare against a constant.
    Literal(Value),
    /// Compare against another attribute (only used transiently while
    /// parsing — join conditions are extracted into [`crate::JoinCondition`]).
    Attr(AttrRef),
}

impl fmt::Display for Rhs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rhs::Literal(v) => write!(f, "{v}"),
            Rhs::Attr(a) => write!(f, "{a}"),
        }
    }
}

/// A single comparison, e.g. `Division.city = 'LA'`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Comparison {
    /// Left-hand attribute.
    pub attr: AttrRef,
    /// Operator.
    pub op: CompareOp,
    /// Right-hand side.
    pub rhs: Rhs,
}

impl Comparison {
    /// Creates an attribute-vs-literal comparison.
    pub fn literal(attr: AttrRef, op: CompareOp, value: impl Into<Value>) -> Self {
        Self {
            attr,
            op,
            rhs: Rhs::Literal(value.into()),
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.attr, self.op, self.rhs)
    }
}

/// A selection predicate in negation-free AND/OR form.
///
/// Predicates are kept in a *normalised* shape by the smart constructors
/// [`Predicate::and`] and [`Predicate::or`]: nested conjunctions/disjunctions
/// are flattened, operands are sorted and de-duplicated, `True` is the unit
/// of `and`. That makes structural equality a useful proxy for semantic
/// equality when detecting common subexpressions.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (selects everything).
    True,
    /// A single comparison.
    Cmp(Comparison),
    /// Conjunction of two or more sub-predicates.
    And(Vec<Predicate>),
    /// Disjunction of two or more sub-predicates.
    Or(Vec<Predicate>),
}

impl Predicate {
    /// A comparison predicate.
    pub fn cmp(attr: AttrRef, op: CompareOp, value: impl Into<Value>) -> Self {
        Predicate::Cmp(Comparison::literal(attr, op, value))
    }

    /// Normalised conjunction of the given predicates.
    pub fn and(preds: impl IntoIterator<Item = Predicate>) -> Self {
        let mut out = Vec::new();
        Self::flatten_into(preds, true, &mut out);
        Self::finish(out, true)
    }

    /// Normalised disjunction of the given predicates.
    ///
    /// `True` as a disjunct makes the whole disjunction `True`.
    pub fn or(preds: impl IntoIterator<Item = Predicate>) -> Self {
        let mut out = Vec::new();
        for p in preds {
            match p {
                Predicate::True => return Predicate::True,
                Predicate::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        Self::finish(out, false)
    }

    fn flatten_into(
        preds: impl IntoIterator<Item = Predicate>,
        conj: bool,
        out: &mut Vec<Predicate>,
    ) {
        for p in preds {
            match p {
                Predicate::True if conj => {}
                Predicate::And(inner) if conj => out.extend(inner),
                other => out.push(other),
            }
        }
    }

    fn finish(mut out: Vec<Predicate>, conj: bool) -> Self {
        out.sort();
        out.dedup();
        match out.len() {
            0 => Predicate::True,
            1 => out.pop().expect("len checked"),
            _ if conj => Predicate::And(out),
            _ => Predicate::Or(out),
        }
    }

    /// Whether this predicate is the trivial `True`.
    pub fn is_true(&self) -> bool {
        matches!(self, Predicate::True)
    }

    /// All attributes referenced anywhere in the predicate.
    pub fn attrs(&self) -> Vec<&AttrRef> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out
    }

    fn collect_attrs<'a>(&'a self, out: &mut Vec<&'a AttrRef>) {
        match self {
            Predicate::True => {}
            Predicate::Cmp(c) => {
                out.push(&c.attr);
                if let Rhs::Attr(a) = &c.rhs {
                    out.push(a);
                }
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_attrs(out);
                }
            }
        }
    }

    /// Estimated fraction of rows kept, from catalog statistics.
    ///
    /// Conjunction multiplies selectivities (independence assumption);
    /// disjunction uses inclusion–exclusion under independence:
    /// `s(a ∨ b) = 1 − (1 − s(a))(1 − s(b))`.
    pub fn selectivity(&self, catalog: &Catalog) -> f64 {
        match self {
            Predicate::True => 1.0,
            Predicate::Cmp(c) => {
                catalog.selectivity(c.attr.relation.as_str(), c.attr.attr.as_str())
            }
            Predicate::And(ps) => ps.iter().map(|p| p.selectivity(catalog)).product(),
            Predicate::Or(ps) => {
                let miss: f64 = ps.iter().map(|p| 1.0 - p.selectivity(catalog)).product();
                1.0 - miss
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => f.write_str("true"),
            Predicate::Cmp(c) => write!(f, "{c}"),
            Predicate::And(ps) => join_with(f, ps, " ∧ "),
            Predicate::Or(ps) => join_with(f, ps, " ∨ "),
        }
    }
}

fn join_with(f: &mut fmt::Formatter<'_>, ps: &[Predicate], sep: &str) -> fmt::Result {
    write!(f, "(")?;
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            f.write_str(sep)?;
        }
        write!(f, "{p}")?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_catalog::{AttrType, Catalog};

    fn city_la() -> Predicate {
        Predicate::cmp(AttrRef::new("Division", "city"), CompareOp::Eq, "LA")
    }

    fn city_sf() -> Predicate {
        Predicate::cmp(AttrRef::new("Division", "city"), CompareOp::Eq, "SF")
    }

    #[test]
    fn and_flattens_sorts_and_dedupes() {
        let p = Predicate::and([
            city_sf(),
            Predicate::and([city_la(), Predicate::True]),
            city_la(),
        ]);
        match &p {
            Predicate::And(ps) => assert_eq!(ps.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
        // Commuted construction yields the identical value.
        let q = Predicate::and([city_la(), city_sf()]);
        assert_eq!(p, q);
    }

    #[test]
    fn and_of_one_collapses() {
        assert_eq!(Predicate::and([city_la()]), city_la());
        assert_eq!(Predicate::and([]), Predicate::True);
    }

    #[test]
    fn or_short_circuits_on_true() {
        assert_eq!(Predicate::or([city_la(), Predicate::True]), Predicate::True);
    }

    #[test]
    fn or_flattens_nested() {
        let p = Predicate::or([Predicate::or([city_la(), city_sf()]), city_sf()]);
        match p {
            Predicate::Or(ps) => assert_eq!(ps.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn eval_ops() {
        assert!(CompareOp::Gt.eval(&2, &1));
        assert!(!CompareOp::Le.eval(&2, &1));
        assert!(CompareOp::Ne.eval(&2, &1));
        assert_eq!(CompareOp::Lt.flipped(), CompareOp::Gt);
        assert_eq!(CompareOp::Eq.flipped(), CompareOp::Eq);
    }

    #[test]
    fn selectivity_of_paper_predicates() {
        let mut c = Catalog::new();
        c.relation("Division")
            .attr("city", AttrType::Text)
            .records(5_000.0)
            .blocks(500.0)
            .selectivity("city", 0.02)
            .finish()
            .unwrap();
        assert_eq!(city_la().selectivity(&c), 0.02);
        // Disjunction of two independent 2% filters: 1 - 0.98^2.
        let or = Predicate::or([city_la(), city_sf()]);
        let s = or.selectivity(&c);
        assert!((s - (1.0 - 0.98 * 0.98)).abs() < 1e-12);
        // Conjunction multiplies.
        let and = Predicate::and([city_la(), city_sf()]);
        assert!((and.selectivity(&c) - 0.0004).abs() < 1e-12);
        assert_eq!(Predicate::True.selectivity(&c), 1.0);
    }

    #[test]
    fn attrs_collects_both_sides() {
        let join_like = Predicate::Cmp(Comparison {
            attr: AttrRef::new("Pd", "Did"),
            op: CompareOp::Eq,
            rhs: Rhs::Attr(AttrRef::new("Div", "Did")),
        });
        assert_eq!(join_like.attrs().len(), 2);
    }

    #[test]
    fn display_round_trips_shape() {
        let p = Predicate::and([city_la(), city_sf()]);
        assert_eq!(p.to_string(), "(Division.city='LA' ∧ Division.city='SF')");
    }
}
