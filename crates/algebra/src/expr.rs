//! The SPJ expression tree.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use mvdesign_catalog::{AttrRef, RelName};
use serde::{Deserialize, Serialize};

use crate::aggregate::AggExpr;
use crate::predicate::Predicate;

/// An equi-join condition: a conjunction of attribute equalities.
///
/// Conditions are kept normalised: each pair is ordered, and the list of
/// pairs is sorted and de-duplicated, so two conditions that mean the same
/// thing are structurally equal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JoinCondition {
    pairs: Vec<(AttrRef, AttrRef)>,
}

impl JoinCondition {
    /// Creates a normalised condition from attribute pairs.
    pub fn new(pairs: impl IntoIterator<Item = (AttrRef, AttrRef)>) -> Self {
        let mut pairs: Vec<_> = pairs
            .into_iter()
            .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        pairs.sort();
        pairs.dedup();
        Self { pairs }
    }

    /// A single-pair condition.
    pub fn on(a: AttrRef, b: AttrRef) -> Self {
        Self::new([(a, b)])
    }

    /// A cross product (no condition).
    pub fn cross() -> Self {
        Self { pairs: Vec::new() }
    }

    /// The normalised attribute pairs.
    pub fn pairs(&self) -> &[(AttrRef, AttrRef)] {
        &self.pairs
    }

    /// Whether this is a cross product.
    pub fn is_cross(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Merges two conditions (conjunction).
    #[must_use]
    pub fn merged(&self, other: &JoinCondition) -> Self {
        Self::new(
            self.pairs
                .iter()
                .cloned()
                .chain(other.pairs.iter().cloned()),
        )
    }
}

impl fmt::Display for JoinCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_cross() {
            return f.write_str("×");
        }
        for (i, (a, b)) in self.pairs.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∧ ")?;
            }
            write!(f, "{a}={b}")?;
        }
        Ok(())
    }
}

/// A relational-algebra expression over base relations.
///
/// `Expr` is immutable; children are shared via [`Arc`], so rewrites build
/// new spines over shared subtrees. Construct with [`Expr::base`],
/// [`Expr::select`], [`Expr::project`] and [`Expr::join`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A base relation (leaf, `□` in the paper's figures).
    Base(RelName),
    /// Selection `σ predicate (input)`.
    Select {
        /// Input expression.
        input: Arc<Expr>,
        /// Filter predicate.
        predicate: Predicate,
    },
    /// Projection `π attrs (input)`.
    Project {
        /// Input expression.
        input: Arc<Expr>,
        /// Attributes kept, in output order.
        attrs: Vec<AttrRef>,
    },
    /// Equi-join `left ⋈ on right` (cross product when `on` is empty).
    Join {
        /// Left input.
        left: Arc<Expr>,
        /// Right input.
        right: Arc<Expr>,
        /// Join condition.
        on: JoinCondition,
    },
    /// Grouping and aggregation `γ group_by; aggs (input)`.
    Aggregate {
        /// Input expression.
        input: Arc<Expr>,
        /// Grouping attributes (empty for a single global group).
        group_by: Vec<AttrRef>,
        /// Aggregates computed per group.
        aggs: Vec<AggExpr>,
    },
}

impl Expr {
    /// A base relation leaf.
    pub fn base(name: impl Into<RelName>) -> Arc<Expr> {
        Arc::new(Expr::Base(name.into()))
    }

    /// A selection over `input`. Selecting with `True` returns the input
    /// unchanged; selecting over an existing selection fuses the predicates.
    pub fn select(input: Arc<Expr>, predicate: Predicate) -> Arc<Expr> {
        if predicate.is_true() {
            return input;
        }
        if let Expr::Select {
            input: inner,
            predicate: p,
        } = &*input
        {
            let fused = Predicate::and([p.clone(), predicate]);
            return Arc::new(Expr::Select {
                input: Arc::clone(inner),
                predicate: fused,
            });
        }
        Arc::new(Expr::Select { input, predicate })
    }

    /// A projection over `input`.
    pub fn project(input: Arc<Expr>, attrs: impl IntoIterator<Item = AttrRef>) -> Arc<Expr> {
        Arc::new(Expr::Project {
            input,
            attrs: attrs.into_iter().collect(),
        })
    }

    /// An equi-join of `left` and `right`.
    pub fn join(left: Arc<Expr>, right: Arc<Expr>, on: JoinCondition) -> Arc<Expr> {
        Arc::new(Expr::Join { left, right, on })
    }

    /// A grouping/aggregation over `input`.
    pub fn aggregate(
        input: Arc<Expr>,
        group_by: impl IntoIterator<Item = AttrRef>,
        aggs: impl IntoIterator<Item = AggExpr>,
    ) -> Arc<Expr> {
        Arc::new(Expr::Aggregate {
            input,
            group_by: group_by.into_iter().collect(),
            aggs: aggs.into_iter().collect(),
        })
    }

    /// Direct children of this node.
    pub fn children(&self) -> Vec<&Arc<Expr>> {
        match self {
            Expr::Base(_) => Vec::new(),
            Expr::Select { input, .. }
            | Expr::Project { input, .. }
            | Expr::Aggregate { input, .. } => vec![input],
            Expr::Join { left, right, .. } => vec![left, right],
        }
    }

    /// The set of base relations this expression reads.
    pub fn base_relations(&self) -> BTreeSet<RelName> {
        let mut out = BTreeSet::new();
        self.collect_bases(&mut out);
        out
    }

    fn collect_bases(&self, out: &mut BTreeSet<RelName>) {
        match self {
            Expr::Base(r) => {
                out.insert(r.clone());
            }
            _ => {
                for c in self.children() {
                    c.collect_bases(out);
                }
            }
        }
    }

    /// Whether the expression is a single base relation.
    pub fn is_base(&self) -> bool {
        matches!(self, Expr::Base(_))
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Height of the tree (a leaf has height 1).
    pub fn height(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.height())
            .max()
            .unwrap_or(0)
    }

    /// A short operator label for figures/DOT output, e.g. `σ[city='LA']`.
    pub fn op_label(&self) -> String {
        match self {
            Expr::Base(r) => r.to_string(),
            Expr::Select { predicate, .. } => format!("σ[{predicate}]"),
            Expr::Project { attrs, .. } => {
                let names: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
                format!("π[{}]", names.join(","))
            }
            Expr::Join { on, .. } => format!("⋈[{on}]"),
            Expr::Aggregate { group_by, aggs, .. } => {
                let groups: Vec<String> = group_by.iter().map(|a| a.to_string()).collect();
                let funcs: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                format!("γ[{}; {}]", groups.join(","), funcs.join(","))
            }
        }
    }

    /// A canonical key under which two expressions that compute the same
    /// relation compare equal, up to:
    ///
    /// * join commutativity *and* associativity (a maximal join subtree is
    ///   flattened into a sorted multiset of its non-join children plus the
    ///   union of its conditions),
    /// * predicate normalisation (handled by [`Predicate`]'s smart
    ///   constructors),
    /// * projection attribute *order* (the attribute list is compared as a
    ///   set — SPJ projection is a set operator here).
    ///
    /// This implements the paper's test "`S(u) = S(v)` and `R(u) = R(v)` ⇒
    /// common subexpression, merge" (§3.1, step 1), strengthened from
    /// "same sources" to "provably same result".
    pub fn semantic_key(&self) -> String {
        match self {
            Expr::Base(r) => format!("B({r})"),
            Expr::Select { input, predicate } => {
                format!("S({};{})", input.semantic_key(), predicate)
            }
            Expr::Project { input, attrs } => {
                let mut names: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
                names.sort();
                names.dedup();
                format!("P({};{})", input.semantic_key(), names.join(","))
            }
            Expr::Join { .. } => {
                let mut leaves = Vec::new();
                let mut cond = JoinCondition::cross();
                self.flatten_join(&mut leaves, &mut cond);
                leaves.sort();
                format!("J({};{})", leaves.join("|"), cond)
            }
            Expr::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let mut groups: Vec<String> = group_by.iter().map(|a| a.to_string()).collect();
                groups.sort();
                groups.dedup();
                let mut funcs: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                funcs.sort();
                format!(
                    "G({};{};{})",
                    input.semantic_key(),
                    groups.join(","),
                    funcs.join(",")
                )
            }
        }
    }

    fn flatten_join(&self, leaves: &mut Vec<String>, cond: &mut JoinCondition) {
        match self {
            Expr::Join { left, right, on } => {
                *cond = cond.merged(on);
                left.flatten_join(leaves, cond);
                right.flatten_join(leaves, cond);
            }
            other => leaves.push(other.semantic_key()),
        }
    }

    /// A 64-bit structural hash of [`Expr::semantic_key`]'s equivalence
    /// class, computed without building the key string.
    ///
    /// Expressions with equal semantic keys always have equal hashes — the
    /// hash applies the same normalisations (join flattening with a sorted
    /// leaf multiset, sorted/de-duplicated projection and grouping
    /// attributes). The converse can fail with probability ~2⁻⁶⁴, so callers
    /// keying caches on this hash must fall back to comparing full semantic
    /// keys when two distinct expressions land on one hash.
    pub fn semantic_hash(&self) -> u64 {
        use std::fmt::Write as _;
        let mut h = Fnv1a::new();
        match self {
            Expr::Base(r) => {
                h.byte(b'B');
                let _ = write!(h, "{r}");
            }
            Expr::Select { input, predicate } => {
                h.byte(b'S');
                h.u64(input.semantic_hash());
                let _ = write!(h, "{predicate}");
            }
            Expr::Project { input, attrs } => {
                h.byte(b'P');
                h.u64(input.semantic_hash());
                let mut names: Vec<u64> = attrs.iter().map(hash_display).collect();
                names.sort_unstable();
                names.dedup();
                for x in names {
                    h.u64(x);
                }
            }
            Expr::Join { .. } => {
                h.byte(b'J');
                let mut leaves = Vec::new();
                let mut cond = JoinCondition::cross();
                self.flatten_join_hashes(&mut leaves, &mut cond);
                leaves.sort_unstable();
                for x in leaves {
                    h.u64(x);
                }
                let _ = write!(h, "{cond}");
            }
            Expr::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                h.byte(b'G');
                h.u64(input.semantic_hash());
                let mut groups: Vec<u64> = group_by.iter().map(hash_display).collect();
                groups.sort_unstable();
                groups.dedup();
                for x in groups {
                    h.u64(x);
                }
                let mut funcs: Vec<u64> = aggs.iter().map(hash_display).collect();
                funcs.sort_unstable();
                for x in funcs {
                    h.u64(x);
                }
            }
        }
        h.finish()
    }

    fn flatten_join_hashes(&self, leaves: &mut Vec<u64>, cond: &mut JoinCondition) {
        match self {
            Expr::Join { left, right, on } => {
                *cond = cond.merged(on);
                left.flatten_join_hashes(leaves, cond);
                right.flatten_join_hashes(leaves, cond);
            }
            other => leaves.push(other.semantic_hash()),
        }
    }
}

/// FNV-1a, 64-bit. Accepts `write!` formatting directly, so hashing a
/// `Display` value allocates nothing.
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x100_0000_01b3);
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

impl fmt::Write for Fnv1a {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for &b in s.as_bytes() {
            self.byte(b);
        }
        Ok(())
    }
}

pub(crate) fn hash_display(value: impl fmt::Display) -> u64 {
    use std::fmt::Write as _;
    let mut h = Fnv1a::new();
    let _ = write!(h, "{value}");
    h.finish()
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Base(r) => write!(f, "{r}"),
            Expr::Select { input, predicate } => write!(f, "σ[{predicate}]({input})"),
            Expr::Project { input, attrs } => {
                let names: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
                write!(f, "π[{}]({input})", names.join(","))
            }
            Expr::Join { left, right, on } => write!(f, "({left} ⋈[{on}] {right})"),
            Expr::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let groups: Vec<String> = group_by.iter().map(|a| a.to_string()).collect();
                let funcs: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                write!(f, "γ[{}; {}]({input})", groups.join(","), funcs.join(","))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CompareOp;

    fn la() -> Predicate {
        Predicate::cmp(AttrRef::new("Division", "city"), CompareOp::Eq, "LA")
    }

    fn did() -> JoinCondition {
        JoinCondition::on(
            AttrRef::new("Product", "Did"),
            AttrRef::new("Division", "Did"),
        )
    }

    #[test]
    fn join_condition_normalises_pair_order() {
        let a = AttrRef::new("Product", "Did");
        let b = AttrRef::new("Division", "Did");
        assert_eq!(
            JoinCondition::on(a.clone(), b.clone()),
            JoinCondition::on(b, a)
        );
    }

    #[test]
    fn select_true_is_identity() {
        let base = Expr::base("Division");
        let same = Expr::select(Arc::clone(&base), Predicate::True);
        assert_eq!(base, same);
    }

    #[test]
    fn select_over_select_fuses() {
        let sf = Predicate::cmp(AttrRef::new("Division", "city"), CompareOp::Eq, "SF");
        let e = Expr::select(Expr::select(Expr::base("Division"), la()), sf.clone());
        match &*e {
            Expr::Select { predicate, input } => {
                assert_eq!(*predicate, Predicate::and([la(), sf]));
                assert!(input.is_base());
            }
            other => panic!("expected fused select, got {other:?}"),
        }
    }

    #[test]
    fn base_relations_collects_leaves() {
        let e = Expr::join(
            Expr::base("Product"),
            Expr::select(Expr::base("Division"), la()),
            did(),
        );
        let rels: Vec<_> = e.base_relations().into_iter().collect();
        assert_eq!(rels.len(), 2);
        assert_eq!(rels[0], "Division");
        assert_eq!(rels[1], "Product");
    }

    #[test]
    fn semantic_key_is_join_commutative() {
        let l = Expr::base("Product");
        let r = Expr::select(Expr::base("Division"), la());
        let a = Expr::join(Arc::clone(&l), Arc::clone(&r), did());
        let b = Expr::join(r, l, did());
        assert_ne!(a, b); // structurally different trees
        assert_eq!(a.semantic_key(), b.semantic_key()); // same relation
    }

    #[test]
    fn semantic_key_is_join_associative() {
        let p = Expr::base("Product");
        let d = Expr::base("Division");
        let t = Expr::base("Part");
        let pid = JoinCondition::on(AttrRef::new("Part", "Pid"), AttrRef::new("Product", "Pid"));
        let a = Expr::join(
            Expr::join(Arc::clone(&p), Arc::clone(&d), did()),
            Arc::clone(&t),
            pid.clone(),
        );
        let b = Expr::join(Arc::clone(&t), Expr::join(d, p, did()), pid);
        assert_eq!(a.semantic_key(), b.semantic_key());
    }

    #[test]
    fn semantic_key_distinguishes_different_predicates() {
        let a = Expr::select(Expr::base("Division"), la());
        let sf = Predicate::cmp(AttrRef::new("Division", "city"), CompareOp::Eq, "SF");
        let b = Expr::select(Expr::base("Division"), sf);
        assert_ne!(a.semantic_key(), b.semantic_key());
    }

    #[test]
    fn projection_key_is_order_insensitive() {
        let base = Expr::base("Product");
        let a = Expr::project(
            Arc::clone(&base),
            [
                AttrRef::new("Product", "name"),
                AttrRef::new("Product", "Did"),
            ],
        );
        let b = Expr::project(
            base,
            [
                AttrRef::new("Product", "Did"),
                AttrRef::new("Product", "name"),
            ],
        );
        assert_eq!(a.semantic_key(), b.semantic_key());
    }

    #[test]
    fn node_count_and_height() {
        let e = Expr::join(
            Expr::base("Product"),
            Expr::select(Expr::base("Division"), la()),
            did(),
        );
        assert_eq!(e.node_count(), 4);
        assert_eq!(e.height(), 3);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::select(Expr::base("Division"), la());
        assert_eq!(e.to_string(), "σ[Division.city='LA'](Division)");
    }

    #[test]
    fn semantic_hash_agrees_with_semantic_key() {
        // Equal keys ⟹ equal hashes, across every normalisation the key
        // applies; unequal keys get distinct hashes on these small cases.
        let p = Expr::base("Product");
        let d = Expr::base("Division");
        let t = Expr::base("Part");
        let pid = JoinCondition::on(AttrRef::new("Part", "Pid"), AttrRef::new("Product", "Pid"));
        let exprs: Vec<Arc<Expr>> = vec![
            Arc::clone(&p),
            Arc::clone(&d),
            Expr::select(Arc::clone(&d), la()),
            Expr::join(Arc::clone(&p), Arc::clone(&d), did()),
            Expr::join(Arc::clone(&d), Arc::clone(&p), did()), // commuted
            Expr::join(
                Expr::join(Arc::clone(&p), Arc::clone(&d), did()),
                Arc::clone(&t),
                pid.clone(),
            ),
            Expr::join(
                Arc::clone(&t),
                Expr::join(Arc::clone(&d), Arc::clone(&p), did()),
                pid,
            ), // re-associated
            Expr::project(
                Arc::clone(&p),
                [
                    AttrRef::new("Product", "name"),
                    AttrRef::new("Product", "Did"),
                ],
            ),
            Expr::project(
                Arc::clone(&p),
                [
                    AttrRef::new("Product", "Did"),
                    AttrRef::new("Product", "name"),
                ],
            ), // re-ordered projection
        ];
        for a in &exprs {
            for b in &exprs {
                assert_eq!(
                    a.semantic_key() == b.semantic_key(),
                    a.semantic_hash() == b.semantic_hash(),
                    "hash/key disagreement between {a} and {b}"
                );
            }
        }
    }
}
