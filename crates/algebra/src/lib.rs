//! Relational algebra for the select–project–join (SPJ) dialect the paper
//! works in, plus a small SQL-ish parser for writing warehouse queries the
//! way the paper does.
//!
//! The central type is [`Expr`], an immutable expression tree over base
//! relations with `select`, `project` and equi-`join` operators. Expressions
//! are cheap to share (`Arc` children) and support structural equality.
//!
//! Semantic identity — two expressions computing the same relation up to
//! join commutativity/associativity, predicate normalisation and
//! set-semantics projections/group-bys — is interned by [`ExprArena`]: every
//! equivalence class gets a dense [`ExprId`], so identity checks are integer
//! comparisons and per-class analyses index plain vectors. The MVPP merge,
//! the cost caches and the DOT renderer all share classes this way — this is
//! how the paper's "common subexpressions" (§3.1) are recognised.
//! [`Expr::semantic_key`] renders the same equivalence class as a canonical
//! string and remains the debug/rendering API (the audit layer uses it as an
//! independent oracle for the arena).
//!
//! # Example
//!
//! ```
//! use mvdesign_algebra::parse_query;
//!
//! // Query 1 of the paper.
//! let q1 = parse_query(
//!     "SELECT Pd.name FROM Pd, Div WHERE Div.city = 'LA' AND Pd.Did = Div.Did",
//! )?;
//! assert_eq!(q1.base_relations().len(), 2);
//! # Ok::<(), mvdesign_algebra::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod arena;
pub mod delta;
mod dot;
mod expr;
mod predicate;
mod query;
mod schema_infer;
mod sql;
mod value;
mod visit;

pub use crate::aggregate::{AggExpr, AggFunc, AGG_RELATION};
pub use crate::arena::{ExprArena, ExprId};
pub use crate::delta::{
    label_deltas, maintenance_plan, Delta, DeltaLabels, DeltaMode, MaintenancePlan, NodeDelta,
};
pub use crate::dot::dot_graph;
pub use crate::expr::{Expr, JoinCondition};
pub use crate::predicate::{CompareOp, Comparison, Predicate, Rhs};
pub use crate::query::Query;
pub use crate::schema_infer::{output_attrs, InferError};
pub use crate::sql::{parse_query, parse_query_with, ParseError};
pub use crate::value::Value;
pub use crate::visit::{collect_subexprs, postorder};

pub use mvdesign_catalog::{AttrName, AttrRef, RelName};
