//! Relational algebra for the select–project–join (SPJ) dialect the paper
//! works in, plus a small SQL-ish parser for writing warehouse queries the
//! way the paper does.
//!
//! The central type is [`Expr`], an immutable expression tree over base
//! relations with `select`, `project` and equi-`join` operators. Expressions
//! are cheap to share (`Arc` children), support structural equality, and
//! expose a [*semantic key*](Expr::semantic_key) under which two expressions
//! that compute the same relation — up to join commutativity/associativity
//! and predicate normalisation — compare equal. The MVPP merge algorithm uses
//! semantic keys to find the paper's "common subexpressions".
//!
//! # Example
//!
//! ```
//! use mvdesign_algebra::parse_query;
//!
//! // Query 1 of the paper.
//! let q1 = parse_query(
//!     "SELECT Pd.name FROM Pd, Div WHERE Div.city = 'LA' AND Pd.Did = Div.Did",
//! )?;
//! assert_eq!(q1.base_relations().len(), 2);
//! # Ok::<(), mvdesign_algebra::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod dot;
mod expr;
mod predicate;
mod query;
mod schema_infer;
mod sql;
mod value;
mod visit;

pub use crate::aggregate::{AggExpr, AggFunc, AGG_RELATION};
pub use crate::dot::dot_graph;
pub use crate::expr::{Expr, JoinCondition};
pub use crate::predicate::{CompareOp, Comparison, Predicate, Rhs};
pub use crate::query::Query;
pub use crate::schema_infer::{output_attrs, InferError};
pub use crate::sql::{parse_query, parse_query_with, ParseError};
pub use crate::value::Value;
pub use crate::visit::{collect_subexprs, postorder};

pub use mvdesign_catalog::{AttrName, AttrRef, RelName};
