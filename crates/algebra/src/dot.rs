//! Graphviz DOT rendering of expression trees.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use crate::arena::{ExprArena, ExprId};
use crate::expr::Expr;

/// Renders one or more labelled expression trees as a Graphviz `digraph`.
///
/// Subtrees that are *semantically* identical (same [`ExprArena`] class,
/// i.e. equal [`Expr::semantic_key`]) are drawn once and shared, which
/// visualises the common subexpressions the MVPP merge will exploit — this
/// reproduces the shape of the paper's Figure 2(b). Share detection interns
/// every subtree once into a throwaway arena, so rendering is linear in the
/// DAG size instead of quadratic in string-key builds.
///
/// ```
/// use mvdesign_algebra::{dot_graph, Expr, JoinCondition};
///
/// let shared = Expr::base("Division");
/// let a = Expr::join(Expr::base("Product"), shared.clone(), JoinCondition::cross());
/// let dot = dot_graph("fig", &[("Q1".to_string(), a)]);
/// assert!(dot.contains("digraph fig"));
/// ```
pub fn dot_graph(name: &str, roots: &[(String, Arc<Expr>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=BT;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");
    let mut arena = ExprArena::new();
    let mut ids: HashMap<ExprId, usize> = HashMap::new();
    let mut emitted_edges: Vec<(usize, usize)> = Vec::new();
    for (label, root) in roots {
        let root_id = emit(root, &mut arena, &mut ids, &mut emitted_edges, &mut out);
        let qid = format!("q_{}", sanitise(label));
        let _ = writeln!(out, "  {qid} [label=\"{label}\", shape=ellipse];");
        let _ = writeln!(out, "  n{root_id} -> {qid};");
    }
    out.push_str("}\n");
    out
}

fn emit(
    expr: &Arc<Expr>,
    arena: &mut ExprArena,
    ids: &mut HashMap<ExprId, usize>,
    edges: &mut Vec<(usize, usize)>,
    out: &mut String,
) -> usize {
    let class = arena.intern(expr);
    if let Some(&id) = ids.get(&class) {
        return id;
    }
    // Display ids stay in discovery (pre-)order, so the rendered output is
    // byte-identical to the historical string-keyed implementation.
    let id = ids.len();
    ids.insert(class, id);
    let shape = if expr.is_base() { "box" } else { "plaintext" };
    let _ = writeln!(
        out,
        "  n{id} [label=\"{}\", shape={shape}];",
        escape(&expr.op_label())
    );
    for child in expr.children() {
        let cid = emit(child, arena, ids, edges, out);
        if !edges.contains(&(cid, id)) {
            edges.push((cid, id));
            let _ = writeln!(out, "  n{cid} -> n{id};");
        }
    }
    id
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn sanitise(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::JoinCondition;
    use crate::predicate::{CompareOp, Predicate};
    use mvdesign_catalog::AttrRef;

    #[test]
    fn shared_subtrees_are_emitted_once() {
        let tmp1 = Expr::select(
            Expr::base("Division"),
            Predicate::cmp(AttrRef::new("Division", "city"), CompareOp::Eq, "LA"),
        );
        let q1 = Expr::join(Expr::base("Product"), tmp1.clone(), JoinCondition::cross());
        let q2 = Expr::join(
            Expr::join(Expr::base("Product"), tmp1, JoinCondition::cross()),
            Expr::base("Part"),
            JoinCondition::cross(),
        );
        let dot = dot_graph("fig2b", &[("Q1".into(), q1), ("Q2".into(), q2)]);
        // The σ node appears exactly once even though both queries use it.
        let count = dot.matches("σ[Division.city='LA']").count();
        assert_eq!(count, 1, "dot output:\n{dot}");
        assert!(dot.contains("q_Q1"));
        assert!(dot.contains("q_Q2"));
    }

    #[test]
    fn quotes_are_escaped() {
        assert_eq!(escape("a\"b"), "a\\\"b");
    }
}
