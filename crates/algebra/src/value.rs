//! Literal values appearing in predicates and tuples.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A literal value.
///
/// `Value` is totally ordered *within* a variant; comparisons across variants
/// order by variant tag (Int < Text < Date), which keeps sorting total
/// without ever panicking on heterogeneous data.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Text, cheap to clone.
    Text(Arc<str>),
    /// A date as days since 1970-01-01.
    Date(i64),
}

impl Value {
    /// Creates a text value.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// Creates a date from year/month/day using a simplified proleptic
    /// calendar (months of 31 days — sufficient for ordering synthetic
    /// workloads; we never render dates back).
    pub fn date(year: i64, month: i64, day: i64) -> Self {
        Value::Date(year * 372 + (month - 1) * 31 + (day - 1))
    }

    /// The variant tag used for cross-variant ordering.
    fn tag(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Text(_) => 1,
            Value::Date(_) => 2,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            _ => self.tag().cmp(&other.tag()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "date#{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_within_variant() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::text("a") < Value::text("b"));
        assert!(Value::date(1996, 7, 1) < Value::date(1996, 7, 2));
        assert!(Value::date(1996, 6, 30) < Value::date(1996, 7, 1));
    }

    #[test]
    fn ordering_across_variants_is_total() {
        let mut v = [Value::text("z"), Value::Int(5), Value::date(2000, 1, 1)];
        v.sort();
        assert_eq!(v[0], Value::Int(5));
        assert!(matches!(v[1], Value::Text(_)));
        assert!(matches!(v[2], Value::Date(_)));
    }

    #[test]
    fn display_quotes_text() {
        assert_eq!(Value::text("LA").to_string(), "'LA'");
        assert_eq!(Value::Int(100).to_string(), "100");
    }

    #[test]
    fn date_months_do_not_collide() {
        // Day 31 of month m stays strictly below day 1 of month m+1.
        assert!(Value::date(1996, 6, 31) < Value::date(1996, 7, 1));
    }
}
