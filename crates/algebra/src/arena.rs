//! A hash-consing arena interning expressions by semantic-equivalence class.
//!
//! [`ExprArena`] maps every expression to a dense [`ExprId`] such that two
//! expressions receive the *same* id exactly when their
//! [`Expr::semantic_key`]s are equal — join commutativity/associativity,
//! predicate normalisation and set-semantics projections/group-bys are all
//! folded away. Interning is bottom-up and memoized, so after the one-time
//! walk every identity check is an integer comparison instead of an O(n²)
//! recursive string build.
//!
//! Each class stores its representative [`Arc<Expr>`] (the first member
//! interned), the ids of the representative's children, the memoized
//! [`Expr::semantic_hash`] and a precomputed children-first postorder of the
//! distinct classes beneath it — the traversal order cost caches and other
//! per-class analyses need.
//!
//! The arena is an *internal currency*: expressions are still constructed
//! through the public [`Arc<Expr>`] builders and the parser, and ids are
//! only meaningful relative to the arena that issued them.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::expr::{hash_display, Expr, Fnv1a, JoinCondition};

/// A dense identifier for one semantic-equivalence class of expressions.
///
/// Ids are issued by an [`ExprArena`] in first-interned order, starting at
/// zero, and are stable for the arena's lifetime: interning more expressions
/// never renumbers existing classes. Ids from different arenas are not
/// comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(u32);

impl ExprId {
    /// The id as a dense index (`0..arena.len()`), usable for `Vec` slots.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The exact class signature of one node, given interned children.
///
/// Two expressions have equal signatures exactly when their semantic keys
/// are equal: the signature embeds the same display strings the key does,
/// with subexpressions replaced by their (already unique) class ids and
/// joins flattened to their sorted leaf-class multiset. Unlike a 64-bit
/// hash, signature equality cannot collide.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Sig {
    /// `B(name)`.
    Base(String),
    /// `S(input; predicate)`.
    Select(ExprId, String),
    /// `P(input; sorted deduped attrs)`.
    Project(ExprId, Vec<String>),
    /// `J(sorted flattened leaf classes; merged condition)`.
    Join(Vec<ExprId>, String),
    /// `G(input; sorted deduped groups; sorted aggregates)`.
    Aggregate(ExprId, Vec<String>, Vec<String>),
}

/// One interned equivalence class.
#[derive(Debug, Clone)]
struct Entry {
    /// The first member interned — the class representative.
    expr: Arc<Expr>,
    /// Classes of the representative's direct children.
    children: Vec<ExprId>,
    /// The class signature (see [`Sig`]).
    sig: Sig,
    /// Memoized [`Expr::semantic_hash`] of every member.
    hash: u64,
    /// For join classes: the sorted leaf-class multiset and the merged join
    /// condition, so a parent join flattens through this class in O(leaves)
    /// without re-walking it.
    join_flat: Option<JoinFlat>,
    /// Distinct classes reachable from this one, children before parents,
    /// ending with the class itself.
    postorder: Vec<ExprId>,
}

#[derive(Debug, Clone)]
struct JoinFlat {
    /// Sorted class ids of the flattened non-join leaves.
    leaf_ids: Vec<ExprId>,
    /// Union of all conditions in the maximal join subtree.
    cond: JoinCondition,
}

/// A hash-consing interner over [`Expr`] semantic-equivalence classes.
///
/// Two expressions intern to the same [`ExprId`] exactly when their
/// [`Expr::semantic_key`] strings are equal. Typical use:
///
/// ```
/// use mvdesign_algebra::{Expr, ExprArena, JoinCondition};
///
/// let mut arena = ExprArena::new();
/// let a = Expr::join(Expr::base("R"), Expr::base("S"), JoinCondition::cross());
/// let b = Expr::join(Expr::base("S"), Expr::base("R"), JoinCondition::cross());
/// assert_ne!(a, b); // structurally different trees …
/// assert_eq!(arena.intern(&a), arena.intern(&b)); // … same class
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExprArena {
    entries: Vec<Entry>,
    /// Semantic hash → classes with that hash (almost always one).
    by_hash: HashMap<u64, Vec<ExprId>>,
    /// `Arc` pointer → class, for O(1) re-interning of shared subtrees. The
    /// mapped `Arc` keeps the allocation alive so addresses cannot recycle.
    by_ptr: HashMap<usize, (Arc<Expr>, ExprId)>,
}

impl ExprArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no classes are interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All interned class ids, in first-interned order.
    pub fn ids(&self) -> impl Iterator<Item = ExprId> {
        (0..self.entries.len() as u32).map(ExprId)
    }

    /// The class representative: the first member interned.
    pub fn expr(&self, id: ExprId) -> &Arc<Expr> {
        &self.entries[id.index()].expr
    }

    /// Classes of the representative's direct children.
    pub fn children(&self, id: ExprId) -> &[ExprId] {
        &self.entries[id.index()].children
    }

    /// The memoized [`Expr::semantic_hash`] shared by every class member.
    pub fn semantic_hash(&self, id: ExprId) -> u64 {
        self.entries[id.index()].hash
    }

    /// Distinct classes reachable from `id` (itself included), children
    /// before parents — the order bottom-up analyses need.
    pub fn postorder(&self, id: ExprId) -> &[ExprId] {
        &self.entries[id.index()].postorder
    }

    /// Interns `expr` and its whole subtree, returning its class id.
    ///
    /// Re-interning any expression with an equal semantic key — including
    /// structurally different members of the class — returns the same id.
    pub fn intern(&mut self, expr: &Arc<Expr>) -> ExprId {
        let ptr = Arc::as_ptr(expr) as usize;
        if let Some((_, id)) = self.by_ptr.get(&ptr) {
            return *id;
        }
        let children: Vec<ExprId> = expr.children().iter().map(|c| self.intern(c)).collect();
        let sig = self.signature(expr, &children);
        let hash = self.hash_of(expr, &sig);
        let id = match self.probe(hash, &sig) {
            Some(id) => id,
            None => self.insert(expr, children, sig, hash),
        };
        self.by_ptr.insert(ptr, (Arc::clone(expr), id));
        id
    }

    /// The class of `expr` if one is interned, without modifying the arena.
    pub fn lookup(&self, expr: &Arc<Expr>) -> Option<ExprId> {
        let ptr = Arc::as_ptr(expr) as usize;
        if let Some((_, id)) = self.by_ptr.get(&ptr) {
            return Some(*id);
        }
        // If this expression's class were interned, every leaf class of its
        // flattened form would be too (interning a member interns its whole
        // subtree), so a missing child class decides the question.
        let children: Vec<ExprId> = match &**expr {
            Expr::Join { .. } => {
                let mut leaves = Vec::new();
                let mut cond = JoinCondition::cross();
                flatten_expr(expr, &mut leaves, &mut cond);
                leaves
                    .iter()
                    .map(|l| self.lookup(l))
                    .collect::<Option<_>>()?
            }
            _ => expr
                .children()
                .iter()
                .map(|c| self.lookup(c))
                .collect::<Option<_>>()?,
        };
        let sig = match &**expr {
            Expr::Join { .. } => {
                // `children` already holds the flattened leaf classes; the
                // merged condition still comes from the expression itself.
                let mut raw = Vec::new();
                let mut cond = JoinCondition::cross();
                flatten_expr(expr, &mut raw, &mut cond);
                let mut leaf_ids = children;
                leaf_ids.sort_unstable();
                Sig::Join(leaf_ids, cond.to_string())
            }
            _ => self.signature(expr, &children),
        };
        let hash = self.hash_of(expr, &sig);
        self.probe(hash, &sig)
    }

    /// Builds the class signature of `expr` given its children's classes.
    /// For joins, `children` are the direct children (flattening through
    /// interned join classes happens here).
    fn signature(&self, expr: &Arc<Expr>, children: &[ExprId]) -> Sig {
        match &**expr {
            Expr::Base(r) => Sig::Base(r.to_string()),
            Expr::Select { predicate, .. } => Sig::Select(children[0], predicate.to_string()),
            Expr::Project { attrs, .. } => {
                let mut names: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
                names.sort();
                names.dedup();
                Sig::Project(children[0], names)
            }
            Expr::Join { on, .. } => {
                let mut leaf_ids = Vec::new();
                let mut cond = on.clone();
                for child in children {
                    match &self.entries[child.index()].join_flat {
                        Some(flat) => {
                            leaf_ids.extend_from_slice(&flat.leaf_ids);
                            cond = cond.merged(&flat.cond);
                        }
                        None => leaf_ids.push(*child),
                    }
                }
                leaf_ids.sort_unstable();
                Sig::Join(leaf_ids, cond.to_string())
            }
            Expr::Aggregate { group_by, aggs, .. } => {
                let mut groups: Vec<String> = group_by.iter().map(|a| a.to_string()).collect();
                groups.sort();
                groups.dedup();
                let mut funcs: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                funcs.sort();
                Sig::Aggregate(children[0], groups, funcs)
            }
        }
    }

    /// Computes [`Expr::semantic_hash`] from memoized child hashes —
    /// bit-identical to the recursive version, without re-walking subtrees.
    fn hash_of(&self, expr: &Arc<Expr>, sig: &Sig) -> u64 {
        use std::fmt::Write as _;
        let mut h = Fnv1a::new();
        match (&**expr, sig) {
            (Expr::Base(r), _) => {
                h.byte(b'B');
                let _ = write!(h, "{r}");
            }
            (Expr::Select { predicate, .. }, Sig::Select(input, _)) => {
                h.byte(b'S');
                h.u64(self.entries[input.index()].hash);
                let _ = write!(h, "{predicate}");
            }
            (Expr::Project { attrs, .. }, Sig::Project(input, _)) => {
                h.byte(b'P');
                h.u64(self.entries[input.index()].hash);
                let mut names: Vec<u64> = attrs.iter().map(hash_display).collect();
                names.sort_unstable();
                names.dedup();
                for x in names {
                    h.u64(x);
                }
            }
            (Expr::Join { .. }, Sig::Join(leaf_ids, _)) => {
                h.byte(b'J');
                let mut leaves: Vec<u64> = leaf_ids
                    .iter()
                    .map(|l| self.entries[l.index()].hash)
                    .collect();
                leaves.sort_unstable();
                for x in leaves {
                    h.u64(x);
                }
                // The merged condition, exactly as the signature carries it.
                let Sig::Join(_, cond) = sig else {
                    unreachable!()
                };
                let _ = write!(h, "{cond}");
            }
            (Expr::Aggregate { group_by, aggs, .. }, Sig::Aggregate(input, ..)) => {
                h.byte(b'G');
                h.u64(self.entries[input.index()].hash);
                let mut groups: Vec<u64> = group_by.iter().map(hash_display).collect();
                groups.sort_unstable();
                groups.dedup();
                for x in groups {
                    h.u64(x);
                }
                let mut funcs: Vec<u64> = aggs.iter().map(hash_display).collect();
                funcs.sort_unstable();
                for x in funcs {
                    h.u64(x);
                }
            }
            _ => unreachable!("signature built from the same expression"),
        }
        h.finish()
    }

    /// Finds an existing class with this hash and signature.
    fn probe(&self, hash: u64, sig: &Sig) -> Option<ExprId> {
        self.by_hash
            .get(&hash)?
            .iter()
            .copied()
            .find(|id| self.entries[id.index()].sig == *sig)
    }

    /// Creates a new class; `expr` becomes its representative.
    fn insert(&mut self, expr: &Arc<Expr>, children: Vec<ExprId>, sig: Sig, hash: u64) -> ExprId {
        let id = ExprId(u32::try_from(self.entries.len()).expect("fewer than 2^32 classes"));
        let join_flat = match &sig {
            Sig::Join(leaf_ids, _) => {
                let mut cond = JoinCondition::cross();
                let mut raw = Vec::new();
                flatten_expr(expr, &mut raw, &mut cond);
                Some(JoinFlat {
                    leaf_ids: leaf_ids.clone(),
                    cond,
                })
            }
            _ => None,
        };
        let mut postorder = Vec::new();
        let mut seen = vec![false; self.entries.len()];
        for child in &children {
            for step in &self.entries[child.index()].postorder {
                if !seen[step.index()] {
                    seen[step.index()] = true;
                    postorder.push(*step);
                }
            }
        }
        postorder.push(id);
        self.entries.push(Entry {
            expr: Arc::clone(expr),
            children,
            sig,
            hash,
            join_flat,
            postorder,
        });
        self.by_hash.entry(hash).or_default().push(id);
        id
    }
}

/// Flattens a maximal join subtree into its non-join leaf expressions and
/// the union of its conditions (the normalisation `semantic_key` applies).
fn flatten_expr(expr: &Arc<Expr>, leaves: &mut Vec<Arc<Expr>>, cond: &mut JoinCondition) {
    match &**expr {
        Expr::Join { left, right, on } => {
            *cond = cond.merged(on);
            flatten_expr(left, leaves, cond);
            flatten_expr(right, leaves, cond);
        }
        _ => leaves.push(Arc::clone(expr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CompareOp, Predicate};
    use mvdesign_catalog::AttrRef;

    fn la() -> Predicate {
        Predicate::cmp(AttrRef::new("Division", "city"), CompareOp::Eq, "LA")
    }

    fn did() -> JoinCondition {
        JoinCondition::on(
            AttrRef::new("Product", "Did"),
            AttrRef::new("Division", "Did"),
        )
    }

    #[test]
    fn commuted_joins_share_a_class() {
        let mut arena = ExprArena::new();
        let l = Expr::base("Product");
        let r = Expr::select(Expr::base("Division"), la());
        let a = Expr::join(Arc::clone(&l), Arc::clone(&r), did());
        let b = Expr::join(r, l, did());
        assert_eq!(arena.intern(&a), arena.intern(&b));
    }

    #[test]
    fn reassociated_joins_share_a_class() {
        let mut arena = ExprArena::new();
        let p = Expr::base("Product");
        let d = Expr::base("Division");
        let t = Expr::base("Part");
        let pid = JoinCondition::on(AttrRef::new("Part", "Pid"), AttrRef::new("Product", "Pid"));
        let a = Expr::join(
            Expr::join(Arc::clone(&p), Arc::clone(&d), did()),
            Arc::clone(&t),
            pid.clone(),
        );
        let b = Expr::join(t, Expr::join(d, p, did()), pid);
        assert_eq!(arena.intern(&a), arena.intern(&b));
        // The inner joins of `a` and `b` are different classes, so the two
        // roots fall into one class only through flattening.
        assert_eq!(arena.lookup(&a), arena.lookup(&b));
    }

    #[test]
    fn distinct_predicates_are_distinct_classes() {
        let mut arena = ExprArena::new();
        let a = Expr::select(Expr::base("Division"), la());
        let sf = Predicate::cmp(AttrRef::new("Division", "city"), CompareOp::Eq, "SF");
        let b = Expr::select(Expr::base("Division"), sf);
        assert_ne!(arena.intern(&a), arena.intern(&b));
    }

    #[test]
    fn interned_hash_matches_semantic_hash() {
        let mut arena = ExprArena::new();
        let exprs = [
            Expr::base("Product"),
            Expr::select(Expr::base("Division"), la()),
            Expr::join(Expr::base("Product"), Expr::base("Division"), did()),
            Expr::project(
                Expr::join(Expr::base("Division"), Expr::base("Product"), did()),
                [AttrRef::new("Product", "name")],
            ),
        ];
        for e in &exprs {
            let id = arena.intern(e);
            assert_eq!(arena.semantic_hash(id), e.semantic_hash(), "{e}");
        }
    }

    #[test]
    fn ids_agree_with_semantic_keys_pairwise() {
        let mut arena = ExprArena::new();
        let p = Expr::base("Product");
        let d = Expr::base("Division");
        let exprs = [
            Arc::clone(&p),
            Arc::clone(&d),
            Expr::select(Arc::clone(&d), la()),
            Expr::join(Arc::clone(&p), Arc::clone(&d), did()),
            Expr::join(Arc::clone(&d), Arc::clone(&p), did()),
            Expr::project(Arc::clone(&p), [AttrRef::new("Product", "name")]),
        ];
        let ids: Vec<ExprId> = exprs.iter().map(|e| arena.intern(e)).collect();
        for (a, ia) in exprs.iter().zip(&ids) {
            for (b, ib) in exprs.iter().zip(&ids) {
                assert_eq!(
                    a.semantic_key() == b.semantic_key(),
                    ia == ib,
                    "arena/key disagreement between {a} and {b}"
                );
            }
        }
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut arena = ExprArena::new();
        let a = Expr::select(Expr::base("Division"), la());
        assert_eq!(arena.lookup(&a), None);
        assert_eq!(arena.len(), 0);
        let id = arena.intern(&a);
        assert_eq!(arena.lookup(&a), Some(id));
        // A fresh structural duplicate resolves without growing the arena.
        let b = Expr::select(Expr::base("Division"), la());
        assert_eq!(arena.lookup(&b), Some(id));
        assert_eq!(arena.len(), 2); // base + select
    }

    #[test]
    fn postorder_is_children_first_and_deduplicated() {
        let mut arena = ExprArena::new();
        let shared = Expr::select(Expr::base("Division"), la());
        let join = Expr::join(
            Expr::join(Expr::base("Product"), Arc::clone(&shared), did()),
            Arc::clone(&shared),
            JoinCondition::cross(),
        );
        let root = arena.intern(&join);
        let order = arena.postorder(root);
        assert_eq!(order.last(), Some(&root));
        let mut seen = std::collections::HashSet::new();
        for id in order {
            for child in arena.children(*id) {
                assert!(seen.contains(child), "child {child} after parent {id}");
            }
            assert!(seen.insert(*id), "duplicate {id} in postorder");
        }
    }

    #[test]
    fn clone_preserves_pointer_fast_path() {
        let mut arena = ExprArena::new();
        let e = Expr::select(Expr::base("Division"), la());
        let id = arena.intern(&e);
        let snapshot = arena.clone();
        assert_eq!(snapshot.lookup(&e), Some(id));
    }
}
