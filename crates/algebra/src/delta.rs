//! Delta propagation over the plan IR — the symbolic half of incremental
//! view maintenance.
//!
//! A change to a base relation is a [`Delta`]: a bag of inserted tuples and
//! a bag of deleted tuples. This module decides, per plan node, what kind of
//! delta reaches it when changes propagate up from the leaves
//! ([`label_deltas`]), and compresses the root's answer into the
//! [`MaintenancePlan`] a refresh pass should run ([`maintenance_plan`]).
//!
//! The rewrite rules are the classical ones:
//!
//! * **σ / π distribute** over both sides of a delta:
//!   `Δ(σp E) = σp(ΔE)` and `Δ(πa E) = πa(ΔE)`, for inserts and deletes
//!   alike.
//! * **⋈ expands** insert deltas as
//!   `Δ(L ⋈ R) = ΔL ⋈ R  ∪  L ⋈ ΔR  ∪  ΔL ⋈ ΔR` (old states on the
//!   un-deltaed side). Deletions flowing into a join would need the
//!   counting algorithm to cancel derived tuples, so they force
//!   recomputation.
//! * **γ folds** mergeable per-group partials: `COUNT`/`SUM` absorb inserts
//!   and deletes by addition and subtraction, `MIN`/`MAX` absorb inserts by
//!   taking the extremum but cannot absorb deletes (the extremum may have
//!   been deleted), and `AVG` is finalized as `SUM/COUNT` so the stored
//!   value cannot be re-opened at all. Deletions additionally need a
//!   `COUNT` column to witness groups emptying out.
//!
//! Anything outside these rules falls back to recomputation — the fallback
//! is part of the contract, not an error, and every [`MaintenancePlan::Recompute`]
//! carries the rule that forced it.

use std::collections::BTreeMap;
use std::sync::Arc;

use mvdesign_catalog::RelName;

use crate::aggregate::AggFunc;
use crate::arena::{ExprArena, ExprId};
use crate::expr::Expr;

/// A change split into inserted and deleted tuples (bag semantics).
///
/// The type is generic so the same carrier serves symbolic sizes, row
/// vectors and the engine's columnar batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Delta<T> {
    /// Tuples added by the change.
    pub insert: T,
    /// Tuples removed by the change.
    pub delete: T,
}

impl<T> Delta<T> {
    /// Creates a delta from its two sides.
    pub fn new(insert: T, delete: T) -> Self {
        Self { insert, delete }
    }

    /// A delta borrowing both sides.
    pub fn as_ref(&self) -> Delta<&T> {
        Delta {
            insert: &self.insert,
            delete: &self.delete,
        }
    }

    /// Applies `f` to both sides.
    pub fn map<U>(self, mut f: impl FnMut(T) -> U) -> Delta<U> {
        Delta {
            insert: f(self.insert),
            delete: f(self.delete),
        }
    }
}

/// What kind of change reaches a node when base-relation deltas propagate
/// upward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeltaMode {
    /// No changed relation below this node.
    Unchanged,
    /// Only insertions reach this node.
    InsertOnly,
    /// Insertions and deletions reach this node.
    InsertDelete,
}

impl DeltaMode {
    /// Whether the change carries deletions.
    pub fn has_deletes(self) -> bool {
        self == DeltaMode::InsertDelete
    }
}

/// Why a node cannot be maintained by delta propagation. Each constant is a
/// rule from the module-level table; the engine surfaces them unchanged when
/// it falls back to recomputation.
pub mod reason {
    /// Deletions flowing into a join need the counting algorithm.
    pub const JOIN_DELETE: &str =
        "deletions through a join need the counting algorithm; recomputing";
    /// `AVG` is stored finalized (`SUM/COUNT`) and cannot be re-opened.
    pub const AVG_FOLD: &str = "AVG cannot be folded from finalized partials; recomputing";
    /// `MIN`/`MAX` cannot absorb deletions (the extremum may be gone).
    pub const MINMAX_DELETE: &str = "MIN/MAX cannot absorb deletions; recomputing";
    /// Deletions need a `COUNT` column to witness emptied groups.
    pub const COUNT_WITNESS: &str =
        "deletions need a COUNT aggregate to witness emptied groups; recomputing";
    /// An aggregate below the view root has no stored partials to fold into.
    pub const NESTED_AGGREGATE: &str =
        "an aggregate below the view root cannot stream deltas; recomputing";
}

/// Per-node outcome of delta propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeDelta {
    /// The node can pass the stated delta kind through.
    Mode(DeltaMode),
    /// The node blocks delta propagation for the stated rule.
    Recompute(&'static str),
}

/// The delta annotation of every node under one view root — the result of
/// [`label_deltas`], keyed by the arena's interned [`ExprId`]s.
#[derive(Debug, Clone)]
pub struct DeltaLabels {
    root: ExprId,
    modes: BTreeMap<ExprId, NodeDelta>,
}

impl DeltaLabels {
    /// The interned id of the labelled root.
    pub fn root_id(&self) -> ExprId {
        self.root
    }

    /// The root's delta outcome.
    pub fn root(&self) -> NodeDelta {
        self.modes[&self.root]
    }

    /// The outcome at one node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of the labelled sub-DAG.
    pub fn node(&self, id: ExprId) -> NodeDelta {
        self.modes[&id]
    }
}

/// Annotates every node of `root`'s sub-DAG with the delta reaching it when
/// the relations in `changed` receive the stated change kinds. Shared
/// subexpressions are labelled once — the annotation rides on the interned
/// [`ExprArena`] classes.
pub fn label_deltas(
    arena: &mut ExprArena,
    root: &Arc<Expr>,
    changed: &BTreeMap<RelName, DeltaMode>,
) -> DeltaLabels {
    let root_id = arena.intern(root);
    let order: Vec<ExprId> = arena.postorder(root_id).to_vec();
    let mut modes: BTreeMap<ExprId, NodeDelta> = BTreeMap::new();
    for id in order {
        let children: Vec<NodeDelta> = arena.children(id).iter().map(|c| modes[c]).collect();
        let label = match &**arena.expr(id) {
            Expr::Base(name) => {
                NodeDelta::Mode(changed.get(name).copied().unwrap_or(DeltaMode::Unchanged))
            }
            // σ and π distribute over ∪ and ∖: the child's delta kind
            // passes through unchanged.
            Expr::Select { .. } | Expr::Project { .. } => children[0],
            Expr::Join { .. } => join_label(&children),
            Expr::Aggregate { aggs, .. } => match children[0] {
                NodeDelta::Recompute(r) => NodeDelta::Recompute(r),
                NodeDelta::Mode(DeltaMode::Unchanged) => NodeDelta::Mode(DeltaMode::Unchanged),
                NodeDelta::Mode(mode) => aggregate_label(mode, aggs),
            },
        };
        modes.insert(id, label);
    }
    DeltaLabels {
        root: root_id,
        modes,
    }
}

/// Combines the children of an (arena-flattened) join. Any recompute verdict
/// propagates; otherwise insert-only deltas expand via
/// `ΔL⋈R ∪ L⋈ΔR ∪ ΔL⋈ΔR`, and deletions block.
fn join_label(children: &[NodeDelta]) -> NodeDelta {
    let mut mode = DeltaMode::Unchanged;
    for c in children {
        match c {
            NodeDelta::Recompute(r) => return NodeDelta::Recompute(r),
            NodeDelta::Mode(DeltaMode::Unchanged) => {}
            NodeDelta::Mode(DeltaMode::InsertOnly) => {
                if mode == DeltaMode::Unchanged {
                    mode = DeltaMode::InsertOnly;
                }
            }
            NodeDelta::Mode(DeltaMode::InsertDelete) => {
                return NodeDelta::Recompute(reason::JOIN_DELETE)
            }
        }
    }
    NodeDelta::Mode(mode)
}

/// Whether γ can fold the stated delta kind given its aggregate list.
fn aggregate_label(mode: DeltaMode, aggs: &[crate::AggExpr]) -> NodeDelta {
    if aggs.iter().any(|a| a.func == AggFunc::Avg) {
        return NodeDelta::Recompute(reason::AVG_FOLD);
    }
    match mode {
        DeltaMode::Unchanged => NodeDelta::Mode(DeltaMode::Unchanged),
        DeltaMode::InsertOnly => NodeDelta::Mode(DeltaMode::InsertOnly),
        DeltaMode::InsertDelete => {
            if aggs
                .iter()
                .any(|a| matches!(a.func, AggFunc::Min | AggFunc::Max))
            {
                return NodeDelta::Recompute(reason::MINMAX_DELETE);
            }
            if !aggs.iter().any(|a| a.func == AggFunc::Count) {
                return NodeDelta::Recompute(reason::COUNT_WITNESS);
            }
            NodeDelta::Mode(DeltaMode::InsertDelete)
        }
    }
}

/// How a refresh pass should maintain one view given the changed relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenancePlan {
    /// No changed relation reaches the view: keep the stored table.
    Noop,
    /// SPJ view: compute the view delta and apply it (append the inserts,
    /// cancel the deletes).
    Apply(DeltaMode),
    /// The view root is γ over a delta-maintainable input: fold per-group
    /// partials into the stored groups.
    FoldAggregate(DeltaMode),
    /// Delta maintenance is impossible; recompute, for the stated rule.
    Recompute(&'static str),
}

/// Classifies the maintenance strategy for `view` under `changed` — the
/// decision `Warehouse::refresh` makes per stale view.
pub fn maintenance_plan(
    arena: &mut ExprArena,
    view: &Arc<Expr>,
    changed: &BTreeMap<RelName, DeltaMode>,
) -> MaintenancePlan {
    let labels = label_deltas(arena, view, changed);
    let root = labels.root_id();
    let mode = match labels.root() {
        NodeDelta::Recompute(r) => return MaintenancePlan::Recompute(r),
        NodeDelta::Mode(DeltaMode::Unchanged) => return MaintenancePlan::Noop,
        NodeDelta::Mode(mode) => mode,
    };
    // A γ strictly below the root has no stored partials to fold into: it
    // would have to re-derive its whole output to emit a delta.
    for id in arena.postorder(root) {
        if *id == root {
            continue;
        }
        if matches!(&**arena.expr(*id), Expr::Aggregate { .. })
            && labels.node(*id) != NodeDelta::Mode(DeltaMode::Unchanged)
        {
            return MaintenancePlan::Recompute(reason::NESTED_AGGREGATE);
        }
    }
    if matches!(&**arena.expr(root), Expr::Aggregate { .. }) {
        MaintenancePlan::FoldAggregate(mode)
    } else {
        MaintenancePlan::Apply(mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggExpr, AttrRef, CompareOp, JoinCondition, Predicate};

    fn changed(pairs: &[(&str, DeltaMode)]) -> BTreeMap<RelName, DeltaMode> {
        pairs.iter().map(|(n, m)| (RelName::new(*n), *m)).collect()
    }

    fn spj() -> Arc<Expr> {
        Expr::project(
            Expr::join(
                Expr::select(
                    Expr::base("R"),
                    Predicate::cmp(AttrRef::new("R", "a"), CompareOp::Lt, 10),
                ),
                Expr::base("S"),
                JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k")),
            ),
            [AttrRef::new("R", "a"), AttrRef::new("S", "b")],
        )
    }

    #[test]
    fn select_project_distribute_both_delta_kinds() {
        let mut arena = ExprArena::new();
        let plan = Expr::project(
            Expr::select(
                Expr::base("R"),
                Predicate::cmp(AttrRef::new("R", "a"), CompareOp::Eq, 1),
            ),
            [AttrRef::new("R", "a")],
        );
        for mode in [DeltaMode::InsertOnly, DeltaMode::InsertDelete] {
            let labels = label_deltas(&mut arena, &plan, &changed(&[("R", mode)]));
            assert_eq!(labels.root(), NodeDelta::Mode(mode));
        }
    }

    #[test]
    fn untouched_relations_leave_the_view_unchanged() {
        let mut arena = ExprArena::new();
        let plan = maintenance_plan(
            &mut arena,
            &spj(),
            &changed(&[("T", DeltaMode::InsertOnly)]),
        );
        assert_eq!(plan, MaintenancePlan::Noop);
    }

    #[test]
    fn insert_deltas_expand_through_joins() {
        let mut arena = ExprArena::new();
        let plan = maintenance_plan(
            &mut arena,
            &spj(),
            &changed(&[("R", DeltaMode::InsertOnly), ("S", DeltaMode::InsertOnly)]),
        );
        assert_eq!(plan, MaintenancePlan::Apply(DeltaMode::InsertOnly));
    }

    #[test]
    fn join_deletes_force_recompute() {
        let mut arena = ExprArena::new();
        let plan = maintenance_plan(
            &mut arena,
            &spj(),
            &changed(&[("R", DeltaMode::InsertDelete)]),
        );
        assert_eq!(plan, MaintenancePlan::Recompute(reason::JOIN_DELETE));
    }

    fn gamma(aggs: Vec<AggExpr>) -> Arc<Expr> {
        Expr::aggregate(Expr::base("R"), [AttrRef::new("R", "g")], aggs)
    }

    #[test]
    fn count_sum_fold_inserts_and_deletes() {
        let mut arena = ExprArena::new();
        let view = gamma(vec![
            AggExpr::count_star("n"),
            AggExpr::new(AggFunc::Sum, AttrRef::new("R", "v"), "total"),
        ]);
        for mode in [DeltaMode::InsertOnly, DeltaMode::InsertDelete] {
            let plan = maintenance_plan(&mut arena, &view, &changed(&[("R", mode)]));
            assert_eq!(plan, MaintenancePlan::FoldAggregate(mode));
        }
    }

    #[test]
    fn min_max_fold_inserts_but_not_deletes() {
        let mut arena = ExprArena::new();
        let view = gamma(vec![
            AggExpr::count_star("n"),
            AggExpr::new(AggFunc::Min, AttrRef::new("R", "v"), "low"),
        ]);
        assert_eq!(
            maintenance_plan(&mut arena, &view, &changed(&[("R", DeltaMode::InsertOnly)])),
            MaintenancePlan::FoldAggregate(DeltaMode::InsertOnly)
        );
        assert_eq!(
            maintenance_plan(
                &mut arena,
                &view,
                &changed(&[("R", DeltaMode::InsertDelete)])
            ),
            MaintenancePlan::Recompute(reason::MINMAX_DELETE)
        );
    }

    #[test]
    fn avg_always_recomputes() {
        let mut arena = ExprArena::new();
        let view = gamma(vec![AggExpr::new(
            AggFunc::Avg,
            AttrRef::new("R", "v"),
            "mean",
        )]);
        assert_eq!(
            maintenance_plan(&mut arena, &view, &changed(&[("R", DeltaMode::InsertOnly)])),
            MaintenancePlan::Recompute(reason::AVG_FOLD)
        );
    }

    #[test]
    fn deletes_without_count_witness_recompute() {
        let mut arena = ExprArena::new();
        let view = gamma(vec![AggExpr::new(
            AggFunc::Sum,
            AttrRef::new("R", "v"),
            "total",
        )]);
        assert_eq!(
            maintenance_plan(
                &mut arena,
                &view,
                &changed(&[("R", DeltaMode::InsertDelete)])
            ),
            MaintenancePlan::Recompute(reason::COUNT_WITNESS)
        );
    }

    #[test]
    fn nested_aggregates_recompute() {
        let mut arena = ExprArena::new();
        let inner = gamma(vec![AggExpr::count_star("n")]);
        let view = Expr::select(
            inner,
            Predicate::cmp(AttrRef::new("#agg", "n"), CompareOp::Gt, 5),
        );
        assert_eq!(
            maintenance_plan(&mut arena, &view, &changed(&[("R", DeltaMode::InsertOnly)])),
            MaintenancePlan::Recompute(reason::NESTED_AGGREGATE)
        );
    }

    #[test]
    fn delta_carrier_maps_both_sides() {
        let d = Delta::new(vec![1, 2], vec![3]).map(|v| v.len());
        assert_eq!(d, Delta::new(2, 1));
        assert_eq!(*d.as_ref().insert, 2);
    }
}
