//! Named warehouse queries with access frequencies.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::expr::Expr;

/// A warehouse query: a name, an access frequency `fq`, and its SPJ
/// expression.
///
/// This is one "root node" of an MVPP in the paper's terminology; the
/// frequency is the number the paper draws above each query node in
/// Figure 3 (10 for Query 1, 0.5 for Query 2, …).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    name: String,
    frequency: f64,
    root: Arc<Expr>,
}

impl Query {
    /// Creates a query.
    ///
    /// # Panics
    ///
    /// Panics if `frequency` is negative or not finite.
    pub fn new(name: impl Into<String>, frequency: f64, root: Arc<Expr>) -> Self {
        assert!(
            frequency.is_finite() && frequency >= 0.0,
            "query frequency must be finite and non-negative, got {frequency}"
        );
        Self {
            name: name.into(),
            frequency,
            root,
        }
    }

    /// The query's name (e.g. `"Q1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Access frequency `fq` per unit period.
    pub fn frequency(&self) -> f64 {
        self.frequency
    }

    /// The query's expression tree.
    pub fn root(&self) -> &Arc<Expr> {
        &self.root
    }

    /// Returns the same query with a different expression tree (used by the
    /// optimizer to swap in a better plan).
    #[must_use]
    pub fn with_root(&self, root: Arc<Expr>) -> Self {
        Self {
            name: self.name.clone(),
            frequency: self.frequency,
            root,
        }
    }

    /// Returns the same query with a different frequency.
    #[must_use]
    pub fn with_frequency(&self, frequency: f64) -> Self {
        Self::new(self.name.clone(), frequency, Arc::clone(&self.root))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (fq={}): {}", self.name, self.frequency, self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let q = Query::new("Q1", 10.0, Expr::base("Product"));
        assert_eq!(q.name(), "Q1");
        assert_eq!(q.frequency(), 10.0);
        assert!(q.root().is_base());
    }

    #[test]
    fn with_root_preserves_identity() {
        let q = Query::new("Q1", 10.0, Expr::base("Product"));
        let q2 = q.with_root(Expr::base("Division"));
        assert_eq!(q2.name(), "Q1");
        assert_eq!(q2.frequency(), 10.0);
        assert_eq!(q2.root().to_string(), "Division");
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn negative_frequency_panics() {
        let _ = Query::new("Q", -1.0, Expr::base("R"));
    }
}
