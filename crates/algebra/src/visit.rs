//! Traversal helpers for expression trees.

use std::sync::Arc;

use crate::expr::Expr;

/// Visits every node of the tree in post-order (children before parents).
///
/// ```
/// use mvdesign_algebra::{postorder, Expr};
///
/// let e = Expr::join(Expr::base("A"), Expr::base("B"),
///                    mvdesign_algebra::JoinCondition::cross());
/// let mut labels = Vec::new();
/// postorder(&e, &mut |n| labels.push(n.op_label()));
/// assert_eq!(labels, ["A", "B", "⋈[×]"]);
/// ```
pub fn postorder(expr: &Arc<Expr>, visit: &mut impl FnMut(&Arc<Expr>)) {
    for child in expr.children() {
        postorder(child, visit);
    }
    visit(expr);
}

/// Collects every subexpression (including `expr` itself) in post-order.
pub fn collect_subexprs(expr: &Arc<Expr>) -> Vec<Arc<Expr>> {
    let mut out = Vec::new();
    postorder(expr, &mut |n| out.push(Arc::clone(n)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::JoinCondition;
    use crate::predicate::{CompareOp, Predicate};
    use mvdesign_catalog::AttrRef;

    #[test]
    fn postorder_visits_children_first() {
        let e = Expr::select(
            Expr::join(Expr::base("A"), Expr::base("B"), JoinCondition::cross()),
            Predicate::cmp(AttrRef::new("A", "x"), CompareOp::Gt, 1),
        );
        let all = collect_subexprs(&e);
        assert_eq!(all.len(), 4);
        assert!(all[0].is_base());
        assert!(all[1].is_base());
        assert!(matches!(&*all[2], Expr::Join { .. }));
        assert!(matches!(&*all[3], Expr::Select { .. }));
    }
}
