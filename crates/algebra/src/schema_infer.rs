//! Output-schema inference: which qualified attributes an expression yields.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use mvdesign_catalog::{AttrRef, Catalog, RelName};

use crate::expr::Expr;
use crate::predicate::{Predicate, Rhs};

/// Errors raised while inferring an expression's output attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InferError {
    /// A base relation is not in the catalog.
    UnknownRelation(RelName),
    /// A predicate, projection or join condition references an attribute the
    /// input does not produce.
    MissingAttr {
        /// The attribute that was referenced.
        attr: AttrRef,
        /// The operator that referenced it.
        within: &'static str,
    },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            InferError::MissingAttr { attr, within } => {
                write!(
                    f,
                    "{within} references `{attr}`, which its input does not produce"
                )
            }
        }
    }
}

impl Error for InferError {}

/// Computes the qualified attributes produced by `expr`, validating every
/// attribute reference along the way.
///
/// Attributes stay qualified by their *base* relation all the way up the
/// tree, mirroring the paper's figures (`Pd.name`, `Div.city`, …).
///
/// # Errors
///
/// Returns [`InferError`] if a base relation is unknown or any operator
/// references an attribute its input does not produce.
pub fn output_attrs(expr: &Arc<Expr>, catalog: &Catalog) -> Result<Vec<AttrRef>, InferError> {
    match &**expr {
        Expr::Base(name) => {
            let schema = catalog
                .schema(name.as_str())
                .ok_or_else(|| InferError::UnknownRelation(name.clone()))?;
            Ok(schema
                .attributes()
                .iter()
                .map(|a| AttrRef::new(name.clone(), a.name.clone()))
                .collect())
        }
        Expr::Select { input, predicate } => {
            let attrs = output_attrs(input, catalog)?;
            check_predicate(predicate, &attrs)?;
            Ok(attrs)
        }
        Expr::Project { input, attrs } => {
            let avail = output_attrs(input, catalog)?;
            for a in attrs {
                if !avail.contains(a) {
                    return Err(InferError::MissingAttr {
                        attr: a.clone(),
                        within: "projection",
                    });
                }
            }
            Ok(attrs.clone())
        }
        Expr::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let avail = output_attrs(input, catalog)?;
            for g in group_by {
                if !avail.contains(g) {
                    return Err(InferError::MissingAttr {
                        attr: g.clone(),
                        within: "group by",
                    });
                }
            }
            let mut out = group_by.clone();
            for a in aggs {
                if let Some(input_attr) = &a.input {
                    if !avail.contains(input_attr) {
                        return Err(InferError::MissingAttr {
                            attr: input_attr.clone(),
                            within: "aggregate",
                        });
                    }
                }
                out.push(a.output_attr());
            }
            Ok(out)
        }
        Expr::Join { left, right, on } => {
            let mut attrs = output_attrs(left, catalog)?;
            attrs.extend(output_attrs(right, catalog)?);
            for (a, b) in on.pairs() {
                for side in [a, b] {
                    if !attrs.contains(side) {
                        return Err(InferError::MissingAttr {
                            attr: side.clone(),
                            within: "join condition",
                        });
                    }
                }
            }
            Ok(attrs)
        }
    }
}

fn check_predicate(p: &Predicate, avail: &[AttrRef]) -> Result<(), InferError> {
    match p {
        Predicate::True => Ok(()),
        Predicate::Cmp(c) => {
            if !avail.contains(&c.attr) {
                return Err(InferError::MissingAttr {
                    attr: c.attr.clone(),
                    within: "selection",
                });
            }
            if let Rhs::Attr(a) = &c.rhs {
                if !avail.contains(a) {
                    return Err(InferError::MissingAttr {
                        attr: a.clone(),
                        within: "selection",
                    });
                }
            }
            Ok(())
        }
        Predicate::And(ps) | Predicate::Or(ps) => {
            ps.iter().try_for_each(|p| check_predicate(p, avail))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::JoinCondition;
    use crate::predicate::CompareOp;
    use mvdesign_catalog::AttrType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("Product")
            .attr("Pid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("Did", AttrType::Int)
            .records(30_000.0)
            .blocks(3_000.0)
            .finish()
            .unwrap();
        c.relation("Division")
            .attr("Did", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("city", AttrType::Text)
            .records(5_000.0)
            .blocks(500.0)
            .finish()
            .unwrap();
        c
    }

    #[test]
    fn base_attrs_are_qualified() {
        let c = catalog();
        let attrs = output_attrs(&Expr::base("Division"), &c).unwrap();
        assert_eq!(attrs.len(), 3);
        assert_eq!(attrs[0], AttrRef::new("Division", "Did"));
    }

    #[test]
    fn join_concatenates_and_validates() {
        let c = catalog();
        let e = Expr::join(
            Expr::base("Product"),
            Expr::base("Division"),
            JoinCondition::on(
                AttrRef::new("Product", "Did"),
                AttrRef::new("Division", "Did"),
            ),
        );
        let attrs = output_attrs(&e, &c).unwrap();
        assert_eq!(attrs.len(), 6);
    }

    #[test]
    fn projection_narrows_output() {
        let c = catalog();
        let e = Expr::project(Expr::base("Product"), [AttrRef::new("Product", "name")]);
        assert_eq!(output_attrs(&e, &c).unwrap().len(), 1);
    }

    #[test]
    fn projection_after_projection_cannot_resurrect() {
        let c = catalog();
        let narrowed = Expr::project(Expr::base("Product"), [AttrRef::new("Product", "name")]);
        let e = Expr::project(narrowed, [AttrRef::new("Product", "Pid")]);
        assert!(matches!(
            output_attrs(&e, &c),
            Err(InferError::MissingAttr { .. })
        ));
    }

    #[test]
    fn selection_on_missing_attr_fails() {
        let c = catalog();
        let e = Expr::select(
            Expr::base("Product"),
            Predicate::cmp(AttrRef::new("Division", "city"), CompareOp::Eq, "LA"),
        );
        assert!(matches!(
            output_attrs(&e, &c),
            Err(InferError::MissingAttr { .. })
        ));
    }

    #[test]
    fn unknown_relation_fails() {
        let c = catalog();
        assert_eq!(
            output_attrs(&Expr::base("Ghost"), &c),
            Err(InferError::UnknownRelation(RelName::new("Ghost")))
        );
    }
}
