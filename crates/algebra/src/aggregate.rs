//! Grouping and aggregation — the paper's first "future work" item
//! ("we are working on materialized view design for more complicated
//! queries such as query with aggregation functions").

use std::fmt;

use mvdesign_catalog::{AttrName, AttrRef};
use serde::{Deserialize, Serialize};

/// The pseudo-relation qualifying aggregate output attributes.
///
/// `SUM(quantity) AS total` produces the attribute `#agg.total`: aggregate
/// results belong to no base relation, and the reserved `#agg` qualifier
/// cannot collide with parser-accepted relation names.
pub const AGG_RELATION: &str = "#agg";

/// An aggregation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(attr)` — number of rows in the group.
    Count,
    /// `SUM(attr)` over integer attributes.
    Sum,
    /// `MIN(attr)`.
    Min,
    /// `MAX(attr)`.
    Max,
    /// `AVG(attr)` — integer average (`SUM/COUNT`, truncated), since values
    /// are integral in this model.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Avg => "AVG",
        };
        f.write_str(s)
    }
}

/// One aggregate in an [`Expr::Aggregate`](crate::Expr::Aggregate) node,
/// e.g. `SUM(Order.quantity) AS total_quantity`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AggExpr {
    /// The function applied.
    pub func: AggFunc,
    /// The aggregated attribute; `None` only for `COUNT(*)`.
    pub input: Option<AttrRef>,
    /// Output attribute name (qualified as `#agg.alias` downstream).
    pub alias: AttrName,
}

impl AggExpr {
    /// Creates an aggregate over an attribute.
    pub fn new(func: AggFunc, input: AttrRef, alias: impl Into<AttrName>) -> Self {
        Self {
            func,
            input: Some(input),
            alias: alias.into(),
        }
    }

    /// Creates a `COUNT(*)`.
    pub fn count_star(alias: impl Into<AttrName>) -> Self {
        Self {
            func: AggFunc::Count,
            input: None,
            alias: alias.into(),
        }
    }

    /// The qualified output attribute (`#agg.alias`).
    pub fn output_attr(&self) -> AttrRef {
        AttrRef::new(AGG_RELATION, self.alias.clone())
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.input {
            Some(a) => write!(f, "{}({a}) AS {}", self.func, self.alias),
            None => write!(f, "{}(*) AS {}", self.func, self.alias),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_attr_is_agg_qualified() {
        let a = AggExpr::new(AggFunc::Sum, AttrRef::new("Order", "quantity"), "total");
        assert_eq!(a.output_attr(), AttrRef::new(AGG_RELATION, "total"));
        assert_eq!(a.to_string(), "SUM(Order.quantity) AS total");
    }

    #[test]
    fn count_star_has_no_input() {
        let a = AggExpr::count_star("n");
        assert!(a.input.is_none());
        assert_eq!(a.to_string(), "COUNT(*) AS n");
    }

    #[test]
    fn functions_are_ordered_for_canonicalisation() {
        assert!(AggFunc::Count < AggFunc::Sum);
    }
}
