//! A hand-written parser for the SQL dialect the paper's queries use:
//! `SELECT attrs FROM relations WHERE comparisons AND …`.
//!
//! The parser produces a *canonical* (unoptimised) [`Expr`]: relations are
//! joined left-deep in `FROM` order with their equi-join conditions, the
//! remaining predicates form one selection on top, and the `SELECT` list
//! becomes a final projection. The optimizer crate then rewrites this into
//! the "individual optimal plans" of the paper's Figure 5.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use mvdesign_catalog::{AttrRef, Catalog};

use crate::aggregate::{AggExpr, AggFunc};
use crate::expr::{Expr, JoinCondition};
use crate::predicate::{CompareOp, Comparison, Predicate, Rhs};
use crate::value::Value;

/// Errors produced while parsing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// An unrecognised character in the input.
    Lex {
        /// Byte offset of the offending character.
        pos: usize,
        /// The character itself.
        found: char,
    },
    /// The parser expected something else.
    Unexpected {
        /// What was expected.
        expected: String,
        /// What was found instead.
        found: String,
    },
    /// An unqualified attribute could not be resolved to a relation.
    UnresolvedAttribute(String),
    /// An unqualified attribute matched more than one `FROM` relation.
    AmbiguousAttribute(String),
    /// A construct outside the supported SPJ dialect.
    Unsupported(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex { pos, found } => {
                write!(f, "unrecognised character `{found}` at byte {pos}")
            }
            ParseError::Unexpected { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseError::UnresolvedAttribute(a) => {
                write!(f, "cannot resolve attribute `{a}` to a FROM relation")
            }
            ParseError::AmbiguousAttribute(a) => {
                write!(f, "attribute `{a}` is ambiguous among the FROM relations")
            }
            ParseError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
        }
    }
}

impl Error for ParseError {}

/// Parses a query without a catalog.
///
/// Unqualified attributes can only be resolved when the `FROM` clause names
/// a single relation; otherwise qualify them (`Div.city`).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or unresolvable attributes.
pub fn parse_query(sql: &str) -> Result<Arc<Expr>, ParseError> {
    parse_with_resolver(sql, None)
}

/// Parses a query, resolving unqualified attributes against catalog schemas
/// (the paper writes `quantity > 100` without qualification).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, or when an unqualified
/// attribute matches zero or several `FROM` relations.
pub fn parse_query_with(sql: &str, catalog: &Catalog) -> Result<Arc<Expr>, ParseError> {
    parse_with_resolver(sql, Some(catalog))
}

fn parse_with_resolver(sql: &str, catalog: Option<&Catalog>) -> Result<Arc<Expr>, ParseError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.expect_end()?;
    build(stmt, catalog)
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    /// `m/d/yy` date literal, as written in the paper (`date > 7/1/96`).
    Date(i64, i64, i64),
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Op(CompareOp),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(i) => write!(f, "`{i}`"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::Date(m, d, y) => write!(f, "`{m}/{d}/{y}`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Op(op) => write!(f, "`{op}`"),
        }
    }
}

fn lex(sql: &str) -> Result<Vec<Tok>, ParseError> {
    let bytes = sql.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Op(CompareOp::Eq));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Op(CompareOp::Le));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(Tok::Op(CompareOp::Ne));
                    i += 2;
                } else {
                    toks.push(Tok::Op(CompareOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Op(CompareOp::Ge));
                    i += 2;
                } else {
                    toks.push(Tok::Op(CompareOp::Gt));
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError::Unexpected {
                        expected: format!("closing {quote}"),
                        found: "end of input".into(),
                    });
                }
                toks.push(Tok::Str(sql[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let first: i64 = sql[start..i].parse().expect("digits");
                // Date literal `m/d/yy`?
                if bytes.get(i) == Some(&b'/') {
                    let (d, ni) = lex_number(sql, i + 1)?;
                    if bytes.get(ni) == Some(&b'/') {
                        let (y, nj) = lex_number(sql, ni + 1)?;
                        toks.push(Tok::Date(first, d, y));
                        i = nj;
                        continue;
                    }
                    return Err(ParseError::Unexpected {
                        expected: "date literal m/d/yy".into(),
                        found: sql[start..ni].to_string(),
                    });
                }
                toks.push(Tok::Int(first));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && {
                    let ch = bytes[i] as char;
                    ch.is_ascii_alphanumeric() || ch == '_'
                } {
                    i += 1;
                }
                toks.push(Tok::Ident(sql[start..i].to_string()));
            }
            other => {
                return Err(ParseError::Lex {
                    pos: i,
                    found: other,
                })
            }
        }
    }
    Ok(toks)
}

fn lex_number(sql: &str, mut i: usize) -> Result<(i64, usize), ParseError> {
    let bytes = sql.as_bytes();
    let start = i;
    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
        i += 1;
    }
    if start == i {
        return Err(ParseError::Unexpected {
            expected: "digits".into(),
            found: sql[start..]
                .chars()
                .next()
                .map_or("end of input".into(), |c| c.to_string()),
        });
    }
    Ok((sql[start..i].parse().expect("digits"), i))
}

// --------------------------------------------------------------- parser --

#[derive(Debug, Clone, PartialEq)]
struct AttrSpec {
    relation: Option<String>,
    attr: String,
}

impl fmt::Display for AttrSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.relation {
            Some(r) => write!(f, "{r}.{}", self.attr),
            None => write!(f, "{}", self.attr),
        }
    }
}

#[derive(Debug, Clone)]
enum RawRhs {
    Value(Value),
    Attr(AttrSpec),
}

#[derive(Debug, Clone)]
enum Cond {
    Cmp(AttrSpec, CompareOp, RawRhs),
    And(Vec<Cond>),
    Or(Vec<Cond>),
}

#[derive(Debug, Clone)]
enum SelectItem {
    Attr(AttrSpec),
    Agg {
        func: AggFunc,
        arg: Option<AttrSpec>, // None = COUNT(*)
        alias: Option<String>,
    },
}

struct Statement {
    select: Option<Vec<SelectItem>>, // None = `*`
    from: Vec<String>,
    where_: Option<Cond>,
    group_by: Vec<AttrSpec>,
    having: Option<Cond>,
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn found(&self) -> String {
        self.peek().map_or("end of input".into(), |t| t.to_string())
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::Unexpected {
                expected: format!("`{kw}`"),
                found: self.found(),
            })
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(ParseError::Unexpected {
                expected: "identifier".into(),
                found: other.map_or("end of input".into(), |t| t.to_string()),
            }),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        self.keyword("select")?;
        let select = if matches!(self.peek(), Some(Tok::Star)) {
            self.pos += 1;
            None
        } else {
            let mut list = vec![self.select_item()?];
            while matches!(self.peek(), Some(Tok::Comma)) {
                self.pos += 1;
                list.push(self.select_item()?);
            }
            Some(list)
        };
        self.keyword("from")?;
        let mut from = vec![self.ident()?];
        while matches!(self.peek(), Some(Tok::Comma)) {
            self.pos += 1;
            from.push(self.ident()?);
        }
        let where_ = if self.eat_keyword("where") {
            Some(self.disjunction()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.keyword("by")?;
            group_by.push(self.attr_spec()?);
            while matches!(self.peek(), Some(Tok::Comma)) {
                self.pos += 1;
                group_by.push(self.attr_spec()?);
            }
        }
        let having = if self.eat_keyword("having") {
            Some(self.disjunction()?)
        } else {
            None
        };
        Ok(Statement {
            select,
            from,
            where_,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        // Aggregate call? An aggregate keyword immediately followed by `(`.
        if let Some(Tok::Ident(name)) = self.peek() {
            let func = match name.to_ascii_lowercase().as_str() {
                "count" => Some(AggFunc::Count),
                "sum" => Some(AggFunc::Sum),
                "min" => Some(AggFunc::Min),
                "max" => Some(AggFunc::Max),
                "avg" => Some(AggFunc::Avg),
                _ => None,
            };
            if let Some(func) = func {
                if matches!(self.tokens.get(self.pos + 1), Some(Tok::LParen)) {
                    self.pos += 2; // the function name and `(`
                    let arg = if matches!(self.peek(), Some(Tok::Star)) {
                        if func != AggFunc::Count {
                            return Err(ParseError::Unsupported(format!(
                                "{func}(*) — only COUNT accepts *"
                            )));
                        }
                        self.pos += 1;
                        None
                    } else {
                        Some(self.attr_spec()?)
                    };
                    match self.next() {
                        Some(Tok::RParen) => {}
                        other => {
                            return Err(ParseError::Unexpected {
                                expected: "`)`".into(),
                                found: other.map_or("end of input".into(), |t| t.to_string()),
                            })
                        }
                    }
                    let alias = if self.eat_keyword("as") {
                        Some(self.ident()?)
                    } else {
                        None
                    };
                    return Ok(SelectItem::Agg { func, arg, alias });
                }
            }
        }
        let attr = self.attr_spec()?;
        Ok(SelectItem::Attr(attr))
    }

    fn attr_spec(&mut self) -> Result<AttrSpec, ParseError> {
        let first = self.ident()?;
        if matches!(self.peek(), Some(Tok::Dot)) {
            self.pos += 1;
            let attr = self.ident()?;
            Ok(AttrSpec {
                relation: Some(first),
                attr,
            })
        } else {
            Ok(AttrSpec {
                relation: None,
                attr: first,
            })
        }
    }

    fn disjunction(&mut self) -> Result<Cond, ParseError> {
        let mut parts = vec![self.conjunction()?];
        while self.eat_keyword("or") {
            parts.push(self.conjunction()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Cond::Or(parts)
        })
    }

    fn conjunction(&mut self) -> Result<Cond, ParseError> {
        let mut parts = vec![self.atom()?];
        while self.eat_keyword("and") {
            parts.push(self.atom()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Cond::And(parts)
        })
    }

    fn atom(&mut self) -> Result<Cond, ParseError> {
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.pos += 1;
            let inner = self.disjunction()?;
            match self.next() {
                Some(Tok::RParen) => return Ok(inner),
                other => {
                    return Err(ParseError::Unexpected {
                        expected: "`)`".into(),
                        found: other.map_or("end of input".into(), |t| t.to_string()),
                    })
                }
            }
        }
        let lhs = self.attr_spec()?;
        let op = match self.next() {
            Some(Tok::Op(op)) => op,
            other => {
                return Err(ParseError::Unexpected {
                    expected: "comparison operator".into(),
                    found: other.map_or("end of input".into(), |t| t.to_string()),
                })
            }
        };
        let rhs = match self.next() {
            Some(Tok::Int(i)) => RawRhs::Value(Value::Int(i)),
            Some(Tok::Str(s)) => RawRhs::Value(Value::text(s)),
            Some(Tok::Date(m, d, y)) => {
                let year = if y < 100 { 1900 + y } else { y };
                RawRhs::Value(Value::date(year, m, d))
            }
            Some(Tok::Ident(first)) => {
                if matches!(self.peek(), Some(Tok::Dot)) {
                    self.pos += 1;
                    let attr = self.ident()?;
                    RawRhs::Attr(AttrSpec {
                        relation: Some(first),
                        attr,
                    })
                } else {
                    RawRhs::Attr(AttrSpec {
                        relation: None,
                        attr: first,
                    })
                }
            }
            other => {
                return Err(ParseError::Unexpected {
                    expected: "literal or attribute".into(),
                    found: other.map_or("end of input".into(), |t| t.to_string()),
                })
            }
        };
        Ok(Cond::Cmp(lhs, op, rhs))
    }

    fn expect_end(&mut self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(ParseError::Unexpected {
                expected: "end of input".into(),
                found: self.found(),
            })
        }
    }
}

// -------------------------------------------------------------- builder --

fn resolve(
    spec: &AttrSpec,
    from: &[String],
    catalog: Option<&Catalog>,
) -> Result<AttrRef, ParseError> {
    if let Some(rel) = &spec.relation {
        return Ok(AttrRef::new(rel.as_str(), spec.attr.as_str()));
    }
    if let Some(catalog) = catalog {
        let mut owners: Vec<&String> = Vec::new();
        for rel in from {
            if let Some(schema) = catalog.schema(rel) {
                if schema.contains(&spec.attr) {
                    owners.push(rel);
                }
            }
        }
        return match owners.len() {
            0 => Err(ParseError::UnresolvedAttribute(spec.attr.clone())),
            1 => Ok(AttrRef::new(owners[0].as_str(), spec.attr.as_str())),
            _ => Err(ParseError::AmbiguousAttribute(spec.attr.clone())),
        };
    }
    if from.len() == 1 {
        Ok(AttrRef::new(from[0].as_str(), spec.attr.as_str()))
    } else {
        Err(ParseError::UnresolvedAttribute(spec.attr.clone()))
    }
}

/// A resolved conjunct: either a join condition or a selection predicate.
enum Conjunct {
    Join(AttrRef, AttrRef),
    Filter(Predicate),
}

fn resolve_cond(
    cond: &Cond,
    from: &[String],
    catalog: Option<&Catalog>,
    top_level: bool,
) -> Result<Vec<Conjunct>, ParseError> {
    match cond {
        Cond::And(parts) if top_level => {
            let mut out = Vec::new();
            for p in parts {
                out.extend(resolve_cond(p, from, catalog, true)?);
            }
            Ok(out)
        }
        Cond::Cmp(lhs, op, RawRhs::Attr(rhs_spec)) => {
            let l = resolve(lhs, from, catalog)?;
            let r = resolve(rhs_spec, from, catalog)?;
            if *op == CompareOp::Eq && l.relation != r.relation {
                Ok(vec![Conjunct::Join(l, r)])
            } else {
                // Attribute-vs-attribute comparison within one relation (or
                // a theta comparison): keep as a filter.
                Ok(vec![Conjunct::Filter(Predicate::Cmp(Comparison {
                    attr: l,
                    op: *op,
                    rhs: Rhs::Attr(r),
                }))])
            }
        }
        Cond::Cmp(lhs, op, RawRhs::Value(v)) => {
            let l = resolve(lhs, from, catalog)?;
            Ok(vec![Conjunct::Filter(Predicate::Cmp(Comparison {
                attr: l,
                op: *op,
                rhs: Rhs::Literal(v.clone()),
            }))])
        }
        Cond::And(parts) => {
            // Nested under an OR: must be pure filters.
            let mut preds = Vec::new();
            for p in parts {
                for c in resolve_cond(p, from, catalog, false)? {
                    match c {
                        Conjunct::Filter(f) => preds.push(f),
                        Conjunct::Join(a, b) => {
                            return Err(ParseError::Unsupported(format!(
                                "join condition {a}={b} nested under OR"
                            )))
                        }
                    }
                }
            }
            Ok(vec![Conjunct::Filter(Predicate::and(preds))])
        }
        Cond::Or(parts) => {
            let mut preds = Vec::new();
            for p in parts {
                for c in resolve_cond(p, from, catalog, false)? {
                    match c {
                        Conjunct::Filter(f) => preds.push(f),
                        Conjunct::Join(a, b) => {
                            return Err(ParseError::Unsupported(format!(
                                "join condition {a}={b} nested under OR"
                            )))
                        }
                    }
                }
            }
            Ok(vec![Conjunct::Filter(Predicate::or(preds))])
        }
    }
}

fn build(stmt: Statement, catalog: Option<&Catalog>) -> Result<Arc<Expr>, ParseError> {
    let from = &stmt.from;
    let mut joins: Vec<(AttrRef, AttrRef)> = Vec::new();
    let mut filters: Vec<Predicate> = Vec::new();
    if let Some(w) = &stmt.where_ {
        for c in resolve_cond(w, from, catalog, true)? {
            match c {
                Conjunct::Join(a, b) => joins.push((a, b)),
                Conjunct::Filter(f) => filters.push(f),
            }
        }
    }

    // Left-deep join in FROM order, attaching each equi-condition at the
    // first join where both sides are available.
    let mut in_tree: Vec<&str> = vec![from[0].as_str()];
    let mut used = vec![false; joins.len()];
    let mut expr = Expr::base(from[0].as_str());
    for rel in &from[1..] {
        let mut pairs = Vec::new();
        for (i, (a, b)) in joins.iter().enumerate() {
            if used[i] {
                continue;
            }
            let a_in = in_tree.contains(&a.relation.as_str());
            let b_in = in_tree.contains(&b.relation.as_str());
            let a_new = a.relation == rel.as_str();
            let b_new = b.relation == rel.as_str();
            if (a_in && b_new) || (b_in && a_new) {
                pairs.push((a.clone(), b.clone()));
                used[i] = true;
            }
        }
        expr = Expr::join(expr, Expr::base(rel.as_str()), JoinCondition::new(pairs));
        in_tree.push(rel.as_str());
    }

    // Join conditions whose relations never both appeared become equality
    // filters (e.g. a self-referential condition, or a condition over
    // relations missing from FROM — let schema inference report the latter).
    for (i, (a, b)) in joins.iter().enumerate() {
        if !used[i] {
            filters.push(Predicate::Cmp(Comparison {
                attr: a.clone(),
                op: CompareOp::Eq,
                rhs: Rhs::Attr(b.clone()),
            }));
        }
    }

    expr = Expr::select(expr, Predicate::and(filters));

    let has_aggs = stmt
        .select
        .as_ref()
        .is_some_and(|l| l.iter().any(|i| matches!(i, SelectItem::Agg { .. })));

    if !has_aggs && stmt.group_by.is_empty() {
        if stmt.having.is_some() {
            return Err(ParseError::Unsupported(
                "HAVING without GROUP BY or aggregates".into(),
            ));
        }
        if let Some(list) = &stmt.select {
            let attrs = list
                .iter()
                .map(|item| match item {
                    SelectItem::Attr(a) => resolve(a, from, catalog),
                    SelectItem::Agg { .. } => unreachable!("has_aggs is false"),
                })
                .collect::<Result<Vec<_>, _>>()?;
            expr = Expr::project(expr, attrs);
        }
        return Ok(expr);
    }

    // Aggregation query. Group keys: the GROUP BY clause, or — when absent —
    // the plain attributes of the select list.
    let list = stmt.select.as_ref().ok_or_else(|| {
        ParseError::Unsupported("SELECT * together with GROUP BY/aggregates".into())
    })?;
    let mut group_by: Vec<AttrRef> = stmt
        .group_by
        .iter()
        .map(|g| resolve(g, from, catalog))
        .collect::<Result<_, _>>()?;
    if group_by.is_empty() {
        for item in list {
            if let SelectItem::Attr(a) = item {
                let r = resolve(a, from, catalog)?;
                if !group_by.contains(&r) {
                    group_by.push(r);
                }
            }
        }
    }

    // Build the aggregates, generating aliases where none were given.
    let mut aggs: Vec<AggExpr> = Vec::new();
    let mut output: Vec<AttrRef> = Vec::new();
    for item in list {
        match item {
            SelectItem::Attr(a) => {
                let r = resolve(a, from, catalog)?;
                if !group_by.contains(&r) {
                    return Err(ParseError::Unsupported(format!(
                        "non-aggregated attribute {r} outside GROUP BY"
                    )));
                }
                output.push(r);
            }
            SelectItem::Agg { func, arg, alias } => {
                let input = match arg {
                    Some(a) => Some(resolve(a, from, catalog)?),
                    None => None,
                };
                let mut name = alias.clone().unwrap_or_else(|| match &input {
                    Some(a) => format!(
                        "{}_{}",
                        func.to_string().to_ascii_lowercase(),
                        a.attr.as_str()
                    ),
                    None => "count_star".to_string(),
                });
                while aggs.iter().any(|g| g.alias == name.as_str()) {
                    name.push('_');
                }
                let agg = AggExpr {
                    func: *func,
                    input,
                    alias: name.as_str().into(),
                };
                output.push(agg.output_attr());
                aggs.push(agg);
            }
        }
    }

    expr = Expr::aggregate(expr, group_by.clone(), aggs.clone());
    if let Some(having) = &stmt.having {
        let predicate = resolve_having(having, from, catalog, &aggs)?;
        expr = Arc::new(Expr::Select {
            input: expr,
            predicate,
        });
    }
    // Reorder with a projection when the listed order differs from the
    // aggregate's natural (groups, then aggs) order.
    let natural: Vec<AttrRef> = group_by
        .iter()
        .cloned()
        .chain(aggs.iter().map(AggExpr::output_attr))
        .collect();
    if output != natural {
        expr = Expr::project(expr, output);
    }
    Ok(expr)
}

/// Resolves a HAVING condition: unqualified attributes naming an aggregate
/// alias become `#agg.alias`; everything else resolves like a WHERE
/// condition. Attribute-vs-attribute comparisons stay filters (no join
/// extraction above an aggregation).
fn resolve_having(
    cond: &Cond,
    from: &[String],
    catalog: Option<&Catalog>,
    aggs: &[AggExpr],
) -> Result<Predicate, ParseError> {
    let resolve_spec = |spec: &AttrSpec| -> Result<AttrRef, ParseError> {
        if spec.relation.is_none() {
            if let Some(agg) = aggs.iter().find(|a| a.alias == spec.attr.as_str()) {
                return Ok(agg.output_attr());
            }
        }
        resolve(spec, from, catalog)
    };
    match cond {
        Cond::Cmp(lhs, op, rhs) => {
            let attr = resolve_spec(lhs)?;
            let rhs = match rhs {
                RawRhs::Value(v) => Rhs::Literal(v.clone()),
                RawRhs::Attr(spec) => Rhs::Attr(resolve_spec(spec)?),
            };
            Ok(Predicate::Cmp(Comparison { attr, op: *op, rhs }))
        }
        Cond::And(parts) => Ok(Predicate::and(
            parts
                .iter()
                .map(|p| resolve_having(p, from, catalog, aggs))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Cond::Or(parts) => Ok(Predicate::or(
            parts
                .iter()
                .map(|p| resolve_having(p, from, catalog, aggs))
                .collect::<Result<Vec<_>, _>>()?,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_catalog::AttrType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("Ord")
            .attr("Pid", AttrType::Int)
            .attr("Cid", AttrType::Int)
            .attr("quantity", AttrType::Int)
            .attr("date", AttrType::Date)
            .records(50_000.0)
            .blocks(6_000.0)
            .finish()
            .unwrap();
        c.relation("Cust")
            .attr("Cid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("city", AttrType::Text)
            .records(20_000.0)
            .blocks(2_000.0)
            .finish()
            .unwrap();
        c
    }

    #[test]
    fn parses_paper_query1() {
        let e = parse_query("Select Pd.name From Pd, Div Where Div.city='LA' and Pd.Did=Div.Did")
            .unwrap();
        // π over σ? No: the only filter goes on top of the join, then π.
        match &*e {
            Expr::Project { input, attrs } => {
                assert_eq!(attrs, &[AttrRef::new("Pd", "name")]);
                match &**input {
                    Expr::Select {
                        input: j,
                        predicate,
                    } => {
                        assert_eq!(predicate.to_string(), "Div.city='LA'");
                        assert!(matches!(&**j, Expr::Join { .. }));
                    }
                    other => panic!("expected select, got {other}"),
                }
            }
            other => panic!("expected project, got {other}"),
        }
    }

    #[test]
    fn parses_paper_query4_with_catalog_resolution() {
        let c = catalog();
        let e = parse_query_with(
            "Select Cust.city, date From Ord, Cust Where quantity>100 and Ord.Cid=Cust.Cid",
            &c,
        )
        .unwrap();
        let s = e.to_string();
        assert!(s.contains("Ord.quantity>100"), "{s}");
        assert!(s.contains("Cust.Cid=Ord.Cid"), "{s}");
        assert!(s.contains("π[Cust.city,Ord.date]"), "{s}");
    }

    #[test]
    fn parses_date_literals() {
        let c = catalog();
        let e = parse_query_with(
            "Select Cust.name From Ord, Cust Where Ord.Cid=Cust.Cid and date>7/1/96",
            &c,
        )
        .unwrap();
        assert!(e
            .to_string()
            .contains(&format!("{}", Value::date(1996, 7, 1))));
    }

    #[test]
    fn ambiguous_unqualified_attribute_is_rejected() {
        let c = catalog();
        // `Cid` exists in both Ord and Cust.
        let err = parse_query_with("Select name From Ord, Cust Where Cid > 3", &c).unwrap_err();
        assert_eq!(err, ParseError::AmbiguousAttribute("Cid".into()));
    }

    #[test]
    fn unresolvable_attribute_without_catalog() {
        let err = parse_query("Select name From A, B").unwrap_err();
        assert_eq!(err, ParseError::UnresolvedAttribute("name".into()));
    }

    #[test]
    fn single_table_unqualified_resolves_without_catalog() {
        let e = parse_query("Select name From Cust Where city = 'LA'").unwrap();
        assert!(e.to_string().contains("Cust.city='LA'"));
    }

    #[test]
    fn star_means_no_projection() {
        let e = parse_query("Select * From Cust").unwrap();
        assert!(e.is_base());
    }

    #[test]
    fn or_of_filters_is_supported() {
        let e = parse_query("Select * From Div Where city = 'LA' or city = 'SF'").unwrap();
        match &*e {
            Expr::Select { predicate, .. } => {
                assert!(matches!(predicate, Predicate::Or(_)));
            }
            other => panic!("expected select, got {other}"),
        }
    }

    #[test]
    fn join_condition_under_or_is_rejected() {
        let err = parse_query("Select * From A, B Where A.x = B.y or A.z = 1").unwrap_err();
        assert!(matches!(err, ParseError::Unsupported(_)));
    }

    #[test]
    fn cross_join_when_no_condition() {
        let e = parse_query("Select * From A, B").unwrap();
        match &*e {
            Expr::Join { on, .. } => assert!(on.is_cross()),
            other => panic!("expected join, got {other}"),
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let err = parse_query("Select * From A extra").unwrap_err();
        assert!(matches!(err, ParseError::Unexpected { .. }));
    }

    #[test]
    fn unclosed_string_is_rejected() {
        let err = parse_query("Select * From A Where A.x = 'oops").unwrap_err();
        assert!(matches!(err, ParseError::Unexpected { .. }));
    }

    #[test]
    fn lex_rejects_strange_characters() {
        let err = parse_query("Select # From A").unwrap_err();
        assert!(matches!(err, ParseError::Lex { .. }));
    }

    #[test]
    fn four_way_join_builds_left_deep() {
        let e = parse_query(
            "Select Pd.name From Pd, Div, Ord, Cust \
             Where Pd.Did = Div.Did and Pd.Pid = Ord.Pid and Ord.Cid = Cust.Cid",
        )
        .unwrap();
        // Joins: ((Pd ⋈ Div) ⋈ Ord) ⋈ Cust, each with its condition.
        let mut joins = 0;
        crate::visit::postorder(&e, &mut |n| {
            if let Expr::Join { on, .. } = &**n {
                assert!(!on.is_cross());
                joins += 1;
            }
        });
        assert_eq!(joins, 3);
    }
}
#[cfg(test)]
mod aggregate_sql_tests {
    use super::*;
    use crate::aggregate::AggFunc;
    use mvdesign_catalog::AttrType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("T")
            .attr("g", AttrType::Text)
            .attr("v", AttrType::Int)
            .records(100.0)
            .blocks(10.0)
            .finish()
            .unwrap();
        c
    }

    #[test]
    fn count_star_parses_with_default_alias() {
        let q = parse_query_with("SELECT g, COUNT(*) FROM T GROUP BY T.g", &catalog()).unwrap();
        match &*q {
            Expr::Aggregate { aggs, .. } => {
                assert_eq!(aggs[0].func, AggFunc::Count);
                assert!(aggs[0].input.is_none());
                assert_eq!(aggs[0].alias.as_str(), "count_star");
            }
            other => panic!("expected aggregate, got {other}"),
        }
    }

    #[test]
    fn star_only_count_is_allowed_nothing_else() {
        let err = parse_query_with("SELECT g, SUM(*) FROM T GROUP BY T.g", &catalog()).unwrap_err();
        assert!(matches!(err, ParseError::Unsupported(_)), "{err}");
    }

    #[test]
    fn duplicate_auto_aliases_are_disambiguated() {
        let q = parse_query_with("SELECT SUM(v), SUM(v) FROM T", &catalog()).unwrap();
        match &*q {
            Expr::Aggregate { aggs, .. } => {
                assert_eq!(aggs.len(), 2);
                assert_ne!(aggs[0].alias, aggs[1].alias);
            }
            other => panic!("expected aggregate, got {other}"),
        }
    }

    #[test]
    fn select_star_with_group_by_is_rejected() {
        let err = parse_query_with("SELECT * FROM T GROUP BY T.g", &catalog()).unwrap_err();
        assert!(matches!(err, ParseError::Unsupported(_)));
    }

    #[test]
    fn an_identifier_named_count_without_parens_is_an_attribute() {
        let mut c = Catalog::new();
        c.relation("R")
            .attr("count", AttrType::Int)
            .records(10.0)
            .blocks(1.0)
            .finish()
            .unwrap();
        let q = parse_query_with("SELECT count FROM R", &c).unwrap();
        assert!(matches!(&*q, Expr::Project { .. }));
    }

    #[test]
    fn having_binds_aliases_before_columns() {
        let q = parse_query_with(
            "SELECT g, SUM(v) AS v FROM T GROUP BY T.g HAVING v > 3",
            &catalog(),
        )
        .unwrap();
        // The HAVING's `v` must resolve to the aggregate alias #agg.v, not
        // the base column T.v (which the aggregate output no longer carries).
        let s = q.to_string();
        assert!(s.contains("#agg.v>3"), "{s}");
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse_query_with(
            "select g, sum(v) as total from T group by T.g having total >= 0",
            &catalog(),
        )
        .unwrap();
        assert!(matches!(&*q, Expr::Select { .. }), "{q}");
    }
}
