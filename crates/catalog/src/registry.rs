//! The [`Catalog`] itself: a registry of relations plus cross-relation
//! statistics (join selectivities and joint-size overrides).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::builder::RelationBuilder;
use crate::error::CatalogError;
use crate::names::{AttrName, AttrRef, RelName};
use crate::schema::RelationSchema;
use crate::stats::RelationStats;

/// Everything the catalog knows about one base relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationMeta {
    /// The relation's schema.
    pub schema: RelationSchema,
    /// Physical statistics.
    pub stats: RelationStats,
    /// How often the relation is updated per unit period (`fu` in the paper).
    pub update_frequency: f64,
    /// Per-attribute selection selectivities (fraction of rows kept by a
    /// selection on that attribute).
    pub selectivities: BTreeMap<AttrName, f64>,
}

/// A canonical, order-insensitive key for a join between two attributes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JoinKey {
    lo: AttrRef,
    hi: AttrRef,
}

impl JoinKey {
    /// Creates a key; `JoinKey::new(a, b) == JoinKey::new(b, a)`.
    pub fn new(a: AttrRef, b: AttrRef) -> Self {
        if a <= b {
            Self { lo: a, hi: b }
        } else {
            Self { lo: b, hi: a }
        }
    }

    /// The lexicographically smaller endpoint.
    pub fn lo(&self) -> &AttrRef {
        &self.lo
    }

    /// The lexicographically larger endpoint.
    pub fn hi(&self) -> &AttrRef {
        &self.hi
    }
}

/// An explicitly-stated size for the join of a set of base relations.
///
/// The paper's Table 1 lists `Product ⋈ Division = 30k records / 5k blocks`
/// and similar joint sizes directly; the worked example uses those numbers
/// rather than deriving them from selectivities. Overrides let the estimator
/// reproduce that behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeOverride {
    /// Stated statistics for the joint result.
    pub stats: RelationStats,
}

/// The catalog: relations, their statistics, and cross-relation metadata.
///
/// See the [crate-level docs](crate) for an example.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    relations: BTreeMap<RelName, RelationMeta>,
    join_selectivities: BTreeMap<JoinKey, f64>,
    size_overrides: BTreeMap<BTreeSet<RelName>, SizeOverride>,
    indexes: BTreeMap<RelName, BTreeSet<AttrName>>,
    default_selectivity: f64,
}

/// Default selection selectivity when an attribute has none registered.
///
/// `1/10` is the classic System-R guess for an equality predicate with no
/// statistics.
pub const DEFAULT_SELECTIVITY: f64 = 0.1;

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self {
            relations: BTreeMap::new(),
            join_selectivities: BTreeMap::new(),
            size_overrides: BTreeMap::new(),
            indexes: BTreeMap::new(),
            default_selectivity: DEFAULT_SELECTIVITY,
        }
    }

    /// Starts building a relation with the given name; call
    /// [`RelationBuilder::finish`] to register it.
    pub fn relation(&mut self, name: impl Into<RelName>) -> RelationBuilder<'_> {
        RelationBuilder::new(self, name.into())
    }

    /// Validates physical statistics before they reach the cost model.
    ///
    /// Rejects negative or non-finite counts, and the inconsistent case of a
    /// populated relation occupying no blocks (`records > 0, blocks <= 0`),
    /// which would otherwise divide by zero inside the paper cost model. The
    /// fully-empty `(0, 0)` relation stays legal.
    pub(crate) fn validate_stats(records: f64, blocks: f64) -> Result<(), CatalogError> {
        if !(records.is_finite() && records >= 0.0) {
            return Err(CatalogError::InvalidValue {
                what: "record count",
                value: records,
            });
        }
        if !(blocks.is_finite() && blocks >= 0.0) {
            return Err(CatalogError::InvalidValue {
                what: "block count",
                value: blocks,
            });
        }
        if records > 0.0 && blocks <= 0.0 {
            return Err(CatalogError::InvalidValue {
                what: "block count (zero blocks for a populated relation)",
                value: blocks,
            });
        }
        Ok(())
    }

    /// Registers a fully-formed relation.
    ///
    /// # Errors
    ///
    /// Returns an error if the name is already registered, the schema has
    /// duplicate attributes, a selectivity references an unknown attribute or
    /// lies outside `[0, 1]`, the update frequency is negative, or the
    /// statistics are negative, non-finite or inconsistent (`records > 0`
    /// with `blocks <= 0`).
    pub fn insert_relation(&mut self, meta: RelationMeta) -> Result<(), CatalogError> {
        let name = meta.schema.name().clone();
        if self.relations.contains_key(&name) {
            return Err(CatalogError::DuplicateRelation(name));
        }
        if let Some(dup) = meta.schema.first_duplicate() {
            return Err(CatalogError::DuplicateAttribute(name, dup.clone()));
        }
        Self::validate_stats(meta.stats.records, meta.stats.blocks)?;
        if !(meta.update_frequency.is_finite() && meta.update_frequency >= 0.0) {
            return Err(CatalogError::InvalidValue {
                what: "update frequency",
                value: meta.update_frequency,
            });
        }
        for (attr, s) in &meta.selectivities {
            if !meta.schema.contains(attr.as_str()) {
                return Err(CatalogError::UnknownAttribute(name, attr.clone()));
            }
            if !(s.is_finite() && (0.0..=1.0).contains(s)) {
                return Err(CatalogError::InvalidValue {
                    what: "selectivity",
                    value: *s,
                });
            }
        }
        self.relations.insert(name, meta);
        Ok(())
    }

    /// Looks up a relation's metadata.
    pub fn meta(&self, name: &str) -> Option<&RelationMeta> {
        self.relations.get(name)
    }

    /// Looks up a relation's schema.
    pub fn schema(&self, name: &str) -> Option<&RelationSchema> {
        self.meta(name).map(|m| &m.schema)
    }

    /// Looks up a relation's statistics.
    pub fn stats(&self, name: &str) -> Option<&RelationStats> {
        self.meta(name).map(|m| &m.stats)
    }

    /// A relation's update frequency, `0.0` if unknown.
    pub fn update_frequency(&self, name: &str) -> f64 {
        self.meta(name).map_or(0.0, |m| m.update_frequency)
    }

    /// Overwrites a relation's update frequency (for sensitivity sweeps).
    ///
    /// # Errors
    ///
    /// Returns an error if the relation is unknown or the frequency is
    /// negative/not finite.
    pub fn set_update_frequency(&mut self, name: &str, fu: f64) -> Result<(), CatalogError> {
        if !(fu.is_finite() && fu >= 0.0) {
            return Err(CatalogError::InvalidValue {
                what: "update frequency",
                value: fu,
            });
        }
        match self.relations.get_mut(name) {
            Some(meta) => {
                meta.update_frequency = fu;
                Ok(())
            }
            None => Err(CatalogError::UnknownRelation(RelName::new(name))),
        }
    }

    /// Iterates over all registered relations in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &RelationMeta)> {
        self.relations.iter()
    }

    /// Names of all registered relations, in order.
    pub fn relation_names(&self) -> impl Iterator<Item = &RelName> {
        self.relations.keys()
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the catalog has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The fallback selectivity used when an attribute has none registered.
    pub fn default_selectivity(&self) -> f64 {
        self.default_selectivity
    }

    /// Overrides the fallback selectivity.
    ///
    /// # Errors
    ///
    /// Returns an error if `s` is outside `[0, 1]`.
    pub fn set_default_selectivity(&mut self, s: f64) -> Result<(), CatalogError> {
        if !(s.is_finite() && (0.0..=1.0).contains(&s)) {
            return Err(CatalogError::InvalidValue {
                what: "default selectivity",
                value: s,
            });
        }
        self.default_selectivity = s;
        Ok(())
    }

    /// Selection selectivity for `relation.attr`, falling back to the
    /// catalog default when not registered.
    pub fn selectivity(&self, relation: &str, attr: &str) -> f64 {
        self.meta(relation)
            .and_then(|m| m.selectivities.get(attr).copied())
            .unwrap_or(self.default_selectivity)
    }

    /// Registers the join selectivity between two attributes.
    ///
    /// The key is symmetric: registering `(a, b)` also answers `(b, a)`.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is unknown or `js` is outside
    /// `[0, 1]`.
    pub fn set_join_selectivity(
        &mut self,
        a: AttrRef,
        b: AttrRef,
        js: f64,
    ) -> Result<(), CatalogError> {
        for end in [&a, &b] {
            let meta = self
                .meta(end.relation.as_str())
                .ok_or_else(|| CatalogError::UnknownRelation(end.relation.clone()))?;
            if !meta.schema.contains(end.attr.as_str()) {
                return Err(CatalogError::UnknownAttribute(
                    end.relation.clone(),
                    end.attr.clone(),
                ));
            }
        }
        if !(js.is_finite() && (0.0..=1.0).contains(&js)) {
            return Err(CatalogError::InvalidValue {
                what: "join selectivity",
                value: js,
            });
        }
        self.join_selectivities.insert(JoinKey::new(a, b), js);
        Ok(())
    }

    /// Join selectivity between two attributes, if registered.
    pub fn join_selectivity(&self, a: &AttrRef, b: &AttrRef) -> Option<f64> {
        self.join_selectivities
            .get(&JoinKey::new(a.clone(), b.clone()))
            .copied()
    }

    /// Iterates over every registered join selectivity.
    pub fn join_selectivities(&self) -> impl Iterator<Item = (&JoinKey, f64)> {
        self.join_selectivities.iter().map(|(k, v)| (k, *v))
    }

    /// Join selectivity with the System-R fallback `1 / max(|R|, |S|)`.
    pub fn join_selectivity_or_default(&self, a: &AttrRef, b: &AttrRef) -> f64 {
        self.join_selectivity(a, b).unwrap_or_else(|| {
            let ra = self.stats(a.relation.as_str()).map_or(1.0, |s| s.records);
            let rb = self.stats(b.relation.as_str()).map_or(1.0, |s| s.records);
            1.0 / ra.max(rb).max(1.0)
        })
    }

    /// States the joint size of the natural join of a set of base relations
    /// (Table 1's `Product ⋈ Division = 30k records / 5k blocks` rows).
    ///
    /// # Errors
    ///
    /// Returns an error if any named relation is unknown.
    pub fn set_size_override(
        &mut self,
        relations: impl IntoIterator<Item = RelName>,
        stats: RelationStats,
    ) -> Result<(), CatalogError> {
        let set: BTreeSet<RelName> = relations.into_iter().collect();
        for r in &set {
            if !self.relations.contains_key(r) {
                return Err(CatalogError::UnknownRelation(r.clone()));
            }
        }
        self.size_overrides.insert(set, SizeOverride { stats });
        Ok(())
    }

    /// Looks up a stated joint size for exactly this set of base relations.
    pub fn size_override(&self, relations: &BTreeSet<RelName>) -> Option<&SizeOverride> {
        self.size_overrides.get(relations)
    }

    /// Iterates over all stated joint sizes.
    pub fn size_overrides(&self) -> impl Iterator<Item = (&BTreeSet<RelName>, &SizeOverride)> {
        self.size_overrides.iter()
    }

    /// Declares an index on `relation.attr` — the paper's §3.2 observation
    /// that "we can establish a proper index" applies to base relations as
    /// well: indexed selections probe instead of scanning.
    ///
    /// # Errors
    ///
    /// Returns an error if the relation or attribute is unknown.
    pub fn add_index(
        &mut self,
        relation: impl Into<RelName>,
        attr: impl Into<AttrName>,
    ) -> Result<(), CatalogError> {
        let relation = relation.into();
        let attr = attr.into();
        let meta = self
            .meta(relation.as_str())
            .ok_or_else(|| CatalogError::UnknownRelation(relation.clone()))?;
        if !meta.schema.contains(attr.as_str()) {
            return Err(CatalogError::UnknownAttribute(relation, attr));
        }
        self.indexes.entry(relation).or_default().insert(attr);
        Ok(())
    }

    /// Whether `relation.attr` has a declared index.
    pub fn has_index(&self, relation: &str, attr: &str) -> bool {
        self.indexes
            .get(relation)
            .is_some_and(|set| set.contains(attr))
    }

    /// Iterates over all declared indexes.
    pub fn indexes(&self) -> impl Iterator<Item = (&RelName, &BTreeSet<AttrName>)> {
        self.indexes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Attribute};

    fn sample() -> Catalog {
        let mut c = Catalog::new();
        c.relation("Product")
            .attr("Pid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("Did", AttrType::Int)
            .records(30_000.0)
            .blocks(3_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.relation("Division")
            .attr("Did", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("city", AttrType::Text)
            .records(5_000.0)
            .blocks(500.0)
            .update_frequency(1.0)
            .selectivity("city", 0.02)
            .finish()
            .unwrap();
        c
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut c = sample();
        let err = c
            .relation("Product")
            .attr("x", AttrType::Int)
            .finish()
            .unwrap_err();
        assert_eq!(
            err,
            CatalogError::DuplicateRelation(RelName::new("Product"))
        );
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut c = Catalog::new();
        let meta = RelationMeta {
            schema: RelationSchema::new(
                "R",
                vec![
                    Attribute::new("a", AttrType::Int),
                    Attribute::new("a", AttrType::Int),
                ],
            ),
            stats: RelationStats::empty(),
            update_frequency: 0.0,
            selectivities: BTreeMap::new(),
        };
        assert!(matches!(
            c.insert_relation(meta),
            Err(CatalogError::DuplicateAttribute(..))
        ));
    }

    #[test]
    fn selectivity_falls_back_to_default() {
        let c = sample();
        assert_eq!(c.selectivity("Division", "city"), 0.02);
        assert_eq!(c.selectivity("Division", "name"), DEFAULT_SELECTIVITY);
        assert_eq!(c.selectivity("Nope", "x"), DEFAULT_SELECTIVITY);
    }

    #[test]
    fn join_selectivity_is_symmetric() {
        let mut c = sample();
        let a = AttrRef::new("Product", "Did");
        let b = AttrRef::new("Division", "Did");
        c.set_join_selectivity(a.clone(), b.clone(), 1.0 / 5_000.0)
            .unwrap();
        assert_eq!(c.join_selectivity(&b, &a), Some(1.0 / 5_000.0));
    }

    #[test]
    fn join_selectivity_default_uses_larger_cardinality() {
        let c = sample();
        let a = AttrRef::new("Product", "Did");
        let b = AttrRef::new("Division", "Did");
        assert_eq!(c.join_selectivity_or_default(&a, &b), 1.0 / 30_000.0);
    }

    #[test]
    fn join_selectivity_rejects_unknown_attribute() {
        let mut c = sample();
        let err = c
            .set_join_selectivity(
                AttrRef::new("Product", "nope"),
                AttrRef::new("Division", "Did"),
                0.5,
            )
            .unwrap_err();
        assert!(matches!(err, CatalogError::UnknownAttribute(..)));
    }

    #[test]
    fn size_override_round_trips() {
        let mut c = sample();
        c.set_size_override(
            [RelName::new("Product"), RelName::new("Division")],
            RelationStats::new(30_000.0, 5_000.0),
        )
        .unwrap();
        let key: BTreeSet<_> = [RelName::new("Division"), RelName::new("Product")]
            .into_iter()
            .collect();
        assert_eq!(c.size_override(&key).unwrap().stats.blocks, 5_000.0);
    }

    #[test]
    fn size_override_unknown_relation_rejected() {
        let mut c = sample();
        let err = c
            .set_size_override([RelName::new("Ghost")], RelationStats::empty())
            .unwrap_err();
        assert_eq!(err, CatalogError::UnknownRelation(RelName::new("Ghost")));
    }
}
