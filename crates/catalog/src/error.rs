//! Error type for catalog operations.

use std::error::Error;
use std::fmt;

use crate::names::{AttrName, RelName};

/// Errors reported by [`crate::Catalog`] operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CatalogError {
    /// A relation with this name is already registered.
    DuplicateRelation(RelName),
    /// The relation is not registered.
    UnknownRelation(RelName),
    /// The attribute does not exist on the named relation.
    UnknownAttribute(RelName, AttrName),
    /// A schema declares the same attribute name twice.
    DuplicateAttribute(RelName, AttrName),
    /// A selectivity or frequency was out of its valid range.
    InvalidValue {
        /// What was being set (e.g. `"selectivity"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateRelation(r) => {
                write!(f, "relation `{r}` is already registered")
            }
            CatalogError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            CatalogError::UnknownAttribute(r, a) => {
                write!(f, "relation `{r}` has no attribute `{a}`")
            }
            CatalogError::DuplicateAttribute(r, a) => {
                write!(f, "relation `{r}` declares attribute `{a}` more than once")
            }
            CatalogError::InvalidValue { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
        }
    }
}

impl Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = CatalogError::UnknownAttribute(RelName::new("Order"), AttrName::new("qty"));
        assert_eq!(e.to_string(), "relation `Order` has no attribute `qty`");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + Error>() {}
        assert_bounds::<CatalogError>();
    }
}
