//! Relation catalog: schemas, statistics, selectivities and frequencies.
//!
//! This crate is the metadata substrate of the `mvdesign` workspace. It
//! models what the paper's Table 1 provides as input to materialized view
//! design:
//!
//! * relation schemas (attribute names and types),
//! * physical statistics (record counts, block counts, blocking factors),
//! * selection selectivities per attribute (e.g. `σ city="LA" (Division)`
//!   keeps 2% of the rows),
//! * join selectivities per attribute pair (e.g. `js(Product.Did, Division.Did)
//!   = 1/5000`),
//! * *joint-size overrides* for specific relation sets — the paper's Table 1
//!   states the sizes of `Product ⋈ Division`, `Order ⋈ Customer`, … directly,
//!   and the worked example uses those numbers rather than deriving them, so
//!   the catalog can carry them verbatim,
//! * update frequencies of base relations (query frequencies live with the
//!   workload, next to the queries themselves).
//!
//! # Example
//!
//! ```
//! use mvdesign_catalog::{Catalog, AttrType};
//!
//! let mut catalog = Catalog::new();
//! catalog
//!     .relation("Division")
//!     .attr("Did", AttrType::Int)
//!     .attr("name", AttrType::Text)
//!     .attr("city", AttrType::Text)
//!     .records(5_000.0)
//!     .blocks(500.0)
//!     .update_frequency(1.0)
//!     .selectivity("city", 0.02)
//!     .finish()
//!     .unwrap();
//! let div = catalog.stats("Division").unwrap();
//! assert_eq!(div.records, 5_000.0);
//! assert_eq!(div.blocking_factor(), 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod names;
mod registry;
mod schema;
mod stats;

pub use crate::builder::RelationBuilder;
pub use crate::error::CatalogError;
pub use crate::names::{AttrName, AttrRef, RelName};
pub use crate::registry::{Catalog, JoinKey, RelationMeta, SizeOverride};
pub use crate::schema::{AttrType, Attribute, RelationSchema};
pub use crate::stats::RelationStats;
