//! Physical statistics for relations and derived results.

use serde::{Deserialize, Serialize};

/// Physical statistics of a (base or derived) relation.
///
/// All sizes are `f64`: cardinality *estimates* are generally fractional once
/// selectivities are applied, and the paper itself reports fractional block
/// counts (e.g. `0.25k`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelationStats {
    /// Number of records (tuples).
    pub records: f64,
    /// Number of disk blocks occupied.
    pub blocks: f64,
}

impl RelationStats {
    /// Creates statistics from record and block counts.
    ///
    /// # Panics
    ///
    /// Panics if either count is negative or not finite — statistics are
    /// produced from catalog input or estimator arithmetic that must keep
    /// them non-negative.
    pub fn new(records: f64, blocks: f64) -> Self {
        assert!(
            records.is_finite() && records >= 0.0,
            "record count must be finite and non-negative, got {records}"
        );
        assert!(
            blocks.is_finite() && blocks >= 0.0,
            "block count must be finite and non-negative, got {blocks}"
        );
        Self { records, blocks }
    }

    /// Statistics of an empty relation.
    pub fn empty() -> Self {
        Self {
            records: 0.0,
            blocks: 0.0,
        }
    }

    /// Records per block.
    ///
    /// Returns `1.0` for degenerate inputs (zero blocks) so downstream
    /// arithmetic never divides by zero; an empty relation packs "one record
    /// per block" vacuously.
    pub fn blocking_factor(&self) -> f64 {
        if self.blocks <= 0.0 || self.records <= 0.0 {
            1.0
        } else {
            self.records / self.blocks
        }
    }

    /// Scales both records and blocks by a selectivity in `[0, 1]`.
    ///
    /// The blocking factor is preserved: selecting 2% of the rows is assumed
    /// to keep 2% of the blocks once the result is written out.
    #[must_use]
    pub fn scaled(&self, selectivity: f64) -> Self {
        let s = selectivity.clamp(0.0, 1.0);
        Self {
            records: self.records * s,
            blocks: self.blocks * s,
        }
    }

    /// Statistics with the same number of records repacked at `factor`
    /// records per block. Used when an operator changes tuple width.
    #[must_use]
    pub fn repacked(&self, factor: f64) -> Self {
        let f = if factor <= 0.0 { 1.0 } else { factor };
        Self {
            records: self.records,
            blocks: self.records / f,
        }
    }
}

impl Default for RelationStats {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_factor_of_table1_division() {
        let s = RelationStats::new(5_000.0, 500.0);
        assert_eq!(s.blocking_factor(), 10.0);
    }

    #[test]
    fn scaled_preserves_blocking_factor() {
        let s = RelationStats::new(5_000.0, 500.0).scaled(0.02);
        assert_eq!(s.records, 100.0);
        assert_eq!(s.blocks, 10.0);
        assert_eq!(s.blocking_factor(), 10.0);
    }

    #[test]
    fn scaled_clamps_out_of_range_selectivity() {
        let s = RelationStats::new(100.0, 10.0);
        assert_eq!(s.scaled(2.0).records, 100.0);
        assert_eq!(s.scaled(-1.0).records, 0.0);
    }

    #[test]
    fn degenerate_blocking_factor_is_one() {
        assert_eq!(RelationStats::empty().blocking_factor(), 1.0);
    }

    #[test]
    fn repacked_changes_blocks_not_records() {
        let s = RelationStats::new(30_000.0, 3_000.0).repacked(6.0);
        assert_eq!(s.records, 30_000.0);
        assert_eq!(s.blocks, 5_000.0);
    }

    #[test]
    #[should_panic(expected = "record count")]
    fn negative_records_panic() {
        let _ = RelationStats::new(-1.0, 0.0);
    }
}
