//! Relation schemas: attribute lists and types.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::names::{AttrName, RelName};

/// The type of an attribute.
///
/// The paper works with the plain relational model; we distinguish only the
/// types that matter for generating and executing the example workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AttrType {
    /// 64-bit signed integer (ids, quantities).
    Int,
    /// Free text (names, cities, suppliers).
    Text,
    /// A calendar date, stored as days since an epoch.
    Date,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Int => "int",
            AttrType::Text => "text",
            AttrType::Date => "date",
        };
        f.write_str(s)
    }
}

/// A single attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, unique within its relation.
    pub name: AttrName,
    /// Attribute type.
    pub ty: AttrType,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<AttrName>, ty: AttrType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.ty)
    }
}

/// The schema of a relation: a named, ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationSchema {
    name: RelName,
    attributes: Vec<Attribute>,
}

impl RelationSchema {
    /// Creates a schema with the given attributes.
    ///
    /// Duplicate attribute names are allowed at this level (validated by
    /// [`crate::Catalog`] on insertion) so partially-built schemas can be
    /// inspected.
    pub fn new(name: impl Into<RelName>, attributes: Vec<Attribute>) -> Self {
        Self {
            name: name.into(),
            attributes,
        }
    }

    /// The relation name.
    pub fn name(&self) -> &RelName {
        &self.name
    }

    /// The attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Looks up an attribute by name.
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == *name)
    }

    /// The positional index of an attribute, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == *name)
    }

    /// Whether the schema contains an attribute with this name.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Returns the first duplicated attribute name, if any.
    pub fn first_duplicate(&self) -> Option<&AttrName> {
        for (i, a) in self.attributes.iter().enumerate() {
            if self.attributes[..i].iter().any(|b| b.name == a.name) {
                return Some(&a.name);
            }
        }
        None
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn product() -> RelationSchema {
        RelationSchema::new(
            "Product",
            vec![
                Attribute::new("Pid", AttrType::Int),
                Attribute::new("name", AttrType::Text),
                Attribute::new("Did", AttrType::Int),
            ],
        )
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = product();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.attribute("Did").unwrap().ty, AttrType::Int);
        assert!(s.attribute("missing").is_none());
        assert!(s.contains("Pid"));
    }

    #[test]
    fn duplicate_detection() {
        let ok = product();
        assert!(ok.first_duplicate().is_none());
        let dup = RelationSchema::new(
            "R",
            vec![
                Attribute::new("a", AttrType::Int),
                Attribute::new("a", AttrType::Text),
            ],
        );
        assert_eq!(dup.first_duplicate().unwrap().as_str(), "a");
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            product().to_string(),
            "Product(Pid: int, name: text, Did: int)"
        );
    }
}
