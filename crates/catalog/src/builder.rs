//! Fluent builder for registering relations (C-BUILDER).

use std::collections::BTreeMap;

use crate::error::CatalogError;
use crate::names::{AttrName, RelName};
use crate::registry::{Catalog, RelationMeta};
use crate::schema::{AttrType, Attribute, RelationSchema};
use crate::stats::RelationStats;

/// Incrementally configures a relation and registers it in a [`Catalog`].
///
/// Created by [`Catalog::relation`]; consumed by [`RelationBuilder::finish`].
///
/// ```
/// use mvdesign_catalog::{Catalog, AttrType};
///
/// let mut catalog = Catalog::new();
/// catalog
///     .relation("Order")
///     .attr("Pid", AttrType::Int)
///     .attr("Cid", AttrType::Int)
///     .attr("quantity", AttrType::Int)
///     .attr("date", AttrType::Date)
///     .records(50_000.0)
///     .blocks(6_000.0)
///     .update_frequency(1.0)
///     .selectivity("quantity", 0.5)
///     .selectivity("date", 0.5)
///     .finish()?;
/// # Ok::<(), mvdesign_catalog::CatalogError>(())
/// ```
#[derive(Debug)]
#[must_use = "call `.finish()` to register the relation"]
pub struct RelationBuilder<'c> {
    catalog: &'c mut Catalog,
    name: RelName,
    attributes: Vec<Attribute>,
    records: f64,
    blocks: f64,
    update_frequency: f64,
    selectivities: BTreeMap<AttrName, f64>,
}

impl<'c> RelationBuilder<'c> {
    pub(crate) fn new(catalog: &'c mut Catalog, name: RelName) -> Self {
        Self {
            catalog,
            name,
            attributes: Vec::new(),
            records: 0.0,
            blocks: 0.0,
            update_frequency: 0.0,
            selectivities: BTreeMap::new(),
        }
    }

    /// Appends an attribute.
    pub fn attr(mut self, name: impl Into<AttrName>, ty: AttrType) -> Self {
        self.attributes.push(Attribute::new(name, ty));
        self
    }

    /// Sets the record count.
    pub fn records(mut self, records: f64) -> Self {
        self.records = records;
        self
    }

    /// Sets the block count.
    pub fn blocks(mut self, blocks: f64) -> Self {
        self.blocks = blocks;
        self
    }

    /// Sets the update frequency `fu` (updates per unit period).
    pub fn update_frequency(mut self, fu: f64) -> Self {
        self.update_frequency = fu;
        self
    }

    /// Sets the selection selectivity of an attribute.
    pub fn selectivity(mut self, attr: impl Into<AttrName>, s: f64) -> Self {
        self.selectivities.insert(attr.into(), s);
        self
    }

    /// Registers the relation in the catalog.
    ///
    /// # Errors
    ///
    /// Propagates every validation error of [`Catalog::insert_relation`]:
    /// duplicate relation or attribute names, unknown selectivity targets,
    /// out-of-range selectivities or frequencies, and negative, non-finite or
    /// inconsistent (`records > 0` with `blocks <= 0`) physical statistics.
    pub fn finish(self) -> Result<(), CatalogError> {
        Catalog::validate_stats(self.records, self.blocks)?;
        let meta = RelationMeta {
            schema: RelationSchema::new(self.name, self.attributes),
            stats: RelationStats::new(self.records, self.blocks),
            update_frequency: self.update_frequency,
            selectivities: self.selectivities,
        };
        self.catalog.insert_relation(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_registers_relation() {
        let mut c = Catalog::new();
        c.relation("Part")
            .attr("Tid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("Pid", AttrType::Int)
            .attr("supplier", AttrType::Text)
            .records(80_000.0)
            .blocks(10_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        let m = c.meta("Part").unwrap();
        assert_eq!(m.schema.arity(), 4);
        assert_eq!(m.stats.records, 80_000.0);
        assert_eq!(m.update_frequency, 1.0);
    }

    #[test]
    fn builder_rejects_selectivity_on_unknown_attribute() {
        let mut c = Catalog::new();
        let err = c
            .relation("R")
            .attr("a", AttrType::Int)
            .selectivity("ghost", 0.5)
            .finish()
            .unwrap_err();
        assert!(matches!(err, CatalogError::UnknownAttribute(..)));
    }

    #[test]
    fn builder_rejects_out_of_range_selectivity() {
        let mut c = Catalog::new();
        let err = c
            .relation("R")
            .attr("a", AttrType::Int)
            .selectivity("a", 1.5)
            .finish()
            .unwrap_err();
        assert!(matches!(err, CatalogError::InvalidValue { .. }));
    }

    #[test]
    fn builder_rejects_negative_and_non_finite_records() {
        for records in [-1.0, f64::NAN, f64::INFINITY] {
            let mut c = Catalog::new();
            let err = c
                .relation("R")
                .attr("a", AttrType::Int)
                .records(records)
                .blocks(10.0)
                .finish()
                .unwrap_err();
            assert!(matches!(
                err,
                CatalogError::InvalidValue {
                    what: "record count",
                    ..
                }
            ));
        }
    }

    #[test]
    fn builder_rejects_zero_blocks_for_populated_relation() {
        let mut c = Catalog::new();
        let err = c
            .relation("R")
            .attr("a", AttrType::Int)
            .records(100.0)
            .blocks(0.0)
            .finish()
            .unwrap_err();
        assert!(matches!(
            err,
            CatalogError::InvalidValue {
                what: "block count (zero blocks for a populated relation)",
                ..
            }
        ));
    }

    #[test]
    fn builder_accepts_fully_empty_relation() {
        let mut c = Catalog::new();
        c.relation("Empty")
            .attr("a", AttrType::Int)
            .records(0.0)
            .blocks(0.0)
            .finish()
            .expect("(0 records, 0 blocks) stays legal");
        assert_eq!(c.meta("Empty").unwrap().stats.records, 0.0);
    }

    #[test]
    fn builder_rejects_negative_update_frequency() {
        let mut c = Catalog::new();
        let err = c
            .relation("R")
            .attr("a", AttrType::Int)
            .update_frequency(-2.0)
            .finish()
            .unwrap_err();
        assert!(matches!(
            err,
            CatalogError::InvalidValue {
                what: "update frequency",
                ..
            }
        ));
    }
}
