//! Newtype names for relations and attributes.
//!
//! Using newtypes instead of bare `String`s keeps relation and attribute
//! identifiers from being confused with each other or with arbitrary text
//! (C-NEWTYPE), while still being cheap to clone and usable as map keys.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

macro_rules! name_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(Arc<str>);

        impl $name {
            /// Creates a new name from anything string-like.
            pub fn new(name: impl AsRef<str>) -> Self {
                Self(Arc::from(name.as_ref()))
            }

            /// Returns the name as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self::new(s)
            }
        }

        impl From<&$name> for $name {
            fn from(s: &$name) -> Self {
                s.clone()
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }

        impl PartialEq<str> for $name {
            fn eq(&self, other: &str) -> bool {
                self.as_str() == other
            }
        }

        impl PartialEq<&str> for $name {
            fn eq(&self, other: &&str) -> bool {
                self.as_str() == *other
            }
        }
    };
}

name_type! {
    /// The name of a base relation, e.g. `Product`.
    RelName
}

name_type! {
    /// The name of an attribute within some relation, e.g. `city`.
    AttrName
}

/// A fully-qualified attribute reference, e.g. `Division.city`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrRef {
    /// Relation the attribute belongs to.
    pub relation: RelName,
    /// The attribute name within [`AttrRef::relation`].
    pub attr: AttrName,
}

impl AttrRef {
    /// Creates a qualified attribute reference.
    pub fn new(relation: impl Into<RelName>, attr: impl Into<AttrName>) -> Self {
        Self {
            relation: relation.into(),
            attr: attr.into(),
        }
    }

    /// Parses a `Relation.attr` string.
    ///
    /// Returns `None` when there is no dot or either side is empty.
    pub fn parse(qualified: &str) -> Option<Self> {
        let (rel, attr) = qualified.split_once('.')?;
        if rel.is_empty() || attr.is_empty() {
            return None;
        }
        Some(Self::new(rel, attr))
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.relation, self.attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn rel_name_round_trips() {
        let n = RelName::new("Product");
        assert_eq!(n.as_str(), "Product");
        assert_eq!(n.to_string(), "Product");
        assert_eq!(n, "Product");
    }

    #[test]
    fn names_are_ordered_and_hashable() {
        let mut set = BTreeSet::new();
        set.insert(RelName::new("b"));
        set.insert(RelName::new("a"));
        set.insert(RelName::new("a"));
        let sorted: Vec<_> = set.iter().map(RelName::as_str).collect();
        assert_eq!(sorted, ["a", "b"]);
    }

    #[test]
    fn attr_ref_parse_accepts_qualified() {
        let r = AttrRef::parse("Division.city").unwrap();
        assert_eq!(r.relation, "Division");
        assert_eq!(r.attr, "city");
        assert_eq!(r.to_string(), "Division.city");
    }

    #[test]
    fn attr_ref_parse_rejects_malformed() {
        assert!(AttrRef::parse("nodot").is_none());
        assert!(AttrRef::parse(".attr").is_none());
        assert!(AttrRef::parse("rel.").is_none());
    }

    #[test]
    fn borrow_str_allows_map_lookup_by_str() {
        let mut set = BTreeSet::new();
        set.insert(RelName::new("Order"));
        assert!(set.contains("Order"));
        assert!(!set.contains("Customer"));
    }
}
