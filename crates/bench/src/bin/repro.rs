//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p mvdesign-bench --bin repro            # everything
//! cargo run -p mvdesign-bench --bin repro table2     # one artifact
//! ```
//!
//! Artifacts: `table1`, `table2`, `fig2`, `fig3`, `fig5`, `fig6`, `fig7`,
//! `fig8`, `fig9` (the paper), and the extensions `distributed`, `ablation`,
//! `sweep` (update-frequency crossover), `algorithms` (selection quality),
//! `mqp` (§3.2 comparison), `scale` (workload growth), `simulate`
//! (engine-measured I/O), `tpch` (TPC-H-lite design), `breakeven`
//! (closed-form U*), `perf` (memoized search engine vs naive re-evaluation;
//! writes `BENCH_selection.json`), `perf-engine` (columnar batch engine vs
//! the tuple-at-a-time reference on star-schema scan/join/aggregate
//! microbenchmarks; writes `BENCH_engine.json`), `perf-maintain`
//! (delta-fold refresh vs full recompute across append fractions, plus the
//! joint policy-selection flip; writes `BENCH_maintain.json`), `perf-serve`
//! (the async serving layer under thousands of simulated clients over a
//! mixed query/maintenance load, QPS and p50/p95/p99 latency; writes
//! `BENCH_serve.json`), `audit` (the correctness battery: structural
//! invariants, differential cost oracles, executable semantics over the
//! paper/star/TPC-H/degenerate scenarios).
//!
//! `perf`, `perf-engine`, `perf-maintain` and `perf-serve` take an optional
//! label (`repro perf <label>`, default `working-tree`); re-running a label
//! replaces that entry in the artifact instead of appending a duplicate.
//! `perf-engine` additionally accepts `--threads N` to add an explicit
//! thread count to its morsel scaling section (default: 1, 2 and all host
//! cores). `perf-serve` accepts `--clients N`, `--duration-ms D`,
//! `--append-fraction F` and `--no-write` (run without touching the
//! artifact, for CI smokes).

use std::collections::BTreeSet;

use mvdesign::algebra::{dot_graph, Expr};
use mvdesign::core::{
    evaluate, generate_mvpps, mqp_batch_cost, AnnotatedMvpp, ExhaustiveSelection, GenerateConfig,
    GeneticSelection, GreedySelection, MaintenanceMode, MaintenancePolicy, MaterializeAll,
    MaterializeNone, RandomSearch, SelectionAlgorithm, SimulatedAnnealing, TraceVerdict,
    UpdateWeighting,
};
use mvdesign::cost::{
    CostEstimator, EstimationMode, NestedLoopCostModel, PaperCostModel, SortMergeCostModel,
};
use mvdesign::distributed::{
    DistributedEvaluator, FilterShipping, MarginalGreedy, Placement, Topology,
};
use mvdesign::optimizer::{pull_up, Planner};
use mvdesign::workload::{paper_example, paper_figure7_example, StarSchema, StarSchemaConfig};
use mvdesign_bench::{join_node, paper_annotated, table2_rows};

fn main() {
    let filter: Option<String> = std::env::args().nth(1);
    let want = |name: &str| filter.as_deref().is_none_or(|f| f == name);

    if want("table1") {
        table1();
    }
    if want("table2") {
        table2();
    }
    if want("fig2") {
        fig2();
    }
    if want("fig3") {
        fig3();
    }
    if want("fig5") {
        fig5();
    }
    if want("fig6") {
        fig6();
    }
    if want("fig7") || want("fig8") {
        fig7_fig8(filter.as_deref());
    }
    if want("fig9") {
        fig9();
    }
    if want("distributed") {
        distributed();
    }
    if want("ablation") {
        ablation();
    }
    if want("sweep") {
        sweep();
    }
    if want("algorithms") {
        algorithms();
    }
    if want("mqp") {
        mqp();
    }
    if want("scale") {
        scale();
    }
    if want("simulate") {
        simulate();
    }
    if want("tpch") {
        tpch();
    }
    if want("breakeven") {
        breakeven();
    }
    if want("perf") {
        perf();
    }
    if want("perf-engine") {
        perf_engine();
    }
    if want("perf-maintain") {
        perf_maintain();
    }
    if want("perf-serve") {
        perf_serve();
    }
    if want("audit") {
        audit();
    }
}

fn section(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn table1() {
    section("Table 1: sizes of relations and statistical data");
    let scenario = paper_example();
    println!("{:<34} {:>10} {:>10}", "relation", "records", "blocks");
    for (name, meta) in scenario.catalog.iter() {
        println!(
            "{:<34} {:>10.0} {:>10.0}",
            name.as_str(),
            meta.stats.records,
            meta.stats.blocks
        );
    }
    for (rels, o) in scenario.catalog.size_overrides() {
        let joined: Vec<&str> = rels.iter().map(|r| r.as_str()).collect();
        println!(
            "{:<34} {:>10.0} {:>10.0}",
            joined.join("⋈"),
            o.stats.records,
            o.stats.blocks
        );
    }
    println!("\nselectivities: s(Division.city)=0.02, s(Order.quantity)=0.5, s(Order.date)=0.5");
    println!("join selectivities: js(P.Did,D.Did)=1/5k, js(Pt.Pid,P.Pid)=1/30k,");
    println!("                    js(O.Cid,C.Cid)=1/40k, js(O.Pid,P.Pid)=1/30k");
}

fn table2() {
    section("Table 2: costs for different view materialization strategies");
    let a = paper_annotated();
    println!(
        "{:<36} | {:>12} {:>12} {:>12} | {:>12} {:>12} {:>12}",
        "", "paper qp", "paper maint", "paper total", "ours qp", "ours maint", "ours total"
    );
    for row in table2_rows(&a) {
        let (pq, pm, pt) = row.paper.unwrap_or((f64::NAN, f64::NAN, f64::NAN));
        println!(
            "{:<36} | {:>12.3e} {:>12.3e} {:>12.3e} | {:>12.3e} {:>12.3e} {:>12.3e}",
            row.label,
            pq,
            pm,
            pt,
            row.measured.query_processing,
            row.measured.maintenance,
            row.measured.total
        );
    }
    println!(
        "\nshape checks: the paper's pick {{tmp2, tmp4}} is the cheapest strategy in both \
         columns; all-virtual is the most expensive useful baseline; adding tmp6 to the \
         pick only adds maintenance."
    );
}

fn fig2() {
    section("Figure 2: individual plans for Q1/Q2 and their merge on tmp1/tmp2");
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let planner = Planner::new();
    let q1 = planner.optimize(scenario.workload.query("Q1").expect("Q1").root(), &est);
    let q2 = planner.optimize(scenario.workload.query("Q2").expect("Q2").root(), &est);
    println!("-- (a) separate plans:");
    println!("Q1: {q1}");
    println!("Q2: {q2}");
    println!("\n-- (b) merged (shared subtrees drawn once; DOT):");
    println!(
        "{}",
        dot_graph("fig2b", &[("Q1".into(), q1), ("Q2".into(), q2)])
    );
}

fn fig3() {
    section("Figure 3: the MVPP with per-node costs (Ca) and frequencies");
    let a = paper_annotated();
    println!("{:<8} {:>14} {:>14}  operation", "node", "Ca", "weight");
    for n in a.mvpp().nodes() {
        let ann = a.annotation(n.id());
        let op: String = n.expr().op_label().chars().take(48).collect();
        println!(
            "{:<8} {:>14.1} {:>14.1}  {}",
            n.label(),
            ann.ca,
            ann.weight,
            op
        );
    }
    println!("\nquery frequencies: Q1=10, Q2=0.5, Q3=0.8, Q4=5 (as drawn above the roots)");
    println!("\npaper cross-check (its internally consistent cells):");
    let pd = join_node(&a, &["Division", "Product"]).expect("P⋈D");
    let oc = join_node(&a, &["Customer", "Order"]).expect("O⋈C");
    println!(
        "  fq-weight of P⋈D (tmp2) = {} (paper: 10 + 0.5 + 0.8 = 11.3)",
        a.annotation(pd).fq_weight
    );
    println!(
        "  fq-weight of O⋈C (tmp4) = {} (paper: 5 + 0.8 = 5.8)",
        a.annotation(oc).fq_weight
    );
    println!("\nDOT:\n{}", a.to_dot("figure3"));
}

fn fig5() {
    section("Figure 5: individual optimal plans, selects/projects pushed up");
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let planner = Planner::new();
    for q in scenario.workload.queries() {
        let optimal = planner.optimize(q.root(), &est);
        let pulled = pull_up(&optimal);
        println!("\n{} (fq={}):", q.name(), q.frequency());
        println!("  optimal plan:   {optimal}");
        println!("  join pattern:   {}", pulled.join_tree);
        println!("  pulled σ:       {}", pulled.predicate);
        println!(
            "  fq·Ca(optimal): {:.1}",
            q.frequency() * est.tree_cost(&optimal)
        );
    }
}

fn fig6() {
    section("Figure 6: the k rotated MVPP candidates");
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let candidates = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig::default(),
    );
    for (i, mvpp) in candidates.iter().enumerate() {
        let a = AnnotatedMvpp::annotate(mvpp.clone(), &est, UpdateWeighting::Max);
        let (m, _) = GreedySelection::new().run(&a);
        let cost = evaluate(&a, &m, MaintenanceMode::SharedRecompute);
        let shared: Vec<String> = mvpp
            .interior()
            .into_iter()
            .filter(|v| mvpp.queries_using(*v).len() >= 2)
            .map(|v| {
                let rels: Vec<String> = mvpp
                    .node(v)
                    .expr()
                    .base_relations()
                    .iter()
                    .map(|r| r.as_str().chars().take(2).collect())
                    .collect();
                rels.join("+")
            })
            .collect();
        println!(
            "MVPP ({}): {} nodes, total after selection {:>12.0}, shared nodes: [{}]",
            (b'a' + i as u8) as char,
            mvpp.len(),
            cost.total,
            shared.join(", ")
        );
    }
    println!(
        "\nAs in the paper, some rotations coincide (its (a) ≡ (b)) and the rotation \
         that preserves Q3's long join pattern first is inferior (its (c))."
    );
}

fn fig7_fig8(filter: Option<&str>) {
    let scenario = paper_figure7_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    if filter.is_none_or(|f| f == "fig7") {
        section("Figure 7: merged MVPP before select/project push-down");
        // "Before optimization" = each query keeps its own σ above the shared
        // join; the leaves are raw base relations. We show this by merging
        // with push-down disabled conceptually: print the per-query roots.
        let mvpp = &generate_mvpps(
            &scenario.workload,
            &est,
            &Planner::new(),
            GenerateConfig { max_rotations: 1 },
        )[0];
        for (name, fq, root) in mvpp.roots() {
            println!("{name} (fq={fq}): {}", mvpp.node(*root).expr());
        }
    }
    if filter.is_none_or(|f| f == "fig8") {
        section("Figure 8: MVPP after push-down (disjunctive σ, union π at leaves)");
        let mvpp = &generate_mvpps(
            &scenario.workload,
            &est,
            &Planner::new(),
            GenerateConfig { max_rotations: 1 },
        )[0];
        for n in mvpp.nodes() {
            if let Expr::Select { input, predicate } = &**n.expr() {
                if input.is_base() {
                    println!("leaf filter on {}: {}", input, predicate);
                }
            }
            if let Expr::Project { input, attrs } = &**n.expr() {
                if matches!(&**input, Expr::Select { input: b, .. } if b.is_base())
                    || input.is_base()
                {
                    let names: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
                    println!("leaf projection over {}: [{}]", input, names.join(", "));
                }
            }
        }
        println!("\nDOT:\n{}", mvpp.to_dot("figure8"));
    }
}

fn fig9() {
    section("Figure 9 / §4.3: greedy view selection with full trace");
    let a = paper_annotated();
    let (m, trace) = GreedySelection::new().run(&a);
    let lv: Vec<String> = trace
        .initial_lv
        .iter()
        .map(|id| {
            let n = a.mvpp().node(*id);
            let rels: Vec<String> = n
                .expr()
                .base_relations()
                .iter()
                .map(|r| r.as_str().chars().take(2).collect())
                .collect();
            format!("{}[{}]", n.label(), rels.join("+"))
        })
        .collect();
    println!("LV = ⟨{}⟩", lv.join(", "));
    println!("(the paper's LV = ⟨tmp4, result4, tmp7, tmp2, result1, tmp1⟩ — same shape:");
    println!(" the O⋈C join leads, then its consumers, then the P⋈D chain)\n");
    for step in &trace.steps {
        match &step.verdict {
            TraceVerdict::Materialized => {
                println!("{:<7} Cs = {:>14.1}  → materialize", step.label, step.cs);
            }
            TraceVerdict::Rejected { pruned } => {
                println!(
                    "{:<7} Cs = {:>14.1}  → reject (+prune {} same-branch nodes)",
                    step.label,
                    step.cs,
                    pruned.len()
                );
            }
            TraceVerdict::SkippedParentsMaterialized => {
                println!(
                    "{:<7} parents ∈ M → ignore (the paper's tmp1 case)",
                    step.label
                );
            }
            TraceVerdict::RemovedRedundant => {
                println!("{:<7} D(v) ⊆ M → removed in cleanup", step.label);
            }
        }
    }
    let picks: Vec<String> = m
        .iter()
        .map(|id| {
            let n = a.mvpp().node(*id);
            let rels: Vec<String> = n
                .expr()
                .base_relations()
                .into_iter()
                .map(|r| r.as_str().to_string())
                .collect();
            format!("{} = ⋈({})", n.label(), rels.join(", "))
        })
        .collect();
    println!("\nM = {{ {} }}", picks.join(", "));
    println!("(the paper materializes tmp2 = Product⋈σDivision and tmp4 = σOrder⋈Customer)");
    let cost = evaluate(&a, &m, MaintenanceMode::SharedRecompute);
    println!(
        "\ntotal cost: {:.0} (query {:.0} + maintenance {:.0})",
        cost.total, cost.query_processing, cost.maintenance
    );
}

fn distributed() {
    section("Extension (§4.1): distributed warehouse with data-transfer costs");
    let a = paper_annotated();
    let topology = Topology::uniform(3, 3.0);
    let wh = topology.site(0).expect("site 0");
    let sales = topology.site(1).expect("site 1");
    let mfg = topology.site(2).expect("site 2");
    let mut placement = Placement::new(wh);
    placement.assign("Order", sales);
    placement.assign("Customer", sales);
    placement.assign("Product", mfg);
    placement.assign("Division", mfg);
    placement.assign("Part", mfg);
    let eval = DistributedEvaluator::new(&a, topology, placement, FilterShipping::AtSource);
    println!(
        "{:<28} {:>14} {:>14}",
        "strategy", "central total", "distributed"
    );
    let (paper_set, _) = GreedySelection::new().run(&a);
    let (aware_set, aware_cost) = MarginalGreedy::default().run(&eval);
    for (label, set) in [
        ("materialize nothing", BTreeSet::new()),
        ("paper greedy", paper_set),
        ("shipping-aware greedy", aware_set.clone()),
    ] {
        let central = evaluate(&a, &set, MaintenanceMode::SharedRecompute).total;
        let dist = eval.evaluate(&set, MaintenanceMode::SharedRecompute).total;
        println!("{label:<28} {central:>14.0} {dist:>14.0}");
    }
    println!(
        "\nshipping-aware design materializes {} views, total {:.0}",
        aware_set.len(),
        aware_cost.total
    );
}

fn ablation() {
    section("Ablation: cost models, estimation modes, maintenance modes");
    let scenario = paper_example();
    // 1. Cost-model ablation: does the chosen set change?
    for (name, run) in [
        ("paper (naive nested loop)", 0),
        ("buffered nested loop (64 pages)", 1),
        ("sort-merge", 2),
    ] {
        let total = match run {
            0 => design_total(&scenario, PaperCostModel::default()),
            1 => design_total(&scenario, NestedLoopCostModel::default()),
            _ => design_total(&scenario, SortMergeCostModel),
        };
        println!("cost model {name:<34} → greedy design total {total:>14.0}");
    }
    // 2. Estimation-mode ablation.
    for mode in [EstimationMode::Calibrated, EstimationMode::Analytic] {
        let est = CostEstimator::new(&scenario.catalog, mode, PaperCostModel::default());
        let mvpp = generate_mvpps(
            &scenario.workload,
            &est,
            &Planner::new(),
            GenerateConfig { max_rotations: 1 },
        )
        .remove(0);
        let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
        let (m, _) = GreedySelection::new().run(&a);
        let c = evaluate(&a, &m, MaintenanceMode::SharedRecompute);
        println!("estimation {mode:?}: |M|={}, total {:.0}", m.len(), c.total);
    }
    // 3. Maintenance-mode ablation.
    let a = paper_annotated();
    let (m, _) = GreedySelection::new().run(&a);
    for mode in [MaintenanceMode::SharedRecompute, MaintenanceMode::Isolated] {
        let c = evaluate(&a, &m, mode);
        println!(
            "maintenance {mode:?}: maintenance {:.0}, total {:.0}",
            c.maintenance, c.total
        );
    }
    // 4. Maintenance-policy ablation: cheap incremental refreshes shift the
    // design toward materializing more (paper future work / its ref. [11]).
    let scenario2 = paper_example();
    let est = CostEstimator::new(
        &scenario2.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    for (label, policy) in [
        ("recompute (paper)", MaintenancePolicy::Recompute),
        (
            "incremental f=0.1",
            MaintenancePolicy::Incremental {
                update_fraction: 0.1,
            },
        ),
        (
            "incremental f=0.01",
            MaintenancePolicy::Incremental {
                update_fraction: 0.01,
            },
        ),
    ] {
        let mvpp = generate_mvpps(
            &scenario2.workload,
            &est,
            &Planner::new(),
            GenerateConfig { max_rotations: 1 },
        )
        .remove(0);
        let a = AnnotatedMvpp::annotate_with(mvpp, &est, UpdateWeighting::Max, policy);
        let (m, _) = GreedySelection::new().run(&a);
        let c = evaluate(&a, &m, MaintenanceMode::SharedRecompute);
        println!(
            "policy {label:<20}: |M|={}, maintenance {:.0}, total {:.0}",
            m.len(),
            c.maintenance,
            c.total
        );
    }
    // 5. Index ablation: declare indexes on the paper's selection columns.
    let mut indexed = paper_example();
    indexed
        .catalog
        .add_index("Division", "city")
        .expect("valid index");
    indexed
        .catalog
        .add_index("Order", "quantity")
        .expect("valid index");
    indexed
        .catalog
        .add_index("Order", "date")
        .expect("valid index");
    for (label, s) in [
        ("no indexes", &paper_example()),
        ("σ-column indexes", &indexed),
    ] {
        let est = CostEstimator::new(
            &s.catalog,
            EstimationMode::Calibrated,
            PaperCostModel::default(),
        );
        let mvpp = generate_mvpps(
            &s.workload,
            &est,
            &Planner::new(),
            GenerateConfig { max_rotations: 1 },
        )
        .remove(0);
        let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
        let (m, _) = GreedySelection::new().run(&a);
        let c = evaluate(&a, &m, MaintenanceMode::SharedRecompute);
        println!("indexes {label:<18}: |M|={}, total {:.0}", m.len(), c.total);
    }
}

/// The fundamental tradeoff curve: sweep the base-relation update frequency
/// and watch the best strategy flip from materialize-everything (static
/// data) to materialize-nothing (hot data), with the MVPP design winning the
/// middle — the crossover structure Table 2 samples at fu = 1.
fn sweep() {
    section("Sweep: update frequency × strategy (crossover structure)");
    println!(
        "{:>10} {:>16} {:>16} {:>16}  winner",
        "fu", "all-virtual", "greedy design", "all-queries"
    );
    for fu in [0.0, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0] {
        let mut scenario = paper_example();
        let rels: Vec<String> = scenario
            .catalog
            .relation_names()
            .map(|r| r.as_str().to_string())
            .collect();
        for r in &rels {
            scenario
                .catalog
                .set_update_frequency(r, fu)
                .expect("known relation");
        }
        let est = CostEstimator::new(
            &scenario.catalog,
            EstimationMode::Calibrated,
            PaperCostModel::default(),
        );
        let mvpp = generate_mvpps(
            &scenario.workload,
            &est,
            &Planner::new(),
            GenerateConfig { max_rotations: 1 },
        )
        .remove(0);
        let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
        let mode = MaintenanceMode::SharedRecompute;
        let none = evaluate(&a, &BTreeSet::new(), mode).total;
        let (g, _) = GreedySelection::new().run(&a);
        let greedy = evaluate(&a, &g, mode).total;
        let all: BTreeSet<_> = a.mvpp().roots().iter().map(|r| r.2).collect();
        let all_q = evaluate(&a, &all, mode).total;
        let winner = if greedy <= none && greedy <= all_q {
            "greedy design"
        } else if all_q <= none {
            "all-queries"
        } else {
            "all-virtual"
        };
        println!("{fu:>10} {none:>16.0} {greedy:>16.0} {all_q:>16.0}  {winner}");
    }
    println!(
        "
reading the curve: with static data everything should be materialized; as
         updates accelerate, maintenance dominates and the design sheds views until
         all-virtual wins — the greedy tracks the lower envelope."
    );
}

/// Selection-quality comparison of every algorithm on the paper example and
/// a larger synthetic star workload.
fn algorithms() {
    section("Selection algorithms: quality comparison");
    let algos: Vec<Box<dyn SelectionAlgorithm>> = vec![
        Box::new(MaterializeNone),
        Box::new(MaterializeAll),
        Box::new(GreedySelection::new()),
        Box::new(RandomSearch::default()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(GeneticSelection::default()),
        Box::new(ExhaustiveSelection {
            max_nodes: 14,
            ..ExhaustiveSelection::default()
        }),
    ];

    let star = StarSchema::with_config(StarSchemaConfig {
        dimensions: 5,
        queries: 10,
        ..StarSchemaConfig::default()
    })
    .scenario();
    let star_est = CostEstimator::new(
        &star.catalog,
        EstimationMode::Analytic,
        PaperCostModel::default(),
    );
    let star_mvpp = generate_mvpps(
        &star.workload,
        &star_est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )
    .remove(0);
    let star_a = AnnotatedMvpp::annotate(star_mvpp, &star_est, UpdateWeighting::Max);
    let paper_a = paper_annotated();

    println!(
        "{:<24} {:>16} {:>7} {:>18} {:>7}",
        "algorithm", "paper example", "|M|", "star (10 queries)", "|M|"
    );
    for algo in &algos {
        let mode = MaintenanceMode::SharedRecompute;
        let mp = algo.select(&paper_a, mode);
        let cp = evaluate(&paper_a, &mp, mode).total;
        let ms = algo.select(&star_a, mode);
        let cs = evaluate(&star_a, &ms, mode).total;
        println!(
            "{:<24} {:>16.0} {:>7} {:>18.0} {:>7}",
            algo.name(),
            cp,
            mp.len(),
            cs,
            ms.len()
        );
    }
}

fn design_total<M: mvdesign::cost::CostModel>(
    scenario: &mvdesign::workload::Scenario,
    model: M,
) -> f64 {
    let est = CostEstimator::new(&scenario.catalog, EstimationMode::Calibrated, model);
    let mvpp = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )
    .remove(0);
    let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
    let (m, _) = GreedySelection::new().run(&a);
    evaluate(&a, &m, MaintenanceMode::SharedRecompute).total
}

/// §3.2's comparison: multiple-query processing (transient sharing) vs
/// materialized view design (persistent sharing).
fn mqp() {
    section("§3.2: multiple-query processing vs MVPP materialization");
    let a = paper_annotated();
    let mode = MaintenanceMode::SharedRecompute;
    let none = evaluate(&a, &BTreeSet::new(), mode).total;
    let (g, _) = GreedySelection::new().run(&a);
    let design = evaluate(&a, &g, mode).total;
    let batch = mqp_batch_cost(&a);
    println!("independent execution (no sharing at all): {none:>14.0}");
    println!("MQP batching (share temps, persist nothing): {batch:>13.0}");
    println!("MVPP design (materialize shared views):      {design:>13.0}");
    println!(
        "\nthe paper's point: with queries repeating (max fq = 10 here) and bases\n\
         updating once per period, persisting the shared temporaries beats\n\
         recomputing them every batch ({:.1}× here).",
        batch / design
    );
}

/// Extension experiment: how the MVPP design's advantage grows with the
/// number of (overlapping) queries — the more queries share joins, the more
/// a materialized shared view amortizes.
fn scale() {
    section("Scale: savings vs workload size (synthetic star schema)");
    println!(
        "{:>8} {:>8} {:>16} {:>16} {:>9}",
        "queries", "nodes", "all-virtual", "greedy design", "saved"
    );
    for queries in [2usize, 4, 8, 16, 32] {
        let scenario = StarSchema::with_config(StarSchemaConfig {
            queries,
            dimensions: 6,
            ..StarSchemaConfig::default()
        })
        .scenario();
        let est = CostEstimator::new(
            &scenario.catalog,
            EstimationMode::Analytic,
            PaperCostModel::default(),
        );
        let mvpp = generate_mvpps(
            &scenario.workload,
            &est,
            &Planner::new(),
            GenerateConfig { max_rotations: 1 },
        )
        .remove(0);
        let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
        let mode = MaintenanceMode::SharedRecompute;
        let none = evaluate(&a, &BTreeSet::new(), mode).total;
        let (m, _) = GreedySelection::new().run(&a);
        let greedy = evaluate(&a, &m, mode).total;
        println!(
            "{queries:>8} {:>8} {none:>16.0} {greedy:>16.0} {:>8.1}%",
            a.mvpp().len(),
            100.0 * (none - greedy) / none.max(1.0)
        );
    }
}

/// Measured validation: run one operating period on the execution engine
/// (real tuples, simulated blocks) under each strategy and compare
/// *observed* I/O with the estimator's prediction.
fn simulate() {
    use mvdesign::core::ViewCatalog;
    use mvdesign::engine::{Generator, GeneratorConfig};
    use mvdesign::prelude::Designer;
    use mvdesign::warehouse::{measured_design_cost, measured_period_cost};

    section("Simulation: observed block I/O per period (engine-measured)");
    let scenario = paper_example();
    let design = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("designs");
    let db = Generator::with_config(GeneratorConfig {
        seed: 4242,
        scale: 0.004,
        max_rows: 400,
    })
    .database(&scenario.catalog);

    let none =
        measured_period_cost(&scenario.workload, &ViewCatalog::new(), &db, 10.0).expect("runs");
    let designed = measured_design_cost(&design, &db, 10.0).expect("runs");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "strategy", "query I/O", "refresh I/O", "total I/O"
    );
    println!(
        "{:<28} {:>12.0} {:>12.0} {:>12.0}",
        "materialize nothing", none.query_io, none.maintenance_io, none.total_io
    );
    println!(
        "{:<28} {:>12.0} {:>12.0} {:>12.0}",
        "greedy design", designed.query_io, designed.maintenance_io, designed.total_io
    );
    println!(
        "\nmeasured advantage of the design: {:.1}× (estimator predicted {:.1}×)",
        none.total_io / designed.total_io.max(1.0),
        {
            let est_none = evaluate(
                &design.mvpp,
                &BTreeSet::new(),
                MaintenanceMode::SharedRecompute,
            )
            .total;
            est_none / design.cost.total.max(1.0)
        }
    );
    println!("(database generated at 1/250 scale; absolute numbers scale accordingly)");
}

/// A realistic second scenario: design the views for the TPC-H-lite
/// reporting workload (scale factor 1 statistics).
fn tpch() {
    use mvdesign::prelude::Designer;
    use mvdesign::workload::tpch_lite;

    section("TPC-H-lite: designing views for an order-processing mart");
    let scenario = tpch_lite();
    let design = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("designs");
    println!("materialize {} view(s):", design.materialized.len());
    for id in &design.materialized {
        let node = design.mvpp.mvpp().node(*id);
        let ann = design.mvpp.annotation(*id);
        let rels: Vec<String> = node
            .expr()
            .base_relations()
            .into_iter()
            .map(|r| r.as_str().to_string())
            .collect();
        println!(
            "  {:<7} over {:<40} build {:>14.0} read {:>12.0}",
            node.label(),
            rels.join("⋈"),
            ann.ca,
            ann.scan
        );
    }
    let none = evaluate(
        &design.mvpp,
        &BTreeSet::new(),
        MaintenanceMode::SharedRecompute,
    );
    println!("\nper-query processing cost (frequency-weighted):");
    for (name, c) in &design.cost.per_query {
        println!("  {name:<26} {c:>16.0}");
    }
    println!(
        "\ntotals: design {:.3e} vs all-virtual {:.3e} ({:.1}% saved)",
        design.cost.total,
        none.total,
        100.0 * (none.total - design.cost.total) / none.total.max(1.0)
    );
}

/// The closed-form analytical model: per-node break-even update weights on
/// the paper MVPP (the conclusion's "analytical model" future-work item).
fn breakeven() {
    use mvdesign::core::break_even_update_weight;

    section("Analytical model: break-even update weight U* per node");
    let a = paper_annotated();
    println!(
        "{:<8} {:<28} {:>12} {:>12} {:>10}",
        "node", "relations", "Ca", "scan", "U*"
    );
    for v in a.mvpp().interior() {
        let ann = a.annotation(v);
        if ann.fq_weight == 0.0 {
            continue;
        }
        let rels: Vec<String> = a
            .mvpp()
            .node(v)
            .expr()
            .base_relations()
            .into_iter()
            .map(|r| r.as_str().chars().take(4).collect())
            .collect();
        let ustar = break_even_update_weight(&a, v);
        println!(
            "{:<8} {:<28} {:>12.0} {:>12.0} {:>10.2}",
            a.mvpp().node(v).label(),
            rels.join("⋈"),
            ann.ca,
            ann.scan,
            ustar
        );
    }
    println!(
        "\nreading: a node is worth materializing while the base-relation update\n\
         weight stays below its U*; at fu = 1 (the paper's setting) exactly the\n\
         high-U* shared joins clear the bar."
    );
}

/// Wall-clock comparison of the memoized/parallel search engine against
/// naive full re-evaluation (the straightforward implementation: one
/// complete `evaluate` per candidate frontier). Both sides are asserted to
/// return the *identical* selected set, so the speedup is free. Writes
/// machine-readable results to `BENCH_selection.json` as one labelled run
/// (`repro perf <label>`, default `working-tree`) so before/after revisions
/// can be recorded side by side.
fn perf() {
    use std::time::Instant;

    section("Perf: memoized incremental search engine vs naive re-evaluation");
    let label = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "working-tree".to_string());
    let mode = MaintenanceMode::SharedRecompute;
    let cores = mvdesign_bench::host_cores();
    let mut rows: Vec<String> = Vec::new();
    println!(
        "{:>8} {:>7} {:<14} {:>12} {:>12} {:>9} {:>10} {:>14}",
        "queries",
        "nodes",
        "algorithm",
        "naive ms",
        "engine ms",
        "speedup",
        "evals",
        "engine eval/s"
    );
    for queries in [10usize, 20, 40] {
        let scenario = StarSchema::with_config(StarSchemaConfig {
            queries,
            dimensions: 5,
            ..StarSchemaConfig::default()
        })
        .scenario();
        let est = CostEstimator::new(
            &scenario.catalog,
            EstimationMode::Analytic,
            PaperCostModel::default(),
        );
        let mvpp = generate_mvpps(
            &scenario.workload,
            &est,
            &Planner::new(),
            GenerateConfig { max_rotations: 1 },
        )
        .remove(0);
        let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
        let nodes = a.mvpp().len();

        // Exact search over the 2^16 subsets of the highest-weight nodes.
        let ex = ExhaustiveSelection {
            max_nodes: 16,
            parallelism: 0,
        };
        let t = Instant::now();
        let engine_pick = ex.select(&a, mode);
        let engine_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let (naive_pick, evals) = naive_exhaustive(&a, mode, 16);
        let naive_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            engine_pick, naive_pick,
            "engine must return the naive optimum"
        );
        perf_row(
            &mut rows,
            queries,
            nodes,
            "exhaustive16",
            naive_ms,
            engine_ms,
            evals,
        );

        // Genetic algorithm, default knobs; both sides drive the identical
        // RNG stream, so the evolved populations match gene for gene.
        let ga = GeneticSelection::default();
        let t = Instant::now();
        let engine_pick = ga.select(&a, mode);
        let engine_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let (naive_pick, evals) = naive_genetic(&a, mode, &ga);
        let naive_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            engine_pick, naive_pick,
            "memoized GA must evolve the identical population"
        );
        perf_row(
            &mut rows, queries, nodes, "genetic", naive_ms, engine_ms, evals,
        );
    }
    write_bench_artifact("BENCH_selection.json", &label, cores, &rows);
}

/// Upserts one labelled run into a `BENCH_*.json` artifact: existing runs
/// survive, a re-run label replaces its previous entry (exact match — no
/// unbounded duplicate growth), and the file is rewritten whole.
///
/// A label that repeats an existing run's stem under a different `rev`
/// prefix (say `pr8-paged` next to an existing `pr7-paged`) draws a
/// warning but still writes: such near-duplicates usually mean the new
/// label was meant to *replace* the old trajectory point, not fork it.
fn write_bench_artifact(path: &str, label: &str, cores: usize, rows: &[String]) {
    let run = format!(
        "    {{\n      \"rev\": \"{label}\",\n      \"results\": [\n{}\n      ]\n    }}",
        rows.join(",\n")
    );
    let mem = mvdesign_bench::host_mem_bytes();
    let existing = mvdesign_bench::load_runs(path);
    for shadow in mvdesign_bench::shadowed_labels(&existing, label) {
        eprintln!(
            "warning: {path} run \"{label}\" shadows existing run \"{shadow}\" \
             (same stem, different prefix); re-use the old label to replace it, \
             or keep both on purpose"
        );
    }
    let runs = mvdesign_bench::upsert_run(existing, label, run);
    let json = mvdesign_bench::render_bench_file(cores, mem, &runs);
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path} run \"{label}\" ({cores} core(s), {mem} bytes RAM)");
}

/// Wall-clock comparison of delta-fold refresh against full recompute on
/// the paper warehouse, across append fractions from 0.1% to 50% of the
/// base data. Both policies are first asserted to leave bit-identical
/// canonical stored views — only then is the refresh timed (best of three
/// fresh warehouses per policy, so every timed refresh starts from the
/// same appended-but-stale state). A second section records the joint
/// policy-selection scenario in which the delta cost model flips the
/// exhaustive optimum from "materialize nothing" to "materialize the join
/// and fold its deltas". Writes `BENCH_maintain.json`
/// (`repro perf-maintain <label>`, default `working-tree`).
fn perf_maintain() {
    use std::time::Instant;

    use mvdesign::algebra::{AttrRef, JoinCondition, Value};
    use mvdesign::catalog::{AttrType, Catalog};
    use mvdesign::core::Mvpp;
    use mvdesign::engine::{Generator, GeneratorConfig, JoinAlgo};
    use mvdesign::prelude::Designer;
    use mvdesign::warehouse::{RefreshPolicy, Warehouse};

    section("Perf: delta-fold refresh vs full recompute");
    let label = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "working-tree".to_string());
    let cores = mvdesign_bench::host_cores();
    let mut rows: Vec<String> = Vec::new();

    let scenario = paper_example();
    let design = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("paper example designs");
    let gen = GeneratorConfig {
        seed: 0xbe7a,
        scale: 1.0,
        max_rows: 30_000,
    };
    let base = Generator::with_config(gen).database(&scenario.catalog);
    let twin = Generator::with_config(GeneratorConfig {
        seed: gen.seed ^ 0xA99E,
        ..gen
    })
    .database(&scenario.catalog);

    println!(
        "{:>11} {:>9} {:>13} {:>10} {:>9} {:>7} {:>11}",
        "append frac", "rows", "recompute ms", "delta ms", "speedup", "folded", "recomputed"
    );
    for fraction in [0.001f64, 0.01, 0.05, 0.2, 0.5] {
        let batches: Vec<(String, Vec<Vec<Value>>)> = base
            .iter()
            .map(|(name, t)| {
                let src = twin.table(name.as_str()).expect("twin relation");
                let take = ((t.len() as f64 * fraction).ceil() as usize).clamp(1, src.len());
                (name.to_string(), src.rows()[..take].to_vec())
            })
            .collect();
        let appended: usize = batches.iter().map(|(_, r)| r.len()).sum();

        let build = |policy: RefreshPolicy| {
            let mut w = Warehouse::new_with_join_algo(
                scenario.catalog.clone(),
                base.clone(),
                &design,
                JoinAlgo::Hash,
            )
            .expect("warehouse builds")
            .with_refresh_policy(policy);
            for (rel, rows) in &batches {
                w.append(rel.clone(), rows.clone())
                    .expect("append is valid");
            }
            w
        };

        // Correctness gate: both maintenance policies must leave the
        // identical stored views before either is timed.
        let mut delta_w = build(RefreshPolicy::Delta);
        let delta_report = delta_w.refresh().expect("delta refresh");
        let mut rec_w = build(RefreshPolicy::Recompute);
        rec_w.refresh().expect("recompute refresh");
        for (vname, _) in delta_w.views().views() {
            let folded = delta_w
                .database()
                .table(vname.as_str())
                .expect("delta view stored")
                .canonicalized();
            let recomputed = rec_w
                .database()
                .table(vname.as_str())
                .expect("recomputed view stored")
                .canonicalized();
            assert_eq!(
                folded.rows(),
                recomputed.rows(),
                "view {vname}: delta fold and recompute disagree at fraction {fraction}"
            );
        }

        let time_refresh = |policy: RefreshPolicy| {
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let mut w = build(policy);
                let t = Instant::now();
                std::hint::black_box(w.refresh().expect("refresh runs"));
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
            }
            best
        };
        let delta_ms = time_refresh(RefreshPolicy::Delta);
        let recompute_ms = time_refresh(RefreshPolicy::Recompute);
        let speedup = recompute_ms / delta_ms.max(1e-9);
        println!(
            "{:>10.1}% {appended:>9} {recompute_ms:>13.3} {delta_ms:>10.3} {speedup:>8.1}x {:>7} {:>11}",
            fraction * 100.0,
            delta_report.folded,
            delta_report.recomputed
        );
        rows.push(format!(
            "    {{\"delta_fraction\": {fraction}, \"appended_rows\": {appended}, \
             \"recompute_ms\": {recompute_ms:.3}, \"delta_ms\": {delta_ms:.3}, \
             \"speedup\": {speedup:.2}, \"folded\": {}, \"recomputed\": {}}}",
            delta_report.folded, delta_report.recomputed
        ));
    }

    section("Joint policy selection: the delta cost model flips the optimum");
    let mut c = Catalog::new();
    for (name, records, blocks) in [("A", 10_000.0, 1_000.0), ("B", 20_000.0, 2_000.0)] {
        c.relation(name)
            .attr("k", AttrType::Int)
            .records(records)
            .blocks(blocks)
            .update_frequency(5.0)
            .finish()
            .expect("relation is valid");
    }
    c.set_join_selectivity(
        AttrRef::new("A", "k"),
        AttrRef::new("B", "k"),
        1.0 / 20_000.0,
    )
    .expect("join selectivity registers");
    let ab = Expr::join(
        Expr::base("A"),
        Expr::base("B"),
        JoinCondition::on(AttrRef::new("A", "k"), AttrRef::new("B", "k")),
    );
    let mut m = Mvpp::new();
    m.insert_query("Q1", 2.0, &ab);
    let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
    let a = AnnotatedMvpp::annotate(m, &est, UpdateWeighting::Max);
    let mode = MaintenanceMode::SharedRecompute;
    let ex = ExhaustiveSelection::default();
    let plain = ex.select(&a, mode);
    let plain_cost = evaluate(&a, &plain, mode);
    let joint = ex.select_with_policies(&a, mode);
    assert!(
        joint.cost.total < plain_cost.total,
        "joint policy selection must beat recompute-only here"
    );
    println!(
        "recompute-only optimum: |M|={}, total {:.0}",
        plain.len(),
        plain_cost.total
    );
    println!(
        "joint optimum:          |M|={}, delta-maintained {}, total {:.0}",
        joint.views.len(),
        joint.delta_views.len(),
        joint.cost.total
    );
    rows.push(format!(
        "    {{\"scenario\": \"policy-flip\", \"plain_views\": {}, \"plain_total\": {:.1}, \
         \"joint_views\": {}, \"joint_delta_views\": {}, \"joint_total\": {:.1}}}",
        plain.len(),
        plain_cost.total,
        joint.views.len(),
        joint.delta_views.len(),
        joint.cost.total
    ));

    write_bench_artifact("BENCH_maintain.json", &label, cores, &rows);
}

/// Throughput/latency trajectory of the async serving layer
/// (`mvdesign-serve`): thousands of simulated client sessions over a mixed
/// query/maintenance load against the paper warehouse, run twice — fully
/// resident, then under a memory budget of half the base data (paged
/// tables, spilling operators, concurrent eviction). Before anything is
/// timed, a fixed concurrent schedule is pushed through the server and its
/// version-tagged answers are asserted bag-equal to a sequential
/// `Warehouse` replay of the same events, so the numbers only exist if
/// snapshot isolation held on this exact build. Latency quantiles are
/// exact (per-answer submission→completion durations, merged and sorted),
/// not the serve-side histogram estimate. Writes `BENCH_serve.json`
/// (`repro perf-serve <label> [--clients N] [--duration-ms D]
/// [--append-fraction F] [--no-write]`; defaults `working-tree`, 1200
/// clients, 2000 ms, 0.02 — refreshes run at half the append fraction).
fn perf_serve() {
    use std::collections::BTreeMap;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use mvdesign::algebra::{parse_query_with, Expr};
    use mvdesign::engine::{batch_bytes, Generator, GeneratorConfig, JoinAlgo};
    use mvdesign::prelude::Designer;
    use mvdesign::warehouse::Warehouse;
    use mvdesign_serve::{ServeConfig, Server};

    section("Perf: async serving layer under concurrent mixed load");
    let cores = mvdesign_bench::host_cores();
    let mut label = "working-tree".to_string();
    let mut clients = 1200usize;
    let mut duration_ms = 2000u64;
    let mut append_fraction = 0.02f64;
    let mut write_artifact = true;
    let mut argv = std::env::args().skip(2);
    while let Some(arg) = argv.next() {
        if arg == "--clients" {
            let n: usize = argv
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--clients takes a positive integer");
            clients = n.max(1);
        } else if arg == "--duration-ms" {
            duration_ms = argv
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--duration-ms takes a positive integer");
        } else if arg == "--append-fraction" {
            append_fraction = argv
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--append-fraction takes a number in [0, 1]");
            assert!(
                (0.0..=0.5).contains(&append_fraction),
                "--append-fraction must be in [0, 0.5]"
            );
        } else if arg == "--no-write" {
            write_artifact = false;
        } else {
            label = arg;
        }
    }

    /// The shared per-thread RNG: one multiplicative step of PCG's LCG,
    /// top bits returned — deterministic per seed, no crate needed.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    let scenario = paper_example();
    let design = Designer::new()
        .design(&scenario.catalog, &scenario.workload)
        .expect("paper example designs");
    let gen = GeneratorConfig {
        seed: 0x5e2e,
        scale: 1.0,
        max_rows: 10_000,
    };
    let base = Generator::with_config(gen).database(&scenario.catalog);
    let twin = Generator::with_config(GeneratorConfig {
        seed: gen.seed ^ 0xA99E,
        ..gen
    })
    .database(&scenario.catalog);
    let rel_names: Vec<String> = base.iter().map(|(n, _)| n.to_string()).collect();
    let twin_rows: Vec<_> = rel_names
        .iter()
        .map(|n| twin.table(n).expect("twin relation").rows().to_vec())
        .collect::<Vec<_>>();
    let data_bytes: usize = base.iter().map(|(_, t)| batch_bytes(t.batch())).sum();

    // The queries clients draw from: the four workload queries
    // (view-routed) plus ad hoc scans the design never saw.
    let mut pool: Vec<Arc<Expr>> = scenario
        .workload
        .queries()
        .iter()
        .map(|q| Arc::clone(q.root()))
        .collect();
    for sql in [
        "SELECT name FROM Customer",
        "SELECT name FROM Customer WHERE city = 'v0'",
    ] {
        pool.push(parse_query_with(sql, &scenario.catalog).expect("ad hoc SQL parses"));
    }

    let build = || {
        Warehouse::new_with_join_algo(
            scenario.catalog.clone(),
            base.clone(),
            &design,
            JoinAlgo::Hash,
        )
        .expect("warehouse builds")
    };

    // ----- Correctness gate: concurrent history ≡ sequential replay -----
    // A fixed schedule (decoded once, so the replay sees the same events)
    // is served concurrently; every answer carries the snapshot version it
    // was answered at, every applied write the version it produced. The
    // replay applies writes in version order and re-answers each query at
    // its version — bag equality or the bench refuses to time anything.
    #[derive(Clone, Copy)]
    enum GateOp {
        Query(usize),
        Append { rel: usize, at: usize, n: usize },
        Refresh,
    }
    struct QueryRec {
        version: u64,
        pool: usize,
        rows: Vec<Vec<mvdesign::algebra::Value>>,
    }
    enum WriteRec {
        Append {
            version: u64,
            rel: usize,
            at: usize,
            n: usize,
        },
        Refresh {
            version: u64,
        },
    }
    fn write_version(w: &WriteRec) -> u64 {
        match w {
            WriteRec::Append { version, .. } | WriteRec::Refresh { version } => *version,
        }
    }

    let gate_sessions = clients.min(64);
    let scripts: Vec<Vec<GateOp>> = (0..gate_sessions)
        .map(|s| {
            let mut state = 0x5EED ^ (s as u64).wrapping_mul(0x9E3779B97F4A7C15);
            (0..4)
                .map(|_| {
                    let roll = lcg(&mut state) % 100;
                    if roll < 60 {
                        GateOp::Query((lcg(&mut state) as usize) % pool.len())
                    } else if roll < 85 {
                        let rel = (lcg(&mut state) as usize) % rel_names.len();
                        let n = 1 + roll as usize % 3;
                        let at = (lcg(&mut state) as usize)
                            % twin_rows[rel].len().saturating_sub(n).max(1);
                        GateOp::Append { rel, at, n }
                    } else {
                        GateOp::Refresh
                    }
                })
                .collect()
        })
        .collect();

    let server = Server::start(build(), ServeConfig { readers: 0 });
    let per_session: Vec<(Vec<QueryRec>, Vec<WriteRec>)> = std::thread::scope(|s| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| {
                let h = server.handle();
                let (pool, rel_names, twin_rows) = (&pool, &rel_names, &twin_rows);
                s.spawn(move || {
                    let mut queries = Vec::new();
                    let mut writes = Vec::new();
                    for op in script {
                        match *op {
                            GateOp::Query(p) => {
                                let a = h.query_expr(&pool[p]).wait().expect("gate query answers");
                                queries.push(QueryRec {
                                    version: a.version,
                                    pool: p,
                                    rows: a.table.canonicalized().into_rows(),
                                });
                            }
                            GateOp::Append { rel, at, n } => {
                                let applied = h
                                    .append(
                                        rel_names[rel].clone(),
                                        twin_rows[rel][at..at + n].to_vec(),
                                    )
                                    .wait()
                                    .expect("gate append applies");
                                writes.push(WriteRec::Append {
                                    version: applied.version,
                                    rel,
                                    at,
                                    n,
                                });
                            }
                            GateOp::Refresh => {
                                let applied = h.refresh().wait().expect("gate refresh applies");
                                writes.push(WriteRec::Refresh {
                                    version: applied.version,
                                });
                            }
                        }
                    }
                    (queries, writes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gate session panicked"))
            .collect()
    });
    drop(server.shutdown());

    let mut queries: Vec<QueryRec> = Vec::new();
    let mut writes: Vec<WriteRec> = Vec::new();
    for (q, w) in per_session {
        queries.extend(q);
        writes.extend(w);
    }
    writes.sort_by_key(write_version);
    for (i, w) in writes.iter().enumerate() {
        assert_eq!(
            write_version(w),
            i as u64 + 1,
            "publish versions must be contiguous"
        );
    }
    let mut by_version: BTreeMap<u64, Vec<QueryRec>> = BTreeMap::new();
    for q in queries {
        by_version.entry(q.version).or_default().push(q);
    }
    let served_queries: usize = by_version.values().map(Vec::len).sum();
    let mut reference = build();
    let answer_at = |reference: &Warehouse, recs: &[QueryRec]| {
        for rec in recs {
            let want = reference
                .query_expr(&pool[rec.pool])
                .expect("replay answers")
                .canonicalized()
                .into_rows();
            assert_eq!(
                rec.rows, want,
                "served answer for pool[{}] at version {} diverges from the sequential replay",
                rec.pool, rec.version
            );
        }
    };
    if let Some(recs) = by_version.get(&0) {
        answer_at(&reference, recs);
    }
    for w in &writes {
        match w {
            WriteRec::Append { rel, at, n, .. } => reference
                .append(
                    rel_names[*rel].clone(),
                    twin_rows[*rel][*at..at + n].to_vec(),
                )
                .expect("replay append applies"),
            WriteRec::Refresh { .. } => {
                reference.refresh().expect("replay refresh applies");
            }
        }
        if let Some(recs) = by_version.get(&write_version(w)) {
            answer_at(&reference, recs);
        }
    }
    println!(
        "gate: {gate_sessions} concurrent sessions, {served_queries} answers, {} writes — \
         history ≡ sequential replay",
        writes.len()
    );

    // ----- Timed runs: resident, then paged at half the data ------------
    let budget = (data_bytes / 2).max(1);
    println!(
        "\n{} clients for {duration_ms} ms, append fraction {append_fraction} \
         (refresh at half that); base data {data_bytes} bytes",
        clients
    );
    println!(
        "{:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>9} {:>10} {:>10}",
        "mode",
        "queries",
        "qps",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "max ms",
        "maint",
        "snapshots",
        "stale ans"
    );
    let mut rows: Vec<String> = Vec::new();
    for (mode, mem_budget) in [("resident", None), ("paged", Some(budget))] {
        let mut warehouse = build();
        if let Some(b) = mem_budget {
            warehouse = warehouse.with_mem_budget(Some(b));
        }
        let server = Server::start(warehouse, ServeConfig { readers: 0 });
        let drivers = cores.clamp(1, 8).min(clients);
        let deadline = Instant::now() + Duration::from_millis(duration_ms);
        let t0 = Instant::now();
        let latencies: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..drivers)
                .map(|d| {
                    let h = server.handle();
                    let (pool, rel_names, twin_rows) = (&pool, &rel_names, &twin_rows);
                    // Balanced split of the simulated sessions over driver
                    // threads: each in-flight ticket is one client waiting.
                    let sessions = clients / drivers + usize::from(d < clients % drivers);
                    s.spawn(move || {
                        let mut state = 0xD05EED ^ (d as u64).wrapping_mul(0x9E3779B97F4A7C15);
                        let mut lat: Vec<u64> = Vec::new();
                        while Instant::now() < deadline {
                            let tickets: Vec<_> = (0..sessions)
                                .map(|_| {
                                    let roll = (lcg(&mut state) % 1_000_000) as f64 / 1e6;
                                    if roll < append_fraction {
                                        let rel = (lcg(&mut state) as usize) % rel_names.len();
                                        let at = (lcg(&mut state) as usize)
                                            % twin_rows[rel].len().saturating_sub(2).max(1);
                                        drop(h.append(
                                            rel_names[rel].clone(),
                                            twin_rows[rel][at..at + 2].to_vec(),
                                        ));
                                        None
                                    } else if roll < append_fraction * 1.5 {
                                        drop(h.refresh());
                                        None
                                    } else {
                                        let p = (lcg(&mut state) as usize) % pool.len();
                                        Some(h.query_expr(&pool[p]))
                                    }
                                })
                                .collect();
                            for t in tickets.into_iter().flatten() {
                                let a = t.wait().expect("bench query answers");
                                lat.push(a.elapsed.as_nanos() as u64);
                            }
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("driver panicked"))
                .collect()
        });
        let wall = t0.elapsed().as_secs_f64();
        let stats = server.handle().stats();
        drop(server.shutdown());
        assert_eq!(
            stats.snapshots_published,
            stats.appends + stats.refreshes,
            "every applied write publishes exactly one snapshot"
        );

        let mut lat: Vec<u64> = latencies.into_iter().flatten().collect();
        lat.sort_unstable();
        let quantile = |p: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let rank = ((p * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
            lat[rank - 1] as f64 / 1e6
        };
        let served = lat.len() as u64;
        let qps = served as f64 / wall.max(1e-9);
        let (p50, p95, p99) = (quantile(0.50), quantile(0.95), quantile(0.99));
        let max_ms = lat.last().map_or(0.0, |&n| n as f64 / 1e6);
        let maintenance = stats.appends + stats.refreshes;
        println!(
            "{mode:>9} {served:>9} {qps:>9.0} {p50:>9.3} {p95:>9.3} {p99:>9.3} {max_ms:>8.1} \
             {maintenance:>9} {:>10} {:>10}",
            stats.snapshots_published, stats.stale_answers
        );
        rows.push(format!(
            "    {{\"mode\": \"{mode}\", \"clients\": {clients}, \"duration_ms\": {duration_ms}, \
             \"append_fraction\": {append_fraction}, \"mem_budget_bytes\": {}, \
             \"queries\": {served}, \"qps\": {qps:.1}, \"p50_ms\": {p50:.3}, \
             \"p95_ms\": {p95:.3}, \"p99_ms\": {p99:.3}, \"max_ms\": {max_ms:.3}, \
             \"appends\": {}, \"refreshes\": {}, \"snapshots_published\": {}, \
             \"stale_answers\": {}, \"max_staleness_rows\": {}}}",
            mem_budget.map_or("null".to_string(), |b| b.to_string()),
            stats.appends,
            stats.refreshes,
            stats.snapshots_published,
            stats.stale_answers,
            stats.max_staleness_rows
        ));
    }

    if write_artifact {
        write_bench_artifact("BENCH_serve.json", &label, cores, &rows);
    } else {
        println!("\n--no-write: BENCH_serve.json left untouched");
    }
}

/// Wall-clock comparison of the columnar batch engine against the preserved
/// tuple-at-a-time reference (`mvdesign::engine::row_reference`) on
/// star-schema scan, join (nested-loop and hash) and aggregation
/// microbenchmarks over generated data, plus a dictionary-keyed catalog that
/// pits the text-key join/aggregate kernels against the int-key fast path
/// and the selection-vector scan against the full-width mask evaluation
/// (the `"baseline"` field names what each row was measured against). Both
/// sides are asserted bag-equal (masks bit-identical) before timing. A
/// second section times the morsel-driven parallel engine on a 1M-row
/// scenario at several thread counts (default 1, 2 and all cores;
/// `--threads N` adds an explicit count), asserting every parallel result
/// bit-identical to the single-threaded run before timing. A third,
/// out-of-core section ([`perf_engine_paged`]) sweeps buffer-pool budgets
/// from an eighth of the data to twice the data (or the single
/// `--mem-budget <bytes>` value) and records each operator's
/// measured-vs-predicted block accesses. Writes `BENCH_engine.json` as one
/// labelled run (`repro perf-engine <label> [--threads N]
/// [--mem-budget <bytes>]`, default `working-tree`).
fn perf_engine() {
    use mvdesign::algebra::{AggExpr, AggFunc, AttrRef, CompareOp, JoinCondition, Predicate};
    use mvdesign::catalog::{AttrType, Catalog};
    use mvdesign::engine::{
        execute_with, row_reference, selection_mask, selection_mask_full, Generator,
        GeneratorConfig, JoinAlgo,
    };

    section("Perf: columnar batch engine vs tuple-at-a-time reference");
    let cores = mvdesign_bench::host_cores();
    let mut label = "working-tree".to_string();
    let mut thread_counts: Vec<usize> = vec![1, 2, cores.max(1)];
    let mut mem_budget: Option<usize> = None;
    let mut argv = std::env::args().skip(2);
    while let Some(arg) = argv.next() {
        if arg == "--mem-budget" {
            let bytes: usize = argv
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--mem-budget takes a byte count");
            mem_budget = Some(bytes.max(1));
        } else if arg == "--threads" {
            let n: usize = argv
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--threads takes a positive integer");
            thread_counts.push(n.max(1));
        } else {
            label = arg;
        }
    }
    thread_counts.sort_unstable();
    thread_counts.dedup();

    // Star schema at a size where the row engine's nested loop is painful
    // but not intolerable: 8 000 fact rows × 800 rows per dimension.
    let scenario = StarSchema::with_config(StarSchemaConfig {
        dimensions: 4,
        queries: 4,
        ..StarSchemaConfig::default()
    })
    .scenario();
    let db = Generator::with_config(GeneratorConfig {
        seed: 0xC0111,
        scale: 0.08,
        max_rows: 8_000,
    })
    .database(&scenario.catalog);
    let fact_rows = db.table("Fact").expect("fact").len();
    let dim_rows = db.table("Dim0").expect("dim").len();

    // A second, dictionary-keyed catalog with the same fact/dimension sizes:
    // the dimension key exists both as an int (`skuid`/`did`) and as text
    // (`sku`), drawn from the same 800-value domain, so the text-key kernels
    // are directly comparable with the int-key fast path in the same run.
    let mut dict_catalog = Catalog::new();
    dict_catalog
        .relation("TFact")
        .attr("fid", AttrType::Int)
        .attr("skuid", AttrType::Int)
        .attr("sku", AttrType::Text)
        .attr("tier", AttrType::Text)
        .attr("grade", AttrType::Text)
        .attr("flag", AttrType::Int)
        .attr("qty", AttrType::Int)
        .records(100_000.0)
        .blocks(10_000.0)
        .selectivity("tier", 0.25)
        .selectivity("grade", 0.2)
        .selectivity("flag", 0.5)
        .finish()
        .expect("TFact");
    dict_catalog
        .relation("TDim")
        .attr("did", AttrType::Int)
        .attr("sku", AttrType::Text)
        .records(10_000.0)
        .blocks(1_000.0)
        .finish()
        .expect("TDim");
    dict_catalog
        .set_join_selectivity(
            AttrRef::new("TFact", "skuid"),
            AttrRef::new("TDim", "did"),
            1e-4,
        )
        .expect("int join key");
    dict_catalog
        .set_join_selectivity(
            AttrRef::new("TFact", "sku"),
            AttrRef::new("TDim", "sku"),
            1e-4,
        )
        .expect("text join key");
    let tdb = Generator::with_config(GeneratorConfig {
        seed: 0xD1C7,
        scale: 0.08,
        max_rows: 8_000,
    })
    .database(&dict_catalog);
    let tfact_rows = tdb.table("TFact").expect("tfact").len();
    let tdim_rows = tdb.table("TDim").expect("tdim").len();

    // `measure` draws from a two-value domain (selectivity 0.5), so this
    // keeps about half the fact table.
    let scan = Expr::select(
        Expr::base("Fact"),
        Predicate::cmp(AttrRef::new("Fact", "measure"), CompareOp::Gt, 0),
    );
    let join = Expr::join(
        Expr::base("Fact"),
        Expr::base("Dim0"),
        JoinCondition::on(AttrRef::new("Fact", "d0"), AttrRef::new("Dim0", "id")),
    );
    let aggregate = Expr::aggregate(
        Expr::base("Fact"),
        [AttrRef::new("Fact", "d1")],
        [
            AggExpr::new(AggFunc::Sum, AttrRef::new("Fact", "measure"), "total"),
            AggExpr::count_star("n"),
        ],
    );
    // Dict-catalog queries: the same hash join through the int and the text
    // key, a text group-by aggregate, and a multi-conjunct scan whose first
    // conjunct keeps ~1/800 of the fact table (the selection-vector case).
    let join_int = Expr::join(
        Expr::base("TFact"),
        Expr::base("TDim"),
        JoinCondition::on(AttrRef::new("TFact", "skuid"), AttrRef::new("TDim", "did")),
    );
    let join_text = Expr::join(
        Expr::base("TFact"),
        Expr::base("TDim"),
        JoinCondition::on(AttrRef::new("TFact", "sku"), AttrRef::new("TDim", "sku")),
    );
    let aggregate_text = Expr::aggregate(
        Expr::base("TFact"),
        [AttrRef::new("TFact", "tier")],
        [
            AggExpr::new(AggFunc::Sum, AttrRef::new("TFact", "qty"), "total"),
            AggExpr::count_star("n"),
        ],
    );
    let selective = Predicate::and([
        Predicate::cmp(AttrRef::new("TFact", "sku"), CompareOp::Eq, "v7"),
        Predicate::cmp(AttrRef::new("TFact", "qty"), CompareOp::Gt, 1_000),
        Predicate::cmp(AttrRef::new("TFact", "tier"), CompareOp::Ne, "v3"),
        Predicate::cmp(AttrRef::new("TFact", "grade"), CompareOp::Ne, "v4"),
        Predicate::cmp(AttrRef::new("TFact", "flag"), CompareOp::Eq, 1),
    ]);
    let scan_selective = Expr::select(Expr::base("TFact"), selective.clone());

    type Case<'a> = (
        &'a str,
        &'a std::sync::Arc<Expr>,
        JoinAlgo,
        usize,
        &'a mvdesign::engine::Database,
    );
    let cases: Vec<Case<'_>> = vec![
        ("scan-filter", &scan, JoinAlgo::NestedLoop, fact_rows, &db),
        (
            "join-nested-loop",
            &join,
            JoinAlgo::NestedLoop,
            fact_rows + dim_rows,
            &db,
        ),
        (
            "join-hash",
            &join,
            JoinAlgo::Hash,
            fact_rows + dim_rows,
            &db,
        ),
        (
            "join-sort-merge",
            &join,
            JoinAlgo::SortMerge,
            fact_rows + dim_rows,
            &db,
        ),
        (
            "hash-aggregate",
            &aggregate,
            JoinAlgo::NestedLoop,
            fact_rows,
            &db,
        ),
        (
            "join-hash-int-key",
            &join_int,
            JoinAlgo::Hash,
            tfact_rows + tdim_rows,
            &tdb,
        ),
        (
            "join-hash-text",
            &join_text,
            JoinAlgo::Hash,
            tfact_rows + tdim_rows,
            &tdb,
        ),
        (
            "hash-aggregate-dict",
            &aggregate_text,
            JoinAlgo::NestedLoop,
            tfact_rows,
            &tdb,
        ),
        (
            "scan-filter-selective",
            &scan_selective,
            JoinAlgo::NestedLoop,
            tfact_rows,
            &tdb,
        ),
    ];

    println!(
        "{:<22} {:<14} {:>9} {:>9} {:>12} {:>12} {:>9} {:>16}",
        "kernel",
        "baseline",
        "rows in",
        "rows out",
        "base ms",
        "batch ms",
        "speedup",
        "batch rows/s"
    );
    let mut rows_json: Vec<String> = Vec::new();
    let mut batch_times: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
    for (kernel, expr, algo, rows_in, data) in cases {
        let reference = row_reference::execute_with(expr, data, algo)
            .expect("reference executes")
            .canonicalized();
        let batch = execute_with(expr, data, algo)
            .expect("batch executes")
            .canonicalized();
        assert_eq!(
            reference.rows(),
            batch.rows(),
            "{kernel}: batch and reference engines disagree"
        );
        let rows_out = batch.len();
        let row_ms = time_ms(|| {
            row_reference::execute_with(expr, data, algo)
                .expect("reference executes")
                .len()
        });
        let batch_ms = time_ms(|| {
            execute_with(expr, data, algo)
                .expect("batch executes")
                .len()
        });
        batch_times.insert(kernel, batch_ms);
        engine_row(
            &mut rows_json,
            kernel,
            "row-reference",
            rows_in,
            rows_out,
            row_ms,
            batch_ms,
        );
    }

    // The selection-vector ablation: the same selective predicate evaluated
    // with the PR 4 full-width kernels (every conjunct touches every row)
    // against the adaptive survivor-index path, masks asserted bit-identical
    // before timing. Both sides run mask + filter on the resident base batch.
    let tfact = tdb.table("TFact").expect("tfact").batch();
    let adaptive = selection_mask(&selective, tfact).expect("adaptive mask");
    let full = selection_mask_full(&selective, tfact).expect("full mask");
    assert_eq!(adaptive, full, "adaptive and full-width masks must agree");
    let full_ms = time_ms(|| {
        let mask = selection_mask_full(&selective, tfact).expect("full mask");
        tfact.filter(&mask).rows()
    });
    let adaptive_ms = time_ms(|| {
        let mask = selection_mask(&selective, tfact).expect("adaptive mask");
        tfact.filter(&mask).rows()
    });
    let kept = adaptive.iter().filter(|k| **k).count();
    engine_row(
        &mut rows_json,
        "scan-filter-selective",
        "full-mask",
        tfact_rows,
        kept,
        full_ms,
        adaptive_ms,
    );

    let text_vs_int = batch_times["join-hash-text"] / batch_times["join-hash-int-key"].max(1e-9);
    println!(
        "\ntext-key hash join vs int-key fast path: {text_vs_int:.2}x batch time \
         (target: within 2x); selection vectors vs full-width masks: {:.1}x",
        full_ms / adaptive_ms.max(1e-9)
    );
    perf_engine_parallel(&mut rows_json, &thread_counts);
    perf_engine_paged(&mut rows_json, mem_budget);
    write_bench_artifact("BENCH_engine.json", &label, cores, &rows_json);
}

/// The morsel-driven scaling section of `perf-engine`: a 1M-row fact table
/// (built straight from typed columns — the row-major constructor would
/// dominate setup) scanned, hash-joined against a 10k-row dimension and
/// hash-aggregated under an [`ExecContext`](mvdesign::engine::ExecContext)
/// per requested thread count.
/// Every parallel result batch is asserted **bit-identical** to the
/// single-threaded one before anything is timed, so the scaling numbers are
/// for provably-equivalent plans.
fn perf_engine_parallel(rows_json: &mut Vec<String>, thread_counts: &[usize]) {
    use std::sync::Arc;

    use mvdesign::algebra::{AggExpr, AggFunc, AttrRef, CompareOp, JoinCondition, Predicate};
    use mvdesign::engine::{
        execute_with_context, Batch, Column, Database, ExecContext, JoinAlgo, Table,
        DEFAULT_MORSEL_ROWS,
    };

    const FACT_ROWS: usize = 1_000_000;
    const DIM_ROWS: usize = 10_000;

    let mut db = Database::new();
    db.insert_table(Table::from_batch(
        "PFact",
        Batch::new(
            vec![
                AttrRef::new("PFact", "id"),
                AttrRef::new("PFact", "k"),
                AttrRef::new("PFact", "m"),
            ],
            vec![
                Arc::new(Column::Int((0..FACT_ROWS as i64).collect())),
                Arc::new(Column::Int(
                    (0..FACT_ROWS as i64)
                        .map(|i| i.wrapping_mul(2_654_435_761) % DIM_ROWS as i64)
                        .collect(),
                )),
                Arc::new(Column::Int(
                    (0..FACT_ROWS as i64).map(|i| i % 100).collect(),
                )),
            ],
        ),
    ));
    db.insert_table(Table::from_batch(
        "PDim",
        Batch::new(
            vec![AttrRef::new("PDim", "did")],
            vec![Arc::new(Column::Int((0..DIM_ROWS as i64).collect()))],
        ),
    ));

    // ~Half-selective scan, fact⋈dim hash join, 100-group hash aggregate.
    let scan = Expr::select(
        Expr::base("PFact"),
        Predicate::cmp(AttrRef::new("PFact", "m"), CompareOp::Lt, 50),
    );
    let join = Expr::join(
        Expr::base("PFact"),
        Expr::base("PDim"),
        JoinCondition::on(AttrRef::new("PFact", "k"), AttrRef::new("PDim", "did")),
    );
    let aggregate = Expr::aggregate(
        Expr::base("PFact"),
        [AttrRef::new("PFact", "m")],
        [
            AggExpr::new(AggFunc::Sum, AttrRef::new("PFact", "id"), "total"),
            AggExpr::count_star("n"),
        ],
    );
    type PCase<'a> = (&'a str, &'a std::sync::Arc<Expr>, JoinAlgo, usize);
    let cases: Vec<PCase<'_>> = vec![
        ("scan-filter-1m", &scan, JoinAlgo::NestedLoop, FACT_ROWS),
        ("join-hash-1m", &join, JoinAlgo::Hash, FACT_ROWS + DIM_ROWS),
        (
            "hash-aggregate-1m",
            &aggregate,
            JoinAlgo::NestedLoop,
            FACT_ROWS,
        ),
    ];

    println!(
        "\n{:<22} {:>8} {:>9} {:>12} {:>9} {:>16}",
        "kernel (morsels)", "threads", "rows out", "batch ms", "scaling", "batch rows/s"
    );
    for (kernel, expr, algo, rows_in) in cases {
        let single = ExecContext {
            threads: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            mem_budget: None,
        };
        let baseline = execute_with_context(expr, &db, algo, &single).expect("executes");
        let mut single_ms = f64::NAN;
        for &threads in thread_counts {
            let ctx = ExecContext {
                threads,
                morsel_rows: DEFAULT_MORSEL_ROWS,
                mem_budget: None,
            };
            let out = execute_with_context(expr, &db, algo, &ctx).expect("executes");
            assert_eq!(
                baseline.batch(),
                out.batch(),
                "{kernel}: morsel result differs at {threads} thread(s)"
            );
            let ms = time_ms(|| {
                execute_with_context(expr, &db, algo, &ctx)
                    .expect("executes")
                    .len()
            });
            if threads == 1 {
                single_ms = ms;
            }
            let scaling = single_ms / ms.max(1e-9);
            let throughput = rows_in as f64 / (ms / 1e3).max(1e-9);
            println!(
                "{kernel:<22} {threads:>8} {:>9} {ms:>12.3} {scaling:>8.2}x {throughput:>16.0}",
                out.len()
            );
            rows_json.push(format!(
                "    {{\"kernel\": \"{kernel}\", \"baseline\": \"single-thread\", \
                 \"threads\": {threads}, \"rows_in\": {rows_in}, \"rows_out\": {}, \
                 \"batch_ms\": {ms:.4}, \"speedup\": {scaling:.2}, \
                 \"batch_rows_per_sec\": {throughput:.0}}}",
                out.len()
            ));
        }
    }
}

/// The out-of-core section of `perf-engine`: a fact table several times any
/// pool budget in the sweep, paged into a
/// [`BufferPool`](mvdesign::engine::BufferPool) and scanned,
/// hash-joined and hash-aggregated under memory budgets from an eighth of
/// the data to twice the data (`--mem-budget <bytes>` pins a single
/// budget instead). At the smallest budget the data is ≥8× the pool and
/// both the hash join and the aggregation outgrow the operator budget, so
/// eviction **and** operator spill are exercised. Every paged result is
/// asserted bit-identical to the resident run before timing, and each row
/// records the per-operator measured-vs-predicted block-access
/// differential: predicted blocks from the paper's `iosim` model with one
/// block per page, measured block reads from the pool's cold-start miss
/// counters ([`measure_paged`](mvdesign::engine::measure_paged)), plus the
/// relative error between them.
fn perf_engine_paged(rows_json: &mut Vec<String>, budget_override: Option<usize>) {
    use std::sync::Arc;

    use mvdesign::algebra::{AggExpr, AggFunc, AttrRef, CompareOp, JoinCondition, Predicate};
    use mvdesign::engine::{
        batch_bytes, execute_with_context, measure_paged, Batch, BufferPool, Column, Database,
        ExecContext, JoinAlgo, Table, DEFAULT_MORSEL_ROWS, DEFAULT_PAGE_ROWS,
    };

    const FACT_ROWS: usize = 200_000;
    const DIM_ROWS: usize = 5_000;

    let mut resident = Database::new();
    resident.insert_table(Table::from_batch(
        "OFact",
        Batch::new(
            vec![
                AttrRef::new("OFact", "id"),
                AttrRef::new("OFact", "k"),
                AttrRef::new("OFact", "m"),
            ],
            vec![
                Arc::new(Column::Int((0..FACT_ROWS as i64).collect())),
                Arc::new(Column::Int(
                    (0..FACT_ROWS as i64)
                        .map(|i| i.wrapping_mul(2_654_435_761) % DIM_ROWS as i64)
                        .collect(),
                )),
                Arc::new(Column::Int(
                    (0..FACT_ROWS as i64).map(|i| i % 100).collect(),
                )),
            ],
        ),
    ));
    resident.insert_table(Table::from_batch(
        "ODim",
        Batch::new(
            vec![AttrRef::new("ODim", "did")],
            vec![Arc::new(Column::Int((0..DIM_ROWS as i64).collect()))],
        ),
    ));
    let data_bytes: usize = resident.iter().map(|(_, t)| batch_bytes(t.batch())).sum();
    let budgets: Vec<usize> = match budget_override {
        Some(b) => vec![b],
        None => vec![data_bytes / 8, data_bytes / 2, data_bytes, data_bytes * 2],
    };
    if budget_override.is_none() {
        assert!(
            data_bytes >= 8 * budgets[0],
            "the smallest default budget must make the data at least 8x the pool"
        );
    }

    let scan = Expr::select(
        Expr::base("OFact"),
        Predicate::cmp(AttrRef::new("OFact", "m"), CompareOp::Lt, 50),
    );
    let join = Expr::join(
        Expr::base("OFact"),
        Expr::base("ODim"),
        JoinCondition::on(AttrRef::new("OFact", "k"), AttrRef::new("ODim", "did")),
    );
    let aggregate = Expr::aggregate(
        Expr::base("OFact"),
        [AttrRef::new("OFact", "m")],
        [
            AggExpr::new(AggFunc::Sum, AttrRef::new("OFact", "id"), "total"),
            AggExpr::count_star("n"),
        ],
    );
    type OCase<'a> = (&'a str, &'a std::sync::Arc<Expr>, JoinAlgo, usize);
    let cases: Vec<OCase<'_>> = vec![
        ("scan-filter-paged", &scan, JoinAlgo::NestedLoop, FACT_ROWS),
        (
            "join-hash-paged",
            &join,
            JoinAlgo::Hash,
            FACT_ROWS + DIM_ROWS,
        ),
        (
            "hash-aggregate-paged",
            &aggregate,
            JoinAlgo::NestedLoop,
            FACT_ROWS,
        ),
    ];

    println!(
        "\n{:<22} {:>12} {:>9} {:>12} {:>16}   per-operator predicted vs measured blocks",
        "kernel (paged)", "budget B", "rows out", "batch ms", "batch rows/s"
    );
    for &budget in &budgets {
        for &(kernel, expr, algo, rows_in) in &cases {
            let resident_ctx = ExecContext {
                threads: 1,
                morsel_rows: DEFAULT_MORSEL_ROWS,
                mem_budget: None,
            };
            let baseline =
                execute_with_context(expr, &resident, algo, &resident_ctx).expect("resident");

            let mut pdb = resident.clone();
            let pool = BufferPool::new(Some(budget));
            pdb.page_out(&pool, DEFAULT_PAGE_ROWS);
            let ctx = ExecContext {
                threads: 1,
                morsel_rows: DEFAULT_MORSEL_ROWS,
                mem_budget: Some(budget),
            };
            let out = execute_with_context(expr, &pdb, algo, &ctx).expect("paged executes");
            assert_eq!(
                baseline.batch(),
                out.batch(),
                "{kernel}: paged result differs at budget {budget}"
            );
            let ms = time_ms(|| {
                execute_with_context(expr, &pdb, algo, &ctx)
                    .expect("paged executes")
                    .len()
            });
            if budget * 8 <= data_bytes {
                assert!(
                    pool.stats().evictions > 0,
                    "{kernel}: an 8x-oversized dataset must force eviction"
                );
            }

            // The differential runs on a cold pool so the miss counters
            // measure every block the operators actually read.
            let mut cold = resident.clone();
            let cold_pool = BufferPool::new(Some(budget));
            cold.page_out(&cold_pool, DEFAULT_PAGE_ROWS);
            let (_, io) =
                measure_paged(expr, &cold, DEFAULT_PAGE_ROWS as f64, &ctx).expect("measures");
            let mut ops: Vec<String> = Vec::new();
            let mut ops_text = String::new();
            for (op, charge) in io.per_operator() {
                let predicted = charge.read;
                let measured = charge.pool_misses;
                let rel_err = if predicted > 0.0 {
                    (measured as f64 - predicted).abs() / predicted
                } else {
                    0.0
                };
                ops.push(format!(
                    "{{\"op\": \"{op}\", \"predicted_blocks\": {predicted:.1}, \
                     \"measured_block_reads\": {measured}, \"rel_err\": {rel_err:.4}}}"
                ));
                ops_text.push_str(&format!(" {op}:{predicted:.0}/{measured}"));
            }
            let throughput = rows_in as f64 / (ms / 1e3).max(1e-9);
            println!(
                "{kernel:<22} {budget:>12} {:>9} {ms:>12.3} {throughput:>16.0}  {ops_text}",
                out.len()
            );
            rows_json.push(format!(
                "    {{\"kernel\": \"{kernel}\", \"baseline\": \"resident\", \
                 \"mem_budget\": {budget}, \"data_bytes\": {data_bytes}, \
                 \"rows_in\": {rows_in}, \"rows_out\": {}, \"batch_ms\": {ms:.4}, \
                 \"batch_rows_per_sec\": {throughput:.0}, \"operators\": [{}]}}",
                out.len(),
                ops.join(", ")
            ));
        }
    }
}

/// Prints and serializes one `perf-engine` result row. `baseline` names what
/// `base_ms` measured: the tuple-at-a-time reference engine, or the PR 4
/// full-width mask evaluation for the selection-vector ablation.
fn engine_row(
    rows_json: &mut Vec<String>,
    kernel: &str,
    baseline: &str,
    rows_in: usize,
    rows_out: usize,
    base_ms: f64,
    batch_ms: f64,
) {
    let speedup = base_ms / batch_ms.max(1e-9);
    let throughput = rows_in as f64 / (batch_ms / 1e3).max(1e-9);
    println!(
        "{kernel:<22} {baseline:<14} {rows_in:>9} {rows_out:>9} {base_ms:>12.3} {batch_ms:>12.3} {speedup:>8.1}x {throughput:>16.0}"
    );
    rows_json.push(format!(
        "    {{\"kernel\": \"{kernel}\", \"baseline\": \"{baseline}\", \"rows_in\": {rows_in}, \
         \"rows_out\": {rows_out}, \"row_ms\": {base_ms:.4}, \"batch_ms\": {batch_ms:.4}, \
         \"speedup\": {speedup:.2}, \"batch_rows_per_sec\": {throughput:.0}}}"
    ));
}

/// Milliseconds per execution, measured over enough repetitions to fill
/// ~200 ms of wall clock (one calibration pass, then the timed loop).
fn time_ms(mut f: impl FnMut() -> usize) -> f64 {
    use std::time::Instant;
    let t = Instant::now();
    std::hint::black_box(f());
    let once = t.elapsed().as_secs_f64();
    let iters = ((0.2 / once.max(1e-9)) as usize).clamp(1, 500);
    let t = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    t.elapsed().as_secs_f64() * 1e3 / iters as f64
}

fn perf_row(
    rows: &mut Vec<String>,
    queries: usize,
    nodes: usize,
    algo: &str,
    naive_ms: f64,
    engine_ms: f64,
    evals: u64,
) {
    let speedup = naive_ms / engine_ms.max(1e-9);
    let evals_per_sec = evals as f64 / (engine_ms / 1e3).max(1e-9);
    println!(
        "{queries:>8} {nodes:>7} {algo:<14} {naive_ms:>12.1} {engine_ms:>12.1} {speedup:>8.1}x {evals:>10} {evals_per_sec:>14.0}"
    );
    rows.push(format!(
        "    {{\"queries\": {queries}, \"mvpp_nodes\": {nodes}, \"algorithm\": \"{algo}\", \
         \"naive_ms\": {naive_ms:.3}, \"engine_ms\": {engine_ms:.3}, \"speedup\": {speedup:.2}, \
         \"evaluations\": {evals}, \"engine_evals_per_sec\": {evals_per_sec:.0}}}"
    ));
}

/// The pre-engine total-cost evaluation, mirrored verbatim as the perf
/// baseline: `BTreeSet` frontier and visited sets, and the maintenance
/// closure re-derived by DAG traversal on every probe. The current
/// `evaluate`/`evaluate_set` are bit-identical to this by construction,
/// which is why `perf` can assert both sides select the same views.
fn seed_total(
    a: &AnnotatedMvpp,
    m: &BTreeSet<mvdesign::core::NodeId>,
    mode: MaintenanceMode,
) -> f64 {
    let mvpp = a.mvpp();
    let mut query_processing = 0.0;
    for (_, fq, root) in mvpp.roots() {
        query_processing += fq * seed_query_cost(a, m, *root);
    }
    let maintenance: f64 = match mode {
        MaintenanceMode::Isolated => m
            .iter()
            .filter(|v| !mvpp.node(**v).is_leaf())
            .map(|v| {
                let ann = a.annotation(*v);
                ann.fu_weight * ann.cm
            })
            .sum(),
        MaintenanceMode::SharedRecompute => {
            let fraction = a.maintenance_policy().work_fraction();
            let apply: f64 = match a.maintenance_policy() {
                MaintenancePolicy::Recompute => 0.0,
                MaintenancePolicy::Incremental { .. } => m
                    .iter()
                    .filter(|v| !mvpp.node(**v).is_leaf())
                    .map(|v| {
                        let ann = a.annotation(*v);
                        ann.fu_weight * ann.scan
                    })
                    .sum(),
            };
            let mut needed: BTreeSet<mvdesign::core::NodeId> = BTreeSet::new();
            for v in m {
                if mvpp.node(*v).is_leaf() {
                    continue;
                }
                needed.insert(*v);
                needed.extend(mvpp.descendants(*v));
            }
            needed
                .into_iter()
                .map(|n| {
                    let ann = a.annotation(n);
                    ann.fu_weight * ann.op_cost * fraction
                })
                .sum::<f64>()
                + apply
        }
    };
    query_processing + maintenance + 0.0
}

fn seed_query_cost(
    a: &AnnotatedMvpp,
    m: &BTreeSet<mvdesign::core::NodeId>,
    root: mvdesign::core::NodeId,
) -> f64 {
    if m.contains(&root) && !a.mvpp().node(root).is_leaf() {
        return a.annotation(root).scan;
    }
    let mut visited = BTreeSet::new();
    seed_walk(a, m, root, root, &mut visited)
}

fn seed_walk(
    a: &AnnotatedMvpp,
    m: &BTreeSet<mvdesign::core::NodeId>,
    v: mvdesign::core::NodeId,
    root: mvdesign::core::NodeId,
    visited: &mut BTreeSet<mvdesign::core::NodeId>,
) -> f64 {
    if !visited.insert(v) {
        return 0.0;
    }
    let node = a.mvpp().node(v);
    if node.is_leaf() {
        return 0.0;
    }
    if v != root && m.contains(&v) {
        return a.annotation(v).scan;
    }
    let mut cost = a.annotation(v).op_cost;
    for c in node.children() {
        cost += seed_walk(a, m, *c, root, visited);
    }
    cost
}

/// The straightforward exact search: every subset mask in ascending order,
/// one full seed-style evaluation each, keeping the first strict minimum —
/// exactly what `ExhaustiveSelection` did before the incremental engine.
fn naive_exhaustive(
    a: &AnnotatedMvpp,
    mode: MaintenanceMode,
    max_nodes: usize,
) -> (BTreeSet<mvdesign::core::NodeId>, u64) {
    let mut candidates = a.mvpp().interior();
    if candidates.len() > max_nodes {
        candidates.sort_by(|x, y| {
            let wx = a.annotation(*x).weight;
            let wy = a.annotation(*y).weight;
            wy.total_cmp(&wx)
        });
        candidates.truncate(max_nodes);
    }
    let total: u64 = 1 << candidates.len();
    let mut best = (f64::INFINITY, 0u64);
    for mask in 0..total {
        let set: BTreeSet<_> = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, id)| *id)
            .collect();
        let cost = seed_total(a, &set, mode);
        if cost < best.0 {
            best = (cost, mask);
        }
    }
    let pick: BTreeSet<_> = candidates
        .iter()
        .enumerate()
        .filter(|(i, _)| best.1 & (1 << i) != 0)
        .map(|(_, id)| *id)
        .collect();
    (pick, total)
}

/// `GeneticSelection`'s exact control flow with the memoized engine
/// replaced by the seed-style full evaluation per individual. Same seed,
/// same RNG stream, same evolution — only slower.
fn naive_genetic(
    a: &AnnotatedMvpp,
    mode: MaintenanceMode,
    ga: &GeneticSelection,
) -> (BTreeSet<mvdesign::core::NodeId>, u64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let candidates = a.mvpp().interior();
    let n = candidates.len();
    if n == 0 {
        return (BTreeSet::new(), 0);
    }
    let mut rng = StdRng::seed_from_u64(ga.seed);
    let mut evals: u64 = 0;
    let decode = |genes: &[bool]| -> BTreeSet<_> {
        genes
            .iter()
            .zip(&candidates)
            .filter(|(g, _)| **g)
            .map(|(_, id)| *id)
            .collect()
    };
    let mut fitness = |genes: &[bool]| -> f64 {
        evals += 1;
        seed_total(a, &decode(genes), mode)
    };

    let greedy = GreedySelection::new().run(a).0;
    let target = ga.population.max(4);
    let mut seeds: Vec<Vec<bool>> = Vec::with_capacity(target);
    seeds.push(candidates.iter().map(|c| greedy.contains(c)).collect());
    seeds.push(vec![false; n]);
    while seeds.len() < target {
        seeds.push((0..n).map(|_| rng.gen_bool(0.3)).collect());
    }
    let mut population: Vec<(f64, Vec<bool>)> =
        seeds.into_iter().map(|g| (fitness(&g), g)).collect();

    for _ in 0..ga.generations {
        population.sort_by(|x, y| x.0.total_cmp(&y.0));
        let elite: Vec<(f64, Vec<bool>)> = population
            .iter()
            .take(ga.elite.min(population.len()))
            .cloned()
            .collect();
        let mut offspring: Vec<Vec<bool>> = Vec::with_capacity(population.len());
        while elite.len() + offspring.len() < population.len() {
            let pick = |rng: &mut StdRng| -> usize {
                let i = rng.gen_range(0..population.len());
                let j = rng.gen_range(0..population.len());
                if population[i].0 <= population[j].0 {
                    i
                } else {
                    j
                }
            };
            let p1 = pick(&mut rng);
            let p2 = pick(&mut rng);
            let mut child: Vec<bool> = if rng.gen_bool(ga.crossover_rate.clamp(0.0, 1.0)) {
                population[p1]
                    .1
                    .iter()
                    .zip(&population[p2].1)
                    .map(|(x, y)| if rng.gen_bool(0.5) { *x } else { *y })
                    .collect()
            } else {
                population[p1.min(p2)].1.clone()
            };
            for gene in child.iter_mut() {
                if rng.gen_bool(ga.mutation_rate.clamp(0.0, 1.0)) {
                    *gene = !*gene;
                }
            }
            offspring.push(child);
        }
        let mut next = elite;
        next.extend(offspring.into_iter().map(|g| (fitness(&g), g)));
        population = next;
    }
    population.sort_by(|x, y| x.0.total_cmp(&y.0));
    let pick = decode(&population[0].1);
    (pick, evals)
}

fn audit() {
    section("Audit: structural, differential and executable correctness oracles");
    let config = mvdesign_verify::AuditConfig::default();
    let mut dirty = 0usize;
    for (name, report) in mvdesign_verify::audit_standard_scenarios(&config) {
        if report.is_clean() {
            println!("{name:<26} clean");
        } else {
            dirty += 1;
            println!("{name:<26} {report}");
        }
    }
    if dirty > 0 {
        eprintln!("audit: {dirty} scenario(s) reported violations");
        std::process::exit(1);
    }
    println!("\nall scenarios clean (MVPP invariants, three-way cost differential,");
    println!("distributed zero-link equality, greedy trace replay, prune tripwire,");
    println!("executable semantics on generated data)");
}
