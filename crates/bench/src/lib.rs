//! Shared fixtures for the benchmarks and the `repro` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;

use mvdesign::algebra::Expr;
use mvdesign::core::{
    evaluate, generate_mvpps, AnnotatedMvpp, CostBreakdown, GenerateConfig, GreedySelection,
    MaintenanceMode, NodeId, UpdateWeighting,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::optimizer::Planner;
use mvdesign::workload::paper_example;

/// Builds the best annotated MVPP for the paper's running example (the one
/// the designer would keep).
pub fn paper_annotated() -> AnnotatedMvpp {
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let candidates = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig::default(),
    );
    let mut best: Option<(f64, AnnotatedMvpp)> = None;
    for mvpp in candidates {
        let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
        let (m, _) = GreedySelection::new().run(&a);
        let total = evaluate(&a, &m, MaintenanceMode::SharedRecompute).total;
        if best.as_ref().is_none_or(|(t, _)| total < *t) {
            best = Some((total, a));
        }
    }
    best.expect("paper workload yields candidates").1
}

/// Finds the MVPP node joining exactly this set of base relations.
pub fn join_node(a: &AnnotatedMvpp, rels: &[&str]) -> Option<NodeId> {
    let want: BTreeSet<_> = rels.iter().map(|r| (*r).into()).collect();
    a.mvpp()
        .nodes()
        .iter()
        .find(|n| matches!(&**n.expr(), Expr::Join { .. }) && n.expr().base_relations() == want)
        .map(|n| n.id())
}

/// One row of the Table-2 comparison: a strategy, the paper's reported
/// numbers (query processing, maintenance, total — in block accesses), and
/// ours.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Human-readable strategy label.
    pub label: String,
    /// The paper's (query processing, maintenance, total), if reported.
    pub paper: Option<(f64, f64, f64)>,
    /// Our evaluated cost.
    pub measured: CostBreakdown,
}

/// Evaluates the five strategies of the paper's Table 2 against an annotated
/// MVPP of the running example.
pub fn table2_rows(a: &AnnotatedMvpp) -> Vec<Table2Row> {
    let mode = MaintenanceMode::SharedRecompute;
    let tmp2 = join_node(a, &["Division", "Product"]);
    let tmp4 = join_node(a, &["Customer", "Order"]);
    let tmp6 = join_node(a, &["Customer", "Division", "Order", "Product"]);
    let set =
        |ids: &[Option<NodeId>]| -> BTreeSet<NodeId> { ids.iter().flatten().copied().collect() };
    let all_queries: BTreeSet<NodeId> = a.mvpp().roots().iter().map(|r| r.2).collect();

    vec![
        Table2Row {
            label: "base relations only (all virtual)".into(),
            paper: Some((95_671_000.0, 0.0, 95_671_000.0)),
            measured: evaluate(a, &BTreeSet::new(), mode),
        },
        Table2Row {
            label: "tmp2, tmp4, tmp6".into(),
            paper: Some((85_237_000.0, 12_583_000.0, 97_820_000.0)),
            measured: evaluate(a, &set(&[tmp2, tmp4, tmp6]), mode),
        },
        Table2Row {
            label: "tmp2, tmp6".into(),
            paper: Some((25_506_000.0, 12_382_000.0, 37_888_000.0)),
            measured: evaluate(a, &set(&[tmp2, tmp6]), mode),
        },
        Table2Row {
            label: "tmp2, tmp4 (the paper's pick)".into(),
            paper: Some((25_512_000.0, 12_065_000.0, 37_577_000.0)),
            measured: evaluate(a, &set(&[tmp2, tmp4]), mode),
        },
        Table2Row {
            label: "Q1, Q2, Q3, Q4 (all query results)".into(),
            paper: Some((7_250.0, 62_653_000.0, 62_660_000.0)),
            measured: evaluate(a, &all_queries, mode),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_five_strategies_and_finds_the_paper_nodes() {
        let a = paper_annotated();
        assert!(join_node(&a, &["Division", "Product"]).is_some());
        assert!(join_node(&a, &["Customer", "Order"]).is_some());
        let rows = table2_rows(&a);
        assert_eq!(rows.len(), 5);
        // The paper's pick is the best of the five measured totals.
        let pick = rows[3].measured.total;
        for row in &rows {
            assert!(
                pick <= row.measured.total + 1e-6,
                "{} beat the pick",
                row.label
            );
        }
    }
}
