//! Shared fixtures for the benchmarks and the `repro` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;

use mvdesign::algebra::Expr;
use mvdesign::core::{
    evaluate, generate_mvpps, AnnotatedMvpp, CostBreakdown, GenerateConfig, GreedySelection,
    MaintenanceMode, NodeId, UpdateWeighting,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::optimizer::Planner;
use mvdesign::workload::paper_example;

/// Builds the best annotated MVPP for the paper's running example (the one
/// the designer would keep).
pub fn paper_annotated() -> AnnotatedMvpp {
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let candidates = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig::default(),
    );
    let mut best: Option<(f64, AnnotatedMvpp)> = None;
    for mvpp in candidates {
        let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
        let (m, _) = GreedySelection::new().run(&a);
        let total = evaluate(&a, &m, MaintenanceMode::SharedRecompute).total;
        if best.as_ref().is_none_or(|(t, _)| total < *t) {
            best = Some((total, a));
        }
    }
    best.expect("paper workload yields candidates").1
}

/// Finds the MVPP node joining exactly this set of base relations.
pub fn join_node(a: &AnnotatedMvpp, rels: &[&str]) -> Option<NodeId> {
    let want: BTreeSet<_> = rels.iter().map(|r| (*r).into()).collect();
    a.mvpp()
        .nodes()
        .iter()
        .find(|n| matches!(&**n.expr(), Expr::Join { .. }) && n.expr().base_relations() == want)
        .map(|n| n.id())
}

/// One row of the Table-2 comparison: a strategy, the paper's reported
/// numbers (query processing, maintenance, total — in block accesses), and
/// ours.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Human-readable strategy label.
    pub label: String,
    /// The paper's (query processing, maintenance, total), if reported.
    pub paper: Option<(f64, f64, f64)>,
    /// Our evaluated cost.
    pub measured: CostBreakdown,
}

/// Evaluates the five strategies of the paper's Table 2 against an annotated
/// MVPP of the running example.
pub fn table2_rows(a: &AnnotatedMvpp) -> Vec<Table2Row> {
    let mode = MaintenanceMode::SharedRecompute;
    let tmp2 = join_node(a, &["Division", "Product"]);
    let tmp4 = join_node(a, &["Customer", "Order"]);
    let tmp6 = join_node(a, &["Customer", "Division", "Order", "Product"]);
    let set =
        |ids: &[Option<NodeId>]| -> BTreeSet<NodeId> { ids.iter().flatten().copied().collect() };
    let all_queries: BTreeSet<NodeId> = a.mvpp().roots().iter().map(|r| r.2).collect();

    vec![
        Table2Row {
            label: "base relations only (all virtual)".into(),
            paper: Some((95_671_000.0, 0.0, 95_671_000.0)),
            measured: evaluate(a, &BTreeSet::new(), mode),
        },
        Table2Row {
            label: "tmp2, tmp4, tmp6".into(),
            paper: Some((85_237_000.0, 12_583_000.0, 97_820_000.0)),
            measured: evaluate(a, &set(&[tmp2, tmp4, tmp6]), mode),
        },
        Table2Row {
            label: "tmp2, tmp6".into(),
            paper: Some((25_506_000.0, 12_382_000.0, 37_888_000.0)),
            measured: evaluate(a, &set(&[tmp2, tmp6]), mode),
        },
        Table2Row {
            label: "tmp2, tmp4 (the paper's pick)".into(),
            paper: Some((25_512_000.0, 12_065_000.0, 37_577_000.0)),
            measured: evaluate(a, &set(&[tmp2, tmp4]), mode),
        },
        Table2Row {
            label: "Q1, Q2, Q3, Q4 (all query results)".into(),
            paper: Some((7_250.0, 62_653_000.0, 62_660_000.0)),
            measured: evaluate(a, &all_queries, mode),
        },
    ]
}

/// The machine's logical core count as reported by the OS, recorded in every
/// `BENCH_*.json` artifact so readers can judge the parallel numbers.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The machine's physical memory in bytes (from `/proc/meminfo`'s
/// `MemTotal`), recorded next to [`host_cores`] in every `BENCH_*.json`
/// artifact so readers can judge the out-of-core numbers. `0` when the
/// platform does not expose it.
pub fn host_mem_bytes() -> u64 {
    let Ok(meminfo) = std::fs::read_to_string("/proc/meminfo") else {
        return 0;
    };
    meminfo
        .lines()
        .find_map(|line| {
            let rest = line.strip_prefix("MemTotal:")?;
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            Some(kb * 1024)
        })
        .unwrap_or(0)
}

/// Pulls the serialized run objects back out of a `BENCH_*.json` artifact
/// written by [`render_bench_file`] (no JSON parser in-tree; the format is
/// our own, brace-balanced and two-space indented).
pub fn extract_runs(old: &str) -> Vec<String> {
    let Some(start) = old.find("\"runs\": [") else {
        return Vec::new();
    };
    let mut runs = Vec::new();
    let mut depth = 0i64;
    let mut current = String::new();
    for line in old[start..].lines().skip(1) {
        if depth == 0 && line.trim_start().starts_with(']') {
            break;
        }
        depth += line.matches(['{', '[']).count() as i64;
        depth -= line.matches(['}', ']']).count() as i64;
        if depth == 0 {
            // End of one run object: drop only the inter-run separator.
            current.push_str(line.trim_end_matches(','));
            runs.push(std::mem::take(&mut current));
        } else {
            current.push_str(line);
            current.push('\n');
        }
    }
    runs
}

/// The value of a serialized run's `"rev"` field.
pub fn run_label(run: &str) -> Option<&str> {
    let rest = &run[run.find("\"rev\": \"")? + 8..];
    rest.split('"').next()
}

/// Replaces the run labelled exactly `label`, or appends when absent —
/// re-running a label updates its entry instead of growing the artifact
/// unboundedly.
pub fn upsert_run(mut runs: Vec<String>, label: &str, run: String) -> Vec<String> {
    runs.retain(|r| run_label(r) != Some(label));
    runs.push(run);
    runs
}

/// Existing run labels a new run labelled `label` would *shadow*: same run
/// name (the part after the first `-`) under a different `rev` prefix.
///
/// BENCH labels are persistent artifact keys (`repro perf-* <label>`), and
/// prefixes conventionally track PR numbers — but the two can drift (the
/// paged-storage run is labelled `pr7-paged` although its entry became
/// PR 8; see EXPERIMENTS.md). Re-using a run name under a new prefix does
/// not *replace* the old entry — it silently forks the trajectory. The
/// `repro perf-*` writers warn (never fail) on this so the drift is a
/// conscious choice.
pub fn shadowed_labels(runs: &[String], label: &str) -> Vec<String> {
    let Some((prefix, stem)) = label.split_once('-') else {
        return Vec::new();
    };
    runs.iter()
        .filter_map(|r| run_label(r))
        .filter(|l| {
            l.split_once('-')
                .is_some_and(|(p, s)| s == stem && p != prefix)
        })
        .map(str::to_string)
        .collect()
}

/// The runs already recorded in the artifact at `path` (empty when the file
/// does not exist yet).
pub fn load_runs(path: &str) -> Vec<String> {
    std::fs::read_to_string(path)
        .ok()
        .map(|old| extract_runs(&old))
        .unwrap_or_default()
}

/// Renders a complete `BENCH_*.json` artifact around the given runs.
pub fn render_bench_file(host_cores: usize, host_mem_bytes: u64, runs: &[String]) -> String {
    format!(
        "{{\n  \"host_cores\": {host_cores},\n  \"host_mem_bytes\": {host_mem_bytes},\n  \"runs\": [\n{}\n  ]\n}}\n",
        runs.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_object(label: &str, body: &str) -> String {
        format!(
            "    {{\n      \"rev\": \"{label}\",\n      \"results\": [\n{body}\n      ]\n    }}"
        )
    }

    #[test]
    fn bench_runs_round_trip_through_the_rendered_file() {
        let a = run_object("before", "        {\"x\": 1}");
        let b = run_object("after", "        {\"x\": 2}");
        let file = render_bench_file(8, 16 * 1024 * 1024 * 1024, &[a.clone(), b.clone()]);
        assert!(file.contains("\"host_mem_bytes\": 17179869184"));
        assert_eq!(extract_runs(&file), vec![a, b]);
    }

    #[test]
    fn host_mem_bytes_reads_proc_meminfo() {
        // On Linux (where CI runs) MemTotal is always present; elsewhere the
        // probe degrades to 0 rather than failing.
        let mem = host_mem_bytes();
        if std::path::Path::new("/proc/meminfo").exists() {
            assert!(mem > 0, "MemTotal should parse on Linux");
        }
    }

    #[test]
    fn upsert_replaces_only_the_exact_label() {
        let runs = vec![
            run_object("pr3", "        {\"x\": 1}"),
            run_object("pr3-arena", "        {\"x\": 2}"),
        ];
        // Re-running "pr3" must replace its entry without touching the run
        // whose label merely starts with the same prefix.
        let updated = upsert_run(runs, "pr3", run_object("pr3", "        {\"x\": 9}"));
        assert_eq!(updated.len(), 2);
        assert_eq!(run_label(&updated[0]), Some("pr3-arena"));
        assert_eq!(run_label(&updated[1]), Some("pr3"));
        assert!(updated[1].contains("\"x\": 9"));
        // Repeating the upsert leaves the count stable — no unbounded growth.
        let again = upsert_run(updated, "pr3", run_object("pr3", "        {\"x\": 10}"));
        assert_eq!(again.len(), 2);
    }

    #[test]
    fn upsert_appends_new_labels() {
        let runs = upsert_run(Vec::new(), "first", run_object("first", "        {}"));
        let runs = upsert_run(runs, "second", run_object("second", "        {}"));
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn shadowed_labels_flags_same_stem_under_a_different_prefix() {
        let runs = vec![
            run_object("pr7-paged", "        {\"x\": 1}"),
            run_object("pr6-morsel", "        {\"x\": 2}"),
        ];
        // The label drift trap: writing "pr8-paged" while "pr7-paged"
        // exists forks the paged trajectory.
        assert_eq!(shadowed_labels(&runs, "pr8-paged"), vec!["pr7-paged"]);
        // Re-running the exact same label replaces, never shadows.
        assert!(shadowed_labels(&runs, "pr7-paged").is_empty());
        // Different run names don't collide, nor do prefix-less labels.
        assert!(shadowed_labels(&runs, "pr8-serve").is_empty());
        assert!(shadowed_labels(&runs, "baseline").is_empty());
    }

    #[test]
    fn extract_from_garbage_is_empty() {
        assert!(extract_runs("not json at all").is_empty());
        assert!(extract_runs("{\"runs\": [\n  ]\n}").is_empty());
        assert_eq!(run_label("    {\"results\": []}"), None);
    }

    #[test]
    fn table2_has_five_strategies_and_finds_the_paper_nodes() {
        let a = paper_annotated();
        assert!(join_node(&a, &["Division", "Product"]).is_some());
        assert!(join_node(&a, &["Customer", "Order"]).is_some());
        let rows = table2_rows(&a);
        assert_eq!(rows.len(), 5);
        // The paper's pick is the best of the five measured totals.
        let pick = rows[3].measured.total;
        for row in &rows {
            assert!(
                pick <= row.measured.total + 1e-6,
                "{} beat the pick",
                row.label
            );
        }
    }
}
