//! Ablation bench: how the choice of physical cost model and estimation
//! mode affects the cost (and the time) of producing a design.

use criterion::{criterion_group, criterion_main, Criterion};
use mvdesign::core::{
    evaluate, generate_mvpps, AnnotatedMvpp, GenerateConfig, GreedySelection, MaintenanceMode,
    UpdateWeighting,
};
use mvdesign::cost::{
    CostEstimator, CostModel, EstimationMode, NestedLoopCostModel, PaperCostModel,
    SortMergeCostModel,
};
use mvdesign::optimizer::Planner;
use mvdesign::workload::{paper_example, Scenario};

fn design_total<M: CostModel>(scenario: &Scenario, mode: EstimationMode, model: M) -> f64 {
    let est = CostEstimator::new(&scenario.catalog, mode, model);
    let mvpp = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )
    .remove(0);
    let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
    let (m, _) = GreedySelection::new().run(&a);
    evaluate(&a, &m, MaintenanceMode::SharedRecompute).total
}

fn bench_ablation(c: &mut Criterion) {
    let scenario = paper_example();
    let mut group = c.benchmark_group("ablation");
    group.bench_function("paper_model/calibrated", |b| {
        b.iter(|| {
            std::hint::black_box(design_total(
                &scenario,
                EstimationMode::Calibrated,
                PaperCostModel::default(),
            ))
        })
    });
    group.bench_function("paper_model/analytic", |b| {
        b.iter(|| {
            std::hint::black_box(design_total(
                &scenario,
                EstimationMode::Analytic,
                PaperCostModel::default(),
            ))
        })
    });
    group.bench_function("buffered_nested_loop/calibrated", |b| {
        b.iter(|| {
            std::hint::black_box(design_total(
                &scenario,
                EstimationMode::Calibrated,
                NestedLoopCostModel::default(),
            ))
        })
    });
    group.bench_function("sort_merge/calibrated", |b| {
        b.iter(|| {
            std::hint::black_box(design_total(
                &scenario,
                EstimationMode::Calibrated,
                SortMergeCostModel,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
