//! How MVPP generation (Figure 4) scales with workload size: one candidate
//! set per query count, over synthetic star-schema workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvdesign::core::{generate_mvpps, GenerateConfig};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::optimizer::Planner;
use mvdesign::workload::{StarSchema, StarSchemaConfig};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvpp_generation");
    for queries in [2usize, 4, 8, 16] {
        let scenario = StarSchema::with_config(StarSchemaConfig {
            queries,
            dimensions: 5,
            ..StarSchemaConfig::default()
        })
        .scenario();
        let est = CostEstimator::new(
            &scenario.catalog,
            EstimationMode::Analytic,
            PaperCostModel::default(),
        );
        let planner = Planner::new();

        group.bench_with_input(
            BenchmarkId::new("all_rotations", queries),
            &queries,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        generate_mvpps(
                            &scenario.workload,
                            &est,
                            &planner,
                            GenerateConfig::default(),
                        )
                        .len(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("single_merge", queries),
            &queries,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        generate_mvpps(
                            &scenario.workload,
                            &est,
                            &planner,
                            GenerateConfig { max_rotations: 1 },
                        )
                        .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
