//! Substrate benchmarks: the execution engine's operators, the SQL parser
//! and the single-query planner.

use criterion::{criterion_group, criterion_main, Criterion};
use mvdesign::algebra::parse_query_with;
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::engine::{execute, measure, Generator, GeneratorConfig};
use mvdesign::optimizer::Planner;
use mvdesign::workload::paper_example;

fn bench_engine(c: &mut Criterion) {
    let scenario = paper_example();
    let db = Generator::with_config(GeneratorConfig {
        seed: 1,
        scale: 0.004,
        max_rows: 400,
    })
    .database(&scenario.catalog);
    let q1 = scenario.workload.query("Q1").expect("Q1").root().clone();
    let q3 = scenario.workload.query("Q3").expect("Q3").root().clone();

    let mut group = c.benchmark_group("engine");
    group.bench_function("execute/Q1_two_way_join", |b| {
        b.iter(|| std::hint::black_box(execute(&q1, &db).expect("executes").len()))
    });
    group.bench_function("execute/Q3_four_way_join", |b| {
        b.iter(|| std::hint::black_box(execute(&q3, &db).expect("executes").len()))
    });
    group.bench_function("measure/Q1_with_io_accounting", |b| {
        b.iter(|| std::hint::black_box(measure(&q1, &db, 10.0).expect("measures").1.total()))
    });
    group.finish();
}

fn bench_planner(c: &mut Criterion) {
    let scenario = paper_example();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let planner = Planner::new();
    let q3 = scenario.workload.query("Q3").expect("Q3").root().clone();

    let mut group = c.benchmark_group("optimizer");
    group.bench_function("parse/Q3", |b| {
        b.iter(|| {
            std::hint::black_box(
                parse_query_with(
                    "SELECT Customer.name, Product.name, quantity \
                     FROM Product, Division, Order, Customer \
                     WHERE Division.city = 'LA' AND Product.Did = Division.Did \
                     AND Product.Pid = Order.Pid AND Order.Cid = Customer.Cid \
                     AND date > 7/1/96",
                    &scenario.catalog,
                )
                .expect("parses"),
            )
        })
    });
    group.bench_function("optimize/Q3_four_relations", |b| {
        b.iter(|| std::hint::black_box(planner.optimize(&q3, &est)))
    });
    group.finish();
}

criterion_group!(benches, bench_engine, bench_planner);
criterion_main!(benches);
