//! Morsel-driven parallel engine benchmarks: the hot kernels under an
//! [`ExecContext`](mvdesign::engine::ExecContext) at several thread counts,
//! against the single-threaded kernels on the same data.
//!
//! The published scaling numbers live in `BENCH_engine.json` (the
//! `repro perf-engine` morsel section, 1M rows); this harness tracks the
//! same kernels at criterion-friendly sizes for regression detection. Every
//! parallel configuration is asserted bit-identical to the single-threaded
//! result before the timed loop, so a scheduling regression that breaks the
//! deterministic merge fails the bench instead of skewing it.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use mvdesign::algebra::{AggExpr, AggFunc, AttrRef, CompareOp, Expr, JoinCondition, Predicate};
use mvdesign::engine::{
    execute_with, execute_with_context, Batch, Column, Database, ExecContext, JoinAlgo, Table,
};

const FACT_ROWS: usize = 200_000;
const DIM_ROWS: usize = 5_000;
const MORSEL_ROWS: usize = 4_096;

/// A fact/dimension pair built straight from typed columns (generation at
/// this size would dominate setup): 200k fact rows whose key scatters over
/// the 5k-row dimension, with a 100-value grouping/selection attribute.
fn parallel_db() -> Database {
    let mut db = Database::new();
    db.insert_table(Table::from_batch(
        "PFact",
        Batch::new(
            vec![
                AttrRef::new("PFact", "id"),
                AttrRef::new("PFact", "k"),
                AttrRef::new("PFact", "m"),
            ],
            vec![
                Arc::new(Column::Int((0..FACT_ROWS as i64).collect())),
                Arc::new(Column::Int(
                    (0..FACT_ROWS as i64)
                        .map(|i| i.wrapping_mul(2_654_435_761) % DIM_ROWS as i64)
                        .collect(),
                )),
                Arc::new(Column::Int(
                    (0..FACT_ROWS as i64).map(|i| i % 100).collect(),
                )),
            ],
        ),
    ));
    db.insert_table(Table::from_batch(
        "PDim",
        Batch::new(
            vec![AttrRef::new("PDim", "did")],
            vec![Arc::new(Column::Int((0..DIM_ROWS as i64).collect()))],
        ),
    ));
    db
}

fn bench_parallel_kernels(c: &mut Criterion) {
    let db = parallel_db();
    let scan = Expr::select(
        Expr::base("PFact"),
        Predicate::cmp(AttrRef::new("PFact", "m"), CompareOp::Lt, 50),
    );
    let join = Expr::join(
        Expr::base("PFact"),
        Expr::base("PDim"),
        JoinCondition::on(AttrRef::new("PFact", "k"), AttrRef::new("PDim", "did")),
    );
    let aggregate = Expr::aggregate(
        Expr::base("PFact"),
        [AttrRef::new("PFact", "m")],
        [
            AggExpr::new(AggFunc::Sum, AttrRef::new("PFact", "id"), "total"),
            AggExpr::count_star("n"),
        ],
    );

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut thread_counts = vec![1usize, 2, cores];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut group = c.benchmark_group("engine_parallel");
    for (name, expr, algo) in [
        ("scan_filter", &scan, JoinAlgo::NestedLoop),
        ("join_hash", &join, JoinAlgo::Hash),
        ("hash_aggregate", &aggregate, JoinAlgo::NestedLoop),
    ] {
        let baseline = execute_with(expr, &db, algo).expect("executes");
        for &threads in &thread_counts {
            let ctx = ExecContext {
                threads,
                morsel_rows: MORSEL_ROWS,
                mem_budget: None,
            };
            let out = execute_with_context(expr, &db, algo, &ctx).expect("executes");
            assert_eq!(
                baseline.batch(),
                out.batch(),
                "{name}: morsel result differs at {threads} thread(s)"
            );
            group.bench_function(format!("{name}/threads_{threads}"), |b| {
                b.iter(|| {
                    std::hint::black_box(
                        execute_with_context(expr, &db, algo, &ctx)
                            .expect("executes")
                            .len(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_kernels);
criterion_main!(benches);
