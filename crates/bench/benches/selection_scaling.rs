//! View-selection algorithm scaling: the paper's greedy vs the exact
//! optimum vs randomized search, as the MVPP grows.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvdesign::core::{
    evaluate, generate_mvpps, AnnotatedMvpp, ExhaustiveSelection, GenerateConfig, GeneticSelection,
    GreedySelection, IncrementalEvaluator, MaintenanceMode, RandomSearch, SelectionAlgorithm,
    SimulatedAnnealing, UpdateWeighting,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::optimizer::Planner;
use mvdesign::workload::{StarSchema, StarSchemaConfig};

fn annotated_for(queries: usize) -> (mvdesign::catalog::Catalog, AnnotatedMvpp) {
    let scenario = StarSchema::with_config(StarSchemaConfig {
        queries,
        dimensions: 5,
        ..StarSchemaConfig::default()
    })
    .scenario();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Analytic,
        PaperCostModel::default(),
    );
    let mvpp = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )
    .remove(0);
    let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
    (scenario.catalog.clone(), a)
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    for queries in [4usize, 8, 12] {
        let (_catalog, a) = annotated_for(queries);
        let interior = a.mvpp().interior().len();

        group.bench_with_input(
            BenchmarkId::new(format!("greedy_n{interior}"), queries),
            &queries,
            |b, _| b.iter(|| std::hint::black_box(GreedySelection::new().run(&a).0.len())),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("annealing_n{interior}"), queries),
            &queries,
            |b, _| {
                let sa = SimulatedAnnealing {
                    iterations: 300,
                    ..SimulatedAnnealing::default()
                };
                b.iter(|| {
                    std::hint::black_box(sa.select(&a, MaintenanceMode::SharedRecompute).len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("random_n{interior}"), queries),
            &queries,
            |b, _| {
                let rs = RandomSearch {
                    iterations: 100,
                    ..RandomSearch::default()
                };
                b.iter(|| {
                    std::hint::black_box(rs.select(&a, MaintenanceMode::SharedRecompute).len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("genetic_n{interior}"), queries),
            &queries,
            |b, _| {
                let ga = GeneticSelection {
                    population: 16,
                    generations: 20,
                    ..GeneticSelection::default()
                };
                b.iter(|| {
                    std::hint::black_box(ga.select(&a, MaintenanceMode::SharedRecompute).len())
                })
            },
        );
        // Exhaustive only on the truncated candidate set — still exponential.
        group.bench_with_input(
            BenchmarkId::new(format!("exhaustive12_n{interior}"), queries),
            &queries,
            |b, _| {
                let ex = ExhaustiveSelection {
                    max_nodes: 12,
                    ..ExhaustiveSelection::default()
                };
                b.iter(|| {
                    std::hint::black_box(ex.select(&a, MaintenanceMode::SharedRecompute).len())
                })
            },
        );
    }
    group.finish();
}

/// Memoized incremental re-costing vs a full `evaluate` per frontier, over
/// the same deterministic flip sequence — the core win of the incremental
/// evaluator, independent of any particular search algorithm.
fn bench_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluation");
    for queries in [8usize, 16, 32] {
        let (_catalog, a) = annotated_for(queries);
        let interior = a.mvpp().interior();
        let flips: Vec<_> = (0..256u64)
            .map(|i| interior[(i.wrapping_mul(2654435761) % interior.len() as u64) as usize])
            .collect();
        let mode = MaintenanceMode::SharedRecompute;

        group.bench_with_input(
            BenchmarkId::new(format!("naive_full_n{}", interior.len()), queries),
            &queries,
            |b, _| {
                b.iter(|| {
                    let mut frontier = BTreeSet::new();
                    let mut acc = 0.0;
                    for v in &flips {
                        if !frontier.remove(v) {
                            frontier.insert(*v);
                        }
                        acc += evaluate(&a, &frontier, mode).total;
                    }
                    std::hint::black_box(acc)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("memoized_n{}", interior.len()), queries),
            &queries,
            |b, _| {
                b.iter(|| {
                    let mut eval = IncrementalEvaluator::new(&a, mode);
                    let mut acc = 0.0;
                    for v in &flips {
                        acc += eval.flip(*v);
                    }
                    std::hint::black_box(acc)
                })
            },
        );
    }
    group.finish();
}

/// Sequential vs all-cores fan-out for the two parallelised algorithms. On a
/// multi-core host the `par` rows should approach `cores`× the `seq` rows;
/// the selected sets are identical by construction (see the
/// `incremental_eval` thread-invariance tests).
fn bench_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_vs_par");
    group.sample_size(10);
    let (_catalog, a) = annotated_for(12);
    let interior = a.mvpp().interior().len();
    let mode = MaintenanceMode::SharedRecompute;
    for (label, parallelism) in [("seq", 1usize), ("par", 0)] {
        group.bench_with_input(
            BenchmarkId::new(format!("exhaustive16_{label}_n{interior}"), parallelism),
            &parallelism,
            |b, &p| {
                let ex = ExhaustiveSelection {
                    max_nodes: 16,
                    parallelism: p,
                };
                b.iter(|| std::hint::black_box(ex.select(&a, mode).len()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("genetic_{label}_n{interior}"), parallelism),
            &parallelism,
            |b, &p| {
                let ga = GeneticSelection {
                    population: 16,
                    generations: 20,
                    parallelism: p,
                    ..GeneticSelection::default()
                };
                b.iter(|| std::hint::black_box(ga.select(&a, mode).len()))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_selection,
    bench_evaluation,
    bench_parallelism
);
criterion_main!(benches);
