//! View-selection algorithm scaling: the paper's greedy vs the exact
//! optimum vs randomized search, as the MVPP grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvdesign::core::{
    generate_mvpps, AnnotatedMvpp, ExhaustiveSelection, GenerateConfig, GeneticSelection,
    GreedySelection, MaintenanceMode, RandomSearch, SelectionAlgorithm, SimulatedAnnealing,
    UpdateWeighting,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::optimizer::Planner;
use mvdesign::workload::{StarSchema, StarSchemaConfig};

fn annotated_for(queries: usize) -> (mvdesign::catalog::Catalog, AnnotatedMvpp) {
    let scenario = StarSchema::with_config(StarSchemaConfig {
        queries,
        dimensions: 5,
        ..StarSchemaConfig::default()
    })
    .scenario();
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Analytic,
        PaperCostModel::default(),
    );
    let mvpp = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig { max_rotations: 1 },
    )
    .remove(0);
    let a = AnnotatedMvpp::annotate(mvpp, &est, UpdateWeighting::Max);
    (scenario.catalog.clone(), a)
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    for queries in [4usize, 8, 12] {
        let (_catalog, a) = annotated_for(queries);
        let interior = a.mvpp().interior().len();

        group.bench_with_input(
            BenchmarkId::new(format!("greedy_n{interior}"), queries),
            &queries,
            |b, _| b.iter(|| std::hint::black_box(GreedySelection::new().run(&a).0.len())),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("annealing_n{interior}"), queries),
            &queries,
            |b, _| {
                let sa = SimulatedAnnealing {
                    iterations: 300,
                    ..SimulatedAnnealing::default()
                };
                b.iter(|| {
                    std::hint::black_box(sa.select(&a, MaintenanceMode::SharedRecompute).len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("random_n{interior}"), queries),
            &queries,
            |b, _| {
                let rs = RandomSearch {
                    iterations: 100,
                    ..RandomSearch::default()
                };
                b.iter(|| {
                    std::hint::black_box(rs.select(&a, MaintenanceMode::SharedRecompute).len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("genetic_n{interior}"), queries),
            &queries,
            |b, _| {
                let ga = GeneticSelection {
                    population: 16,
                    generations: 20,
                    ..GeneticSelection::default()
                };
                b.iter(|| {
                    std::hint::black_box(ga.select(&a, MaintenanceMode::SharedRecompute).len())
                })
            },
        );
        // Exhaustive only on the truncated candidate set — still exponential.
        group.bench_with_input(
            BenchmarkId::new(format!("exhaustive12_n{interior}"), queries),
            &queries,
            |b, _| {
                let ex = ExhaustiveSelection { max_nodes: 12 };
                b.iter(|| {
                    std::hint::black_box(ex.select(&a, MaintenanceMode::SharedRecompute).len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
