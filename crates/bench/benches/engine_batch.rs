//! Engine throughput benchmarks: the columnar batch kernels against the
//! preserved tuple-at-a-time reference on star-schema data.
//!
//! The per-kernel before/after numbers published in `BENCH_engine.json` come
//! from `repro perf-engine`; this harness tracks the same kernels under
//! criterion for regression detection.

use criterion::{criterion_group, criterion_main, Criterion};
use mvdesign::algebra::{AggExpr, AggFunc, AttrRef, CompareOp, Expr, JoinCondition, Predicate};
use mvdesign::engine::{
    execute_with, row_reference, Database, Generator, GeneratorConfig, JoinAlgo,
};
use mvdesign::workload::{StarSchema, StarSchemaConfig};

fn star_db() -> Database {
    let scenario = StarSchema::with_config(StarSchemaConfig {
        dimensions: 4,
        queries: 4,
        ..StarSchemaConfig::default()
    })
    .scenario();
    Generator::with_config(GeneratorConfig {
        seed: 0xBA7C4,
        scale: 0.02,
        max_rows: 2_000,
    })
    .database(&scenario.catalog)
}

fn bench_batch_kernels(c: &mut Criterion) {
    let db = star_db();
    let scan = Expr::select(
        Expr::base("Fact"),
        Predicate::cmp(AttrRef::new("Fact", "measure"), CompareOp::Gt, 50),
    );
    let join = Expr::join(
        Expr::base("Fact"),
        Expr::base("Dim0"),
        JoinCondition::on(AttrRef::new("Fact", "d0"), AttrRef::new("Dim0", "id")),
    );
    let aggregate = Expr::aggregate(
        Expr::base("Fact"),
        [AttrRef::new("Fact", "d1")],
        [
            AggExpr::new(AggFunc::Sum, AttrRef::new("Fact", "measure"), "total"),
            AggExpr::count_star("n"),
        ],
    );

    let mut group = c.benchmark_group("engine_batch");
    for (name, expr, algo) in [
        ("scan_filter", &scan, JoinAlgo::NestedLoop),
        ("join_nested_loop", &join, JoinAlgo::NestedLoop),
        ("join_hash", &join, JoinAlgo::Hash),
        ("join_sort_merge", &join, JoinAlgo::SortMerge),
        ("hash_aggregate", &aggregate, JoinAlgo::NestedLoop),
    ] {
        group.bench_function(format!("batch/{name}"), |b| {
            b.iter(|| std::hint::black_box(execute_with(expr, &db, algo).expect("executes").len()))
        });
        group.bench_function(format!("row_reference/{name}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    row_reference::execute_with(expr, &db, algo)
                        .expect("executes")
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_kernels);
criterion_main!(benches);
