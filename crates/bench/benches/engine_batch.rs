//! Engine throughput benchmarks: the columnar batch kernels against the
//! preserved tuple-at-a-time reference on star-schema data.
//!
//! The per-kernel before/after numbers published in `BENCH_engine.json` come
//! from `repro perf-engine`; this harness tracks the same kernels under
//! criterion for regression detection.

use criterion::{criterion_group, criterion_main, Criterion};
use mvdesign::algebra::{AggExpr, AggFunc, AttrRef, CompareOp, Expr, JoinCondition, Predicate};
use mvdesign::catalog::{AttrType, Catalog};
use mvdesign::engine::{
    execute_with, row_reference, selection_mask, selection_mask_full, Database, Generator,
    GeneratorConfig, JoinAlgo,
};
use mvdesign::workload::{StarSchema, StarSchemaConfig};

fn star_db() -> Database {
    let scenario = StarSchema::with_config(StarSchemaConfig {
        dimensions: 4,
        queries: 4,
        ..StarSchemaConfig::default()
    })
    .scenario();
    Generator::with_config(GeneratorConfig {
        seed: 0xBA7C4,
        scale: 0.02,
        max_rows: 2_000,
    })
    .database(&scenario.catalog)
}

/// A fact/dimension pair whose join key exists both as an int and as
/// dictionary-encoded text over the same 200-value domain (mirrors the
/// `repro perf-engine` dict catalog at criterion-friendly sizes).
fn dict_db() -> Database {
    let mut c = Catalog::new();
    c.relation("TFact")
        .attr("fid", AttrType::Int)
        .attr("skuid", AttrType::Int)
        .attr("sku", AttrType::Text)
        .attr("tier", AttrType::Text)
        .attr("grade", AttrType::Text)
        .attr("flag", AttrType::Int)
        .attr("qty", AttrType::Int)
        .records(100_000.0)
        .blocks(10_000.0)
        .selectivity("tier", 0.25)
        .selectivity("grade", 0.2)
        .selectivity("flag", 0.5)
        .finish()
        .expect("TFact");
    c.relation("TDim")
        .attr("did", AttrType::Int)
        .attr("sku", AttrType::Text)
        .records(10_000.0)
        .blocks(1_000.0)
        .finish()
        .expect("TDim");
    c.set_join_selectivity(
        AttrRef::new("TFact", "skuid"),
        AttrRef::new("TDim", "did"),
        1e-4,
    )
    .expect("int join key");
    c.set_join_selectivity(
        AttrRef::new("TFact", "sku"),
        AttrRef::new("TDim", "sku"),
        1e-4,
    )
    .expect("text join key");
    Generator::with_config(GeneratorConfig {
        seed: 0xD1C7,
        scale: 0.02,
        max_rows: 2_000,
    })
    .database(&c)
}

fn bench_batch_kernels(c: &mut Criterion) {
    let db = star_db();
    let scan = Expr::select(
        Expr::base("Fact"),
        Predicate::cmp(AttrRef::new("Fact", "measure"), CompareOp::Gt, 50),
    );
    let join = Expr::join(
        Expr::base("Fact"),
        Expr::base("Dim0"),
        JoinCondition::on(AttrRef::new("Fact", "d0"), AttrRef::new("Dim0", "id")),
    );
    let aggregate = Expr::aggregate(
        Expr::base("Fact"),
        [AttrRef::new("Fact", "d1")],
        [
            AggExpr::new(AggFunc::Sum, AttrRef::new("Fact", "measure"), "total"),
            AggExpr::count_star("n"),
        ],
    );

    let mut group = c.benchmark_group("engine_batch");
    for (name, expr, algo) in [
        ("scan_filter", &scan, JoinAlgo::NestedLoop),
        ("join_nested_loop", &join, JoinAlgo::NestedLoop),
        ("join_hash", &join, JoinAlgo::Hash),
        ("join_sort_merge", &join, JoinAlgo::SortMerge),
        ("hash_aggregate", &aggregate, JoinAlgo::NestedLoop),
    ] {
        group.bench_function(format!("batch/{name}"), |b| {
            b.iter(|| std::hint::black_box(execute_with(expr, &db, algo).expect("executes").len()))
        });
        group.bench_function(format!("row_reference/{name}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    row_reference::execute_with(expr, &db, algo)
                        .expect("executes")
                        .len(),
                )
            })
        });
    }
    group.finish();
}

fn bench_dict_kernels(c: &mut Criterion) {
    let db = dict_db();
    let join_int = Expr::join(
        Expr::base("TFact"),
        Expr::base("TDim"),
        JoinCondition::on(AttrRef::new("TFact", "skuid"), AttrRef::new("TDim", "did")),
    );
    let join_text = Expr::join(
        Expr::base("TFact"),
        Expr::base("TDim"),
        JoinCondition::on(AttrRef::new("TFact", "sku"), AttrRef::new("TDim", "sku")),
    );
    let aggregate_text = Expr::aggregate(
        Expr::base("TFact"),
        [AttrRef::new("TFact", "tier")],
        [
            AggExpr::new(AggFunc::Sum, AttrRef::new("TFact", "qty"), "total"),
            AggExpr::count_star("n"),
        ],
    );
    let selective = Predicate::and([
        Predicate::cmp(AttrRef::new("TFact", "sku"), CompareOp::Eq, "v7"),
        Predicate::cmp(AttrRef::new("TFact", "qty"), CompareOp::Gt, 500),
        Predicate::cmp(AttrRef::new("TFact", "tier"), CompareOp::Ne, "v3"),
        Predicate::cmp(AttrRef::new("TFact", "grade"), CompareOp::Ne, "v4"),
        Predicate::cmp(AttrRef::new("TFact", "flag"), CompareOp::Eq, 1),
    ]);

    let mut group = c.benchmark_group("engine_dict");
    for (name, expr, algo) in [
        ("join_hash_int_key", &join_int, JoinAlgo::Hash),
        ("join_hash_text", &join_text, JoinAlgo::Hash),
        ("hash_aggregate_dict", &aggregate_text, JoinAlgo::NestedLoop),
    ] {
        group.bench_function(format!("batch/{name}"), |b| {
            b.iter(|| std::hint::black_box(execute_with(expr, &db, algo).expect("executes").len()))
        });
        group.bench_function(format!("row_reference/{name}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    row_reference::execute_with(expr, &db, algo)
                        .expect("executes")
                        .len(),
                )
            })
        });
    }
    // The selection-vector ablation: adaptive survivor-index evaluation vs
    // the full-width kernels on the same selective conjunction.
    let tfact = db.table("TFact").expect("tfact").batch();
    group.bench_function("mask/selection_vector", |b| {
        b.iter(|| {
            let mask = selection_mask(&selective, tfact).expect("mask");
            std::hint::black_box(tfact.filter(&mask).rows())
        })
    });
    group.bench_function("mask/full_width", |b| {
        b.iter(|| {
            let mask = selection_mask_full(&selective, tfact).expect("mask");
            std::hint::black_box(tfact.filter(&mask).rows())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_batch_kernels, bench_dict_kernels);
criterion_main!(benches);
