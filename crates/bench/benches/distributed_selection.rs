//! Distributed-extension benchmarks: shipping-aware evaluation and the
//! marginal-benefit selection loop on the paper example across link costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvdesign::core::MaintenanceMode;
use mvdesign::distributed::{
    DistributedEvaluator, FilterShipping, MarginalGreedy, Placement, Topology,
};
use mvdesign_bench::paper_annotated;
use std::collections::BTreeSet;

fn setup(link_cost: f64) -> (Topology, Placement) {
    let topo = Topology::uniform(3, link_cost);
    let wh = topo.site(0).expect("site 0");
    let sales = topo.site(1).expect("site 1");
    let mfg = topo.site(2).expect("site 2");
    let mut placement = Placement::new(wh);
    placement.assign("Order", sales);
    placement.assign("Customer", sales);
    placement.assign("Product", mfg);
    placement.assign("Division", mfg);
    placement.assign("Part", mfg);
    (topo, placement)
}

fn bench_distributed(c: &mut Criterion) {
    let a = paper_annotated();
    let mut group = c.benchmark_group("distributed");
    for link_cost in [0.0, 3.0, 30.0] {
        let (topo, placement) = setup(link_cost);
        let eval = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtSource);
        group.bench_with_input(
            BenchmarkId::new("evaluate_empty", link_cost as i64),
            &link_cost,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        eval.evaluate(&BTreeSet::new(), MaintenanceMode::SharedRecompute)
                            .total,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("marginal_greedy", link_cost as i64),
            &link_cost,
            |b, _| b.iter(|| std::hint::black_box(MarginalGreedy::default().run(&eval).0.len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_distributed);
criterion_main!(benches);
