//! Benchmarks the Table-2 machinery: evaluating each of the paper's five
//! materialization strategies, running the Figure-9 greedy, and the full
//! end-to-end design loop on the running example.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mvdesign::core::{evaluate, GreedySelection, MaintenanceMode, NodeId};
use mvdesign::prelude::Designer;
use mvdesign::workload::paper_example;
use mvdesign_bench::{join_node, paper_annotated, table2_rows};

fn bench_table2(c: &mut Criterion) {
    let a = paper_annotated();
    let mut group = c.benchmark_group("table2");

    // Evaluate each paper strategy (this is what every cell of Table 2
    // costs to regenerate).
    let tmp2 = join_node(&a, &["Division", "Product"]).expect("P⋈D");
    let tmp4 = join_node(&a, &["Customer", "Order"]).expect("O⋈C");
    let strategies: Vec<(&str, BTreeSet<NodeId>)> = vec![
        ("evaluate/all-virtual", BTreeSet::new()),
        ("evaluate/tmp2-tmp4", [tmp2, tmp4].into()),
        (
            "evaluate/all-queries",
            a.mvpp().roots().iter().map(|r| r.2).collect(),
        ),
    ];
    for (name, m) in &strategies {
        group.bench_function(*name, |b| {
            b.iter(|| std::hint::black_box(evaluate(&a, m, MaintenanceMode::SharedRecompute).total))
        });
    }

    group.bench_function("all-five-rows", |b| {
        b.iter(|| std::hint::black_box(table2_rows(&a).len()))
    });

    group.bench_function("greedy-selection", |b| {
        b.iter(|| std::hint::black_box(GreedySelection::new().run(&a).0.len()))
    });

    group.bench_function("designer-end-to-end", |b| {
        let scenario = paper_example();
        b.iter_batched(
            || scenario.clone(),
            |s| {
                std::hint::black_box(
                    Designer::new()
                        .design(&s.catalog, &s.workload)
                        .expect("designs")
                        .cost
                        .total,
                )
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
