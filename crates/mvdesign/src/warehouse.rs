//! A small warehouse runtime tying the design together — the operational
//! side of the paper's Figure-1 architecture: base data arrives from the
//! member databases, materialized views are refreshed per period, and
//! queries (designed-for or ad hoc) are answered through the views.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use mvdesign_algebra::{parse_query_with, Expr, ParseError, Value};
use mvdesign_catalog::{Catalog, RelName};
use mvdesign_core::{DesignResult, ViewCatalog};
use mvdesign_engine::{
    execute_with_context, materialize_view_with, BufferPool, Database, ExecContext, ExecError,
    JoinAlgo, Table, DEFAULT_PAGE_ROWS,
};

/// Errors raised by [`Warehouse`] operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WarehouseError {
    /// SQL failed to parse.
    Parse(ParseError),
    /// Plan execution failed.
    Exec(ExecError),
    /// Rows were appended to a relation the database does not hold.
    UnknownRelation(RelName),
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::Parse(e) => write!(f, "parse error: {e}"),
            WarehouseError::Exec(e) => write!(f, "execution error: {e}"),
            WarehouseError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
        }
    }
}

impl Error for WarehouseError {}

impl From<ParseError> for WarehouseError {
    fn from(e: ParseError) -> Self {
        WarehouseError::Parse(e)
    }
}

impl From<ExecError> for WarehouseError {
    fn from(e: ExecError) -> Self {
        WarehouseError::Exec(e)
    }
}

/// An operational warehouse: base tables, the materialized views a
/// [`DesignResult`] chose, and query answering through them.
///
/// ```
/// use mvdesign::prelude::*;
/// use mvdesign::warehouse::Warehouse;
///
/// let scenario = mvdesign::workload::paper_example();
/// let design = Designer::new().design(&scenario.catalog, &scenario.workload)?;
/// let db = Generator::new().database(&scenario.catalog);
/// let mut warehouse = Warehouse::new(scenario.catalog, db, &design)
///     .expect("views materialize");
/// let answer = warehouse
///     .query("SELECT name FROM Customer WHERE city = 'v0'")
///     .expect("query answers");
/// # let _ = answer;
/// # Ok::<(), mvdesign::core::DesignError>(())
/// ```
#[derive(Debug)]
pub struct Warehouse {
    catalog: Catalog,
    db: Database,
    views: ViewCatalog,
    stale: bool,
    refreshes: u64,
    /// Execution knobs for serve and refresh (default: single-threaded).
    exec: ExecContext,
    /// Buffer pool backing paged tables when a memory budget is set.
    pool: Option<Arc<BufferPool>>,
}

impl Warehouse {
    /// Builds a warehouse from base data and a finished design,
    /// materializing every chosen view immediately.
    ///
    /// # Errors
    ///
    /// Returns [`WarehouseError::Exec`] when a view definition cannot be
    /// evaluated over `db`.
    pub fn new(
        catalog: Catalog,
        db: Database,
        design: &DesignResult,
    ) -> Result<Self, WarehouseError> {
        let views = ViewCatalog::from_design(design);
        let mut warehouse = Self {
            catalog,
            db,
            views,
            stale: true,
            refreshes: 0,
            exec: ExecContext::default(),
            pool: None,
        };
        warehouse.refresh()?;
        Ok(warehouse)
    }

    /// Sets the execution knobs (thread count, morsel size) used for every
    /// later serve and refresh, returning the warehouse for chaining.
    /// Answers and stored views are bit-identical under every context —
    /// only wall-clock changes.
    #[must_use]
    pub fn with_exec_context(mut self, exec: ExecContext) -> Self {
        self.exec = exec;
        self
    }

    /// Sets the execution knobs on an existing warehouse (see
    /// [`Warehouse::with_exec_context`]).
    pub fn set_exec_context(&mut self, exec: ExecContext) {
        self.exec = exec;
    }

    /// The execution knobs serve and refresh currently run under.
    pub fn exec_context(&self) -> ExecContext {
        self.exec
    }

    /// Caps warehouse memory, returning the warehouse for chaining: every
    /// table pages out into a [`BufferPool`] with this byte budget, serve
    /// and refresh stream pages through the pool, and the hash-join and
    /// aggregation operators spill to disk when their transient state
    /// outgrows the budget. `None` returns the warehouse to fully resident
    /// operation. Answers and stored views are bit-identical under every
    /// budget — only residency and wall-clock change.
    #[must_use]
    pub fn with_mem_budget(mut self, budget: Option<usize>) -> Self {
        self.set_mem_budget(budget);
        self
    }

    /// Sets the memory budget on an existing warehouse (see
    /// [`Warehouse::with_mem_budget`]).
    pub fn set_mem_budget(&mut self, budget: Option<usize>) {
        self.exec.mem_budget = budget;
        match budget {
            Some(bytes) => {
                let pool = BufferPool::new(Some(bytes));
                self.db.page_out(&pool, DEFAULT_PAGE_ROWS);
                self.pool = Some(pool);
            }
            None => {
                self.db.make_resident();
                self.pool = None;
            }
        }
    }

    /// The configured memory budget in bytes, when one is set.
    pub fn mem_budget(&self) -> Option<usize> {
        self.exec.mem_budget
    }

    /// The buffer pool backing paged tables, when a budget is set.
    pub fn buffer_pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }

    /// The base-plus-views database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The view registry.
    pub fn views(&self) -> &ViewCatalog {
        &self.views
    }

    /// Whether base updates have arrived since the last refresh.
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// How many refresh passes have run.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Appends rows to a base relation (a member-database load). Views go
    /// stale until [`Warehouse::refresh`] runs — the paper's once-per-period
    /// update model. Appends go straight into the table's column storage
    /// ([`Table::extend_rows`]) — no rebuild of the existing data.
    ///
    /// # Errors
    ///
    /// Returns [`WarehouseError::UnknownRelation`] when the relation has no
    /// table, and panics via [`Table::extend_rows`] if row arity mismatches.
    pub fn append(
        &mut self,
        relation: impl Into<RelName>,
        rows: Vec<Vec<Value>>,
    ) -> Result<(), WarehouseError> {
        let relation = relation.into();
        let existing = self
            .db
            .table_mut(relation.as_str())
            .ok_or_else(|| WarehouseError::UnknownRelation(relation.clone()))?;
        existing.extend_rows(rows);
        self.stale = true;
        Ok(())
    }

    /// Recomputes every materialized view (the paper's recomputation
    /// maintenance).
    ///
    /// Views keep the engine's columnar layout: dictionary-encoded text
    /// columns move by `Arc` clone, so a materialized view shares its value
    /// tables with the base tables it was computed from — refreshing copies
    /// codes, never strings.
    ///
    /// # Errors
    ///
    /// Returns [`WarehouseError::Exec`] when a view definition fails.
    pub fn refresh(&mut self) -> Result<(), WarehouseError> {
        for (name, definition) in self.views.views().to_vec() {
            materialize_view_with(name, &definition, &mut self.db, &self.exec)?;
        }
        if let Some(pool) = &self.pool {
            // Freshly materialized views (and appended-to base tables) are
            // resident; fold them back into the pool. Untouched tables keep
            // their existing pages.
            self.db.page_out_resident(pool, DEFAULT_PAGE_ROWS);
        }
        self.stale = false;
        self.refreshes += 1;
        Ok(())
    }

    /// Answers a SQL query, routing it through the materialized views when
    /// a subexpression matches.
    ///
    /// # Errors
    ///
    /// Returns [`WarehouseError::Parse`] for bad SQL and
    /// [`WarehouseError::Exec`] for execution failures.
    pub fn query(&self, sql: &str) -> Result<Table, WarehouseError> {
        let expr = parse_query_with(sql, &self.catalog)?;
        self.query_expr(&expr)
    }

    /// Answers an already-built expression through the views.
    ///
    /// # Errors
    ///
    /// Returns [`WarehouseError::Exec`] for execution failures.
    pub fn query_expr(&self, expr: &Arc<Expr>) -> Result<Table, WarehouseError> {
        let routed = self.views.rewrite(expr);
        Ok(execute_with_context(
            &routed,
            &self.db,
            JoinAlgo::NestedLoop,
            &self.exec,
        )?)
    }
}

/// Measured cost of one operating period: every workload query executed
/// through the views (weighted by its frequency) plus one refresh of every
/// view, all counted in *observed* simulated block I/O rather than estimates.
///
/// This is the end-to-end validation of the paper's objective function: run
/// the same period under different view sets and compare what the engine
/// actually reads and writes.
///
/// # Errors
///
/// Returns [`WarehouseError`] when a query or view fails to execute.
pub fn measured_period_cost(
    workload: &mvdesign_core::Workload,
    views: &ViewCatalog,
    db: &Database,
    records_per_block: f64,
) -> Result<MeasuredPeriod, WarehouseError> {
    use mvdesign_engine::measure;

    // Materialize the views into a working copy so queries can read them.
    let mut working = db.clone();
    let mut maintenance_io = 0.0;
    for (name, definition) in views.views() {
        let (result, io) = measure(definition, &working, records_per_block)?;
        maintenance_io += io.total();
        working.insert_table(Table::from_batch(name.clone(), result.into_batch()));
    }

    let mut query_io = 0.0;
    for q in workload.queries() {
        let routed = views.rewrite(q.root());
        let (_, io) = measure(&routed, &working, records_per_block)?;
        query_io += q.frequency() * io.total();
    }
    Ok(MeasuredPeriod {
        query_io,
        maintenance_io,
        total_io: query_io + maintenance_io,
    })
}

/// Measured period cost of a finished design: the design's views serve the
/// *merged* query plans (the ones the MVPP computes), so shared
/// subexpressions route through the stored views exactly as the designer
/// assumed.
///
/// # Errors
///
/// Returns [`WarehouseError`] when a query or view fails to execute.
pub fn measured_design_cost(
    design: &DesignResult,
    db: &Database,
    records_per_block: f64,
) -> Result<MeasuredPeriod, WarehouseError> {
    use mvdesign_engine::measure;

    let views = ViewCatalog::from_design(design);
    let mut working = db.clone();
    let mut maintenance_io = 0.0;
    for (name, definition) in views.views() {
        let (result, io) = measure(definition, &working, records_per_block)?;
        maintenance_io += io.total();
        working.insert_table(Table::from_batch(name.clone(), result.into_batch()));
    }
    let mut query_io = 0.0;
    for (_, fq, root) in design.mvpp.mvpp().roots() {
        let merged = design.mvpp.mvpp().node(*root).expr();
        let routed = views.rewrite(merged);
        let (_, io) = measure(&routed, &working, records_per_block)?;
        query_io += fq * io.total();
    }
    Ok(MeasuredPeriod {
        query_io,
        maintenance_io,
        total_io: query_io + maintenance_io,
    })
}

/// Observed block I/O of one simulated period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPeriod {
    /// Frequency-weighted I/O of answering every workload query.
    pub query_io: f64,
    /// I/O of refreshing every materialized view once.
    pub maintenance_io: f64,
    /// `query_io + maintenance_io`.
    pub total_io: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_core::Designer;
    use mvdesign_engine::{execute, Generator, GeneratorConfig};
    use mvdesign_workload::paper_example;

    fn warehouse() -> Warehouse {
        let scenario = paper_example();
        let design = Designer::new()
            .design(&scenario.catalog, &scenario.workload)
            .expect("designs");
        let db = Generator::with_config(GeneratorConfig {
            seed: 77,
            scale: 0.003,
            max_rows: 250,
        })
        .database(&scenario.catalog);
        Warehouse::new(scenario.catalog, db, &design).expect("builds")
    }

    #[test]
    fn views_are_materialized_at_startup() {
        let w = warehouse();
        assert!(!w.is_stale());
        assert_eq!(w.refreshes(), 1);
        for (name, _) in w.views().views() {
            assert!(
                w.database().table(name.as_str()).is_some(),
                "view {name} missing"
            );
        }
    }

    #[test]
    fn queries_answer_through_views_and_match_direct_execution() {
        let w = warehouse();
        let scenario = paper_example();
        for q in scenario.workload.queries() {
            let direct = execute(q.root(), w.database())
                .expect("direct executes")
                .canonicalized();
            let via = w
                .query_expr(q.root())
                .expect("warehouse answers")
                .canonicalized();
            assert_eq!(direct.rows(), via.rows(), "{} differs", q.name());
        }
    }

    #[test]
    fn appends_go_stale_and_refresh_catches_up() {
        let mut w = warehouse();
        let customer_attrs = w
            .database()
            .table("Customer")
            .expect("customer exists")
            .attrs()
            .to_vec();
        let row: Vec<Value> = customer_attrs
            .iter()
            .map(|a| match a.attr.as_str() {
                "Cid" => Value::Int(999_999),
                _ => Value::text("fresh"),
            })
            .collect();
        let before = w.query("SELECT name FROM Customer").expect("counts").len();
        w.append("Customer", vec![row]).expect("appends");
        assert!(w.is_stale());
        let after = w.query("SELECT name FROM Customer").expect("counts").len();
        assert_eq!(after, before + 1);
        w.refresh().expect("refreshes");
        assert!(!w.is_stale());
        assert_eq!(w.refreshes(), 2);
    }

    #[test]
    fn materialized_views_share_dictionary_value_tables_with_base_tables() {
        let w = warehouse();
        // Collect every base-table dictionary value table by pointer.
        let base_tables: Vec<_> = w
            .database()
            .iter()
            .filter(|(name, _)| w.views().views().iter().all(|(v, _)| v != *name))
            .flat_map(|(_, t)| t.batch().columns().iter())
            .filter_map(|c| c.dict_values().cloned())
            .collect();
        assert!(
            !base_tables.is_empty(),
            "generated base data carries dictionary columns"
        );
        let mut shared = 0usize;
        for (name, _) in w.views().views() {
            let view = w.database().table(name.as_str()).expect("view stored");
            for col in view.batch().columns() {
                if let Some(values) = col.dict_values() {
                    assert!(
                        base_tables
                            .iter()
                            .any(|b| std::sync::Arc::ptr_eq(b, values)),
                        "view {name} rebuilt a dictionary instead of sharing it"
                    );
                    shared += 1;
                }
            }
        }
        assert!(
            shared > 0,
            "no view carries a dictionary column — sharing untested"
        );
    }

    #[test]
    fn parallel_serve_and_refresh_match_single_threaded() {
        // The same design, data and queries under a parallel context: every
        // stored view and every answer must be bit-identical to the
        // single-threaded warehouse.
        let sequential = warehouse();
        let mut parallel = warehouse().with_exec_context(ExecContext {
            threads: 4,
            morsel_rows: 16,
            mem_budget: None,
        });
        parallel.refresh().expect("parallel refresh");
        for (name, t) in sequential.database().iter() {
            assert_eq!(
                Some(t),
                parallel.database().table(name.as_str()),
                "table {name} differs under parallel refresh"
            );
        }
        let scenario = paper_example();
        for q in scenario.workload.queries() {
            let a = sequential.query_expr(q.root()).expect("sequential");
            let b = parallel.query_expr(q.root()).expect("parallel");
            assert_eq!(a.batch(), b.batch(), "{} differs", q.name());
        }
    }

    #[test]
    fn budgeted_warehouse_matches_resident_and_repages_on_refresh() {
        let resident = warehouse();
        // A budget far smaller than the data forces eviction on every scan.
        let mut budgeted = warehouse().with_mem_budget(Some(4 * 1024));
        assert_eq!(budgeted.mem_budget(), Some(4 * 1024));
        let pool = Arc::clone(budgeted.buffer_pool().expect("pool exists"));
        let scenario = paper_example();
        for q in scenario.workload.queries() {
            let a = resident.query_expr(q.root()).expect("resident");
            let b = budgeted.query_expr(q.root()).expect("budgeted");
            assert_eq!(a.batch(), b.batch(), "{} differs under budget", q.name());
        }
        assert!(
            pool.stats().misses > 0,
            "a 4 KiB pool over this data must evict and re-read pages"
        );
        // Refresh rebuilds views resident, then folds them back into the
        // same pool; answers stay identical.
        budgeted.refresh().expect("budgeted refresh");
        assert!(budgeted
            .buffer_pool()
            .is_some_and(|p| Arc::ptr_eq(p, &pool)));
        for q in scenario.workload.queries() {
            let a = resident.query_expr(q.root()).expect("resident");
            let b = budgeted.query_expr(q.root()).expect("refreshed budgeted");
            assert_eq!(a.batch(), b.batch(), "{} differs after refresh", q.name());
        }
        // Lifting the budget returns the warehouse to resident operation.
        budgeted.set_mem_budget(None);
        assert_eq!(budgeted.mem_budget(), None);
        assert!(budgeted.buffer_pool().is_none());
        for (name, t) in resident.database().iter() {
            assert_eq!(
                Some(t),
                budgeted.database().table(name.as_str()),
                "table {name} differs after returning resident"
            );
        }
    }

    #[test]
    fn unknown_relation_append_is_rejected() {
        let mut w = warehouse();
        assert!(matches!(
            w.append("Ghost", vec![]),
            Err(WarehouseError::UnknownRelation(_))
        ));
    }

    #[test]
    fn bad_sql_is_reported_as_parse_error() {
        let w = warehouse();
        assert!(matches!(
            w.query("SELEC oops"),
            Err(WarehouseError::Parse(_))
        ));
    }
}
