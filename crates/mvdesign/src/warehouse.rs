//! A small warehouse runtime tying the design together — the operational
//! side of the paper's Figure-1 architecture: base data arrives from the
//! member databases, materialized views are refreshed per period, and
//! queries (designed-for or ad hoc) are answered through the views.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use mvdesign_algebra::{parse_query_with, Expr, ParseError, Value};
use mvdesign_catalog::{Catalog, RelName};
use mvdesign_core::{DesignResult, ViewCatalog};
use mvdesign_engine::{
    execute_with_context, refresh_view_delta, split_appends, BufferPool, Column, Database,
    ExecContext, ExecError, JoinAlgo, Table, DEFAULT_PAGE_ROWS,
};

/// Errors raised by [`Warehouse`] operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WarehouseError {
    /// SQL failed to parse.
    Parse(ParseError),
    /// Plan execution failed.
    Exec(ExecError),
    /// Rows were appended to a relation the database does not hold.
    UnknownRelation(RelName),
    /// Appended rows do not fit the relation's schema (wrong arity or a
    /// value whose type mismatches the column it lands in).
    BadRows {
        /// The relation the rows were appended to.
        relation: RelName,
        /// What was wrong with the first offending row.
        reason: String,
    },
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::Parse(e) => write!(f, "parse error: {e}"),
            WarehouseError::Exec(e) => write!(f, "execution error: {e}"),
            WarehouseError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            WarehouseError::BadRows { relation, reason } => {
                write!(f, "bad rows for `{relation}`: {reason}")
            }
        }
    }
}

impl Error for WarehouseError {}

impl From<ParseError> for WarehouseError {
    fn from(e: ParseError) -> Self {
        WarehouseError::Parse(e)
    }
}

impl From<ExecError> for WarehouseError {
    fn from(e: ExecError) -> Self {
        WarehouseError::Exec(e)
    }
}

/// An operational warehouse: base tables, the materialized views a
/// [`DesignResult`] chose, and query answering through them.
///
/// ```
/// use mvdesign::prelude::*;
/// use mvdesign::warehouse::Warehouse;
///
/// let scenario = mvdesign::workload::paper_example();
/// let design = Designer::new().design(&scenario.catalog, &scenario.workload)?;
/// let db = Generator::new().database(&scenario.catalog);
/// let mut warehouse = Warehouse::new(scenario.catalog, db, &design)
///     .expect("views materialize");
/// let answer = warehouse
///     .query("SELECT name FROM Customer WHERE city = 'v0'")
///     .expect("query answers");
/// # let _ = answer;
/// # Ok::<(), mvdesign::core::DesignError>(())
/// ```
#[derive(Debug)]
pub struct Warehouse {
    catalog: Arc<Catalog>,
    db: Database,
    views: Arc<ViewCatalog>,
    /// Views whose inputs changed since they were last (re)built.
    stale: BTreeSet<RelName>,
    /// Per-base-relation row counts at the last refresh — the appends since
    /// then are exactly the suffix past these marks (append-only capture).
    base_rows: BTreeMap<RelName, usize>,
    refreshes: u64,
    /// How stale views are brought up to date (default: [`RefreshPolicy::Delta`]).
    policy: RefreshPolicy,
    /// Per-view overrides of the warehouse-wide policy.
    view_policies: BTreeMap<RelName, RefreshPolicy>,
    /// What the last refresh pass did per view.
    last_refresh: RefreshReport,
    /// Execution knobs for serve and refresh (default: single-threaded).
    exec: ExecContext,
    /// Join kernel for serve and refresh (default: nested loop). Answers
    /// and stored views are bag-identical under every algorithm — only row
    /// order and wall-clock change.
    join_algo: JoinAlgo,
    /// Buffer pool backing paged tables when a memory budget is set.
    pool: Option<Arc<BufferPool>>,
}

/// How [`Warehouse::refresh`] brings a stale view up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshPolicy {
    /// Re-evaluate the view definition over the full base data (the paper's
    /// recomputation maintenance).
    Recompute,
    /// Fold only the appended deltas into the stored view
    /// ([`refresh_view_delta`]), falling back to recomputation whenever the
    /// delta algebra declines the plan. Results are bit-identical to
    /// [`RefreshPolicy::Recompute`] up to row order and always bag-equal.
    #[default]
    Delta,
}

/// What one [`Warehouse::refresh`] pass did, per view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefreshReport {
    /// Views rebuilt from scratch (policy choice or delta fallback).
    pub recomputed: usize,
    /// Views maintained incrementally from append deltas.
    pub folded: usize,
    /// Views left untouched because none of their inputs changed.
    pub skipped: usize,
}

impl Warehouse {
    /// Builds a warehouse from base data and a finished design,
    /// materializing every chosen view immediately.
    ///
    /// # Errors
    ///
    /// Returns [`WarehouseError::Exec`] when a view definition cannot be
    /// evaluated over `db`.
    pub fn new(
        catalog: Catalog,
        db: Database,
        design: &DesignResult,
    ) -> Result<Self, WarehouseError> {
        Self::new_with_join_algo(catalog, db, design, JoinAlgo::NestedLoop)
    }

    /// Like [`Warehouse::new`], but the given join kernel already serves
    /// the initial materialization (where [`Warehouse::with_join_algo`]
    /// would only apply from the *next* refresh on).
    ///
    /// # Errors
    ///
    /// Returns [`WarehouseError::Exec`] when a view definition cannot be
    /// evaluated over `db`.
    pub fn new_with_join_algo(
        catalog: Catalog,
        db: Database,
        design: &DesignResult,
        join_algo: JoinAlgo,
    ) -> Result<Self, WarehouseError> {
        let views = ViewCatalog::from_design(design);
        let stale = views.views().iter().map(|(n, _)| n.clone()).collect();
        let mut warehouse = Self {
            catalog: Arc::new(catalog),
            db,
            views: Arc::new(views),
            stale,
            base_rows: BTreeMap::new(),
            refreshes: 0,
            policy: RefreshPolicy::default(),
            view_policies: BTreeMap::new(),
            last_refresh: RefreshReport::default(),
            exec: ExecContext::default(),
            join_algo,
            pool: None,
        };
        warehouse.refresh()?;
        Ok(warehouse)
    }

    /// Sets the execution knobs (thread count, morsel size) used for every
    /// later serve and refresh, returning the warehouse for chaining.
    /// Answers and stored views are bit-identical under every context —
    /// only wall-clock changes.
    #[must_use]
    pub fn with_exec_context(mut self, exec: ExecContext) -> Self {
        self.exec = exec;
        self
    }

    /// Sets the execution knobs on an existing warehouse (see
    /// [`Warehouse::with_exec_context`]).
    pub fn set_exec_context(&mut self, exec: ExecContext) {
        self.exec = exec;
    }

    /// Picks the join kernel used for every later serve and refresh (delta
    /// folds and recomputes alike), returning the warehouse for chaining.
    /// Answers and stored views stay bag-identical under every algorithm —
    /// only row order and wall-clock change.
    #[must_use]
    pub fn with_join_algo(mut self, algo: JoinAlgo) -> Self {
        self.join_algo = algo;
        self
    }

    /// Sets the join kernel in place (see [`Warehouse::with_join_algo`]).
    pub fn set_join_algo(&mut self, algo: JoinAlgo) {
        self.join_algo = algo;
    }

    /// The join kernel serving queries and refreshes.
    pub fn join_algo(&self) -> JoinAlgo {
        self.join_algo
    }

    /// The execution knobs serve and refresh currently run under.
    pub fn exec_context(&self) -> ExecContext {
        self.exec
    }

    /// Caps warehouse memory, returning the warehouse for chaining: every
    /// table pages out into a [`BufferPool`] with this byte budget, serve
    /// and refresh stream pages through the pool, and the hash-join and
    /// aggregation operators spill to disk when their transient state
    /// outgrows the budget. `None` returns the warehouse to fully resident
    /// operation. Answers and stored views are bit-identical under every
    /// budget — only residency and wall-clock change.
    #[must_use]
    pub fn with_mem_budget(mut self, budget: Option<usize>) -> Self {
        self.set_mem_budget(budget);
        self
    }

    /// Sets the memory budget on an existing warehouse (see
    /// [`Warehouse::with_mem_budget`]).
    pub fn set_mem_budget(&mut self, budget: Option<usize>) {
        self.exec.mem_budget = budget;
        match budget {
            Some(bytes) => {
                let pool = BufferPool::new(Some(bytes));
                self.db.page_out(&pool, DEFAULT_PAGE_ROWS);
                self.pool = Some(pool);
            }
            None => {
                self.db.make_resident();
                self.pool = None;
            }
        }
    }

    /// The configured memory budget in bytes, when one is set.
    pub fn mem_budget(&self) -> Option<usize> {
        self.exec.mem_budget
    }

    /// The buffer pool backing paged tables, when a budget is set.
    pub fn buffer_pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }

    /// The base-plus-views database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The catalog queries are parsed against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The view registry.
    pub fn views(&self) -> &ViewCatalog {
        &self.views
    }

    /// Rows appended to base relations since the last refresh — the data
    /// the stale views do not yet reflect.
    pub fn pending_rows(&self) -> usize {
        self.base_rows
            .iter()
            .map(|(name, mark)| {
                self.db
                    .table(name.as_str())
                    .map_or(0, |t| t.len().saturating_sub(*mark))
            })
            .sum()
    }

    /// An immutable, shareable picture of the warehouse's serve state:
    /// catalog, base-plus-views database and view registry, all behind
    /// `Arc`s. Taking a snapshot copies *no* table data — columns,
    /// dictionary value tables and page handles are `Arc`-shared with the
    /// live warehouse — so publishing one is a handful of pointer clones
    /// (O(tables), not O(rows)). A snapshot answers queries exactly like
    /// the warehouse did at the moment it was taken, no matter what the
    /// warehouse does afterwards: appends and refreshes replace tables in
    /// the live [`Database`] map but never mutate the shared columns.
    ///
    /// This is what the serving layer (`mvdesign-serve`) publishes to its
    /// reader tasks after every write — snapshot isolation for free out of
    /// the engine's copy-on-write column layout.
    pub fn snapshot(&self) -> WarehouseSnapshot {
        WarehouseSnapshot {
            catalog: Arc::clone(&self.catalog),
            db: Arc::new(self.db.clone()),
            views: Arc::clone(&self.views),
            exec: self.exec,
            join_algo: self.join_algo,
            version: 0,
            refreshes: self.refreshes,
            stale_views: self.stale.len(),
            pending_rows: self.pending_rows(),
        }
    }

    /// Whether any view's inputs changed since it was last (re)built.
    pub fn is_stale(&self) -> bool {
        !self.stale.is_empty()
    }

    /// The views whose inputs changed since the last refresh — exactly the
    /// ones the next [`Warehouse::refresh`] will touch.
    pub fn stale_views(&self) -> impl Iterator<Item = &RelName> {
        self.stale.iter()
    }

    /// How many refresh passes have run.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Sets the warehouse-wide maintenance policy, returning the warehouse
    /// for chaining. Stored views and answers are bag-equal under every
    /// policy — only refresh work changes.
    #[must_use]
    pub fn with_refresh_policy(mut self, policy: RefreshPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the warehouse-wide maintenance policy (see
    /// [`Warehouse::with_refresh_policy`]).
    pub fn set_refresh_policy(&mut self, policy: RefreshPolicy) {
        self.policy = policy;
    }

    /// Overrides the maintenance policy for one view — how the design
    /// layer's per-view `MaintenancePolicy` choice is carried into the
    /// runtime. `None` returns the view to the warehouse-wide policy.
    pub fn set_view_refresh_policy(
        &mut self,
        view: impl Into<RelName>,
        policy: Option<RefreshPolicy>,
    ) {
        let view = view.into();
        match policy {
            Some(p) => {
                self.view_policies.insert(view, p);
            }
            None => {
                self.view_policies.remove(&view);
            }
        }
    }

    /// The policy [`Warehouse::refresh`] will use for `view`.
    pub fn refresh_policy(&self, view: &RelName) -> RefreshPolicy {
        self.view_policies.get(view).copied().unwrap_or(self.policy)
    }

    /// What the most recent refresh pass did, per view.
    pub fn last_refresh(&self) -> RefreshReport {
        self.last_refresh
    }

    /// Appends rows to a base relation (a member-database load). Views
    /// reading the relation go stale until [`Warehouse::refresh`] runs —
    /// the paper's once-per-period update model; views over other relations
    /// stay fresh. Appends go straight into the table's column storage
    /// ([`Table::extend_rows`]) — no rebuild of the existing data.
    ///
    /// # Errors
    ///
    /// Returns [`WarehouseError::UnknownRelation`] when the relation has no
    /// table and [`WarehouseError::BadRows`] when a row's arity or a
    /// value's type mismatches the table schema (nothing is appended).
    pub fn append(
        &mut self,
        relation: impl Into<RelName>,
        rows: Vec<Vec<Value>>,
    ) -> Result<(), WarehouseError> {
        let relation = relation.into();
        let existing = self
            .db
            .table_mut(relation.as_str())
            .ok_or_else(|| WarehouseError::UnknownRelation(relation.clone()))?;
        if let Some(reason) = reject_rows(existing, &rows) {
            return Err(WarehouseError::BadRows { relation, reason });
        }
        if rows.is_empty() {
            return Ok(());
        }
        existing.extend_rows(rows);
        for (name, definition) in self.views.views() {
            if definition.base_relations().contains(&relation) {
                self.stale.insert(name.clone());
            }
        }
        Ok(())
    }

    /// Brings every stale view up to date and snapshots the base state the
    /// views now reflect. Fresh views are skipped outright; stale ones are
    /// maintained per their [`RefreshPolicy`] — incrementally folding the
    /// appended deltas where the delta algebra allows, recomputing
    /// otherwise. Reports what happened per view.
    ///
    /// Views keep the engine's columnar layout: dictionary-encoded text
    /// columns move by `Arc` clone, so a materialized view shares its value
    /// tables with the base tables it was computed from — refreshing copies
    /// codes, never strings. Delta folds rebuild only the touched view.
    ///
    /// # Errors
    ///
    /// Returns [`WarehouseError::Exec`] when a view definition fails.
    pub fn refresh(&mut self) -> Result<RefreshReport, WarehouseError> {
        let mut report = RefreshReport::default();
        let (old, deltas) = split_appends(&self.db, &self.base_rows);
        for (name, definition) in self.views.views().to_vec() {
            if !self.stale.contains(&name) && self.db.table(name.as_str()).is_some() {
                report.skipped += 1;
                continue;
            }
            let stored = match self.refresh_policy(&name) {
                RefreshPolicy::Delta => old.table(name.as_str()),
                RefreshPolicy::Recompute => None,
            };
            let folded = match stored {
                Some(table) => refresh_view_delta(
                    table.batch(),
                    &definition,
                    &old,
                    &deltas,
                    self.join_algo,
                    &self.exec,
                )?,
                None => None,
            };
            match folded {
                Some(batch) => {
                    self.db.insert_table(Table::from_batch(name.clone(), batch));
                    report.folded += 1;
                }
                None => {
                    let result =
                        execute_with_context(&definition, &self.db, self.join_algo, &self.exec)?;
                    self.db
                        .insert_table(Table::from_batch(name.clone(), result.into_batch()));
                    report.recomputed += 1;
                }
            }
        }
        if let Some(pool) = &self.pool {
            // Freshly materialized views (and appended-to base tables) are
            // resident; fold them back into the pool. Untouched tables keep
            // their existing pages.
            self.db.page_out_resident(pool, DEFAULT_PAGE_ROWS);
        }
        self.snapshot_base_rows();
        self.stale.clear();
        self.refreshes += 1;
        self.last_refresh = report;
        Ok(report)
    }

    /// Records the per-relation row counts the views now reflect; the next
    /// refresh treats anything past these marks as the append delta.
    fn snapshot_base_rows(&mut self) {
        let views: BTreeSet<&RelName> = self.views.views().iter().map(|(n, _)| n).collect();
        self.base_rows = self
            .db
            .iter()
            .filter(|(name, _)| !views.contains(name))
            .map(|(name, table)| (name.clone(), table.len()))
            .collect();
    }

    /// Answers a SQL query, routing it through the materialized views when
    /// a subexpression matches.
    ///
    /// # Errors
    ///
    /// Returns [`WarehouseError::Parse`] for bad SQL and
    /// [`WarehouseError::Exec`] for execution failures.
    pub fn query(&self, sql: &str) -> Result<Table, WarehouseError> {
        let expr = parse_query_with(sql, &self.catalog)?;
        self.query_expr(&expr)
    }

    /// Answers an already-built expression through the views.
    ///
    /// # Errors
    ///
    /// Returns [`WarehouseError::Exec`] for execution failures.
    pub fn query_expr(&self, expr: &Arc<Expr>) -> Result<Table, WarehouseError> {
        route_and_execute(&self.views, &self.db, self.join_algo, &self.exec, expr)
    }
}

/// The one query path both [`Warehouse`] and [`WarehouseSnapshot`] serve
/// through: route the expression through the materialized views, then run
/// the batch engine under the configured join kernel and execution knobs.
fn route_and_execute(
    views: &ViewCatalog,
    db: &Database,
    join_algo: JoinAlgo,
    exec: &ExecContext,
    expr: &Arc<Expr>,
) -> Result<Table, WarehouseError> {
    let routed = views.rewrite(expr);
    Ok(execute_with_context(&routed, db, join_algo, exec)?)
}

/// An immutable picture of a warehouse's serve state, produced by
/// [`Warehouse::snapshot`].
///
/// A snapshot owns nothing but `Arc`s: the catalog, the base-plus-views
/// [`Database`] and the [`ViewCatalog`] are all shared with the warehouse
/// that produced it (and with every other snapshot), so clones and
/// publishes are pointer work. It answers queries with the same routing,
/// join kernel and execution knobs as the source warehouse — and keeps
/// answering from *its* state forever, however the source moves on.
///
/// The `version` field is a publish sequence number for whoever manages a
/// chain of snapshots (the serving layer tags each published snapshot with
/// a monotonically increasing version; [`Warehouse::snapshot`] itself
/// always returns version 0).
#[derive(Debug, Clone)]
pub struct WarehouseSnapshot {
    catalog: Arc<Catalog>,
    db: Arc<Database>,
    views: Arc<ViewCatalog>,
    exec: ExecContext,
    join_algo: JoinAlgo,
    version: u64,
    refreshes: u64,
    stale_views: usize,
    pending_rows: usize,
}

impl WarehouseSnapshot {
    /// Answers a SQL query against the snapshot's state, routing through
    /// the materialized views exactly like [`Warehouse::query`].
    ///
    /// # Errors
    ///
    /// Returns [`WarehouseError::Parse`] for bad SQL and
    /// [`WarehouseError::Exec`] for execution failures.
    pub fn query(&self, sql: &str) -> Result<Table, WarehouseError> {
        let expr = parse_query_with(sql, &self.catalog)?;
        self.query_expr(&expr)
    }

    /// Answers an already-built expression against the snapshot's state
    /// (see [`Warehouse::query_expr`]).
    ///
    /// # Errors
    ///
    /// Returns [`WarehouseError::Exec`] for execution failures.
    pub fn query_expr(&self, expr: &Arc<Expr>) -> Result<Table, WarehouseError> {
        route_and_execute(&self.views, &self.db, self.join_algo, &self.exec, expr)
    }

    /// The snapshot's (frozen) base-plus-views database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The catalog queries are parsed against.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The view registry routing queries.
    pub fn views(&self) -> &ViewCatalog {
        &self.views
    }

    /// The publish sequence number assigned by the layer that published
    /// this snapshot (0 straight out of [`Warehouse::snapshot`]).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Tags the snapshot with a publish sequence number (the serving
    /// layer's linearization point), returning it for chaining.
    #[must_use]
    pub fn with_version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// How many refresh passes the source warehouse had run.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// How many views were stale (inputs changed, not yet refreshed) when
    /// the snapshot was taken.
    pub fn stale_views(&self) -> usize {
        self.stale_views
    }

    /// Rows appended to base relations but not yet folded into the views
    /// when the snapshot was taken — the answer-visible staleness of
    /// view-routed queries served from this snapshot.
    pub fn pending_rows(&self) -> usize {
        self.pending_rows
    }

    /// Whether any view's inputs had changed since its last rebuild.
    pub fn is_stale(&self) -> bool {
        self.stale_views > 0
    }
}

// The serving layer shares snapshots (and the types inside them) across
// reader threads; catch a future non-`Send`/`Sync` field at the PR that
// introduces it, not in the async layer.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<WarehouseSnapshot>();
    assert_send_sync::<Database>();
    assert_send_sync::<Table>();
    assert_send_sync::<BufferPool>();
    assert_send_sync::<Catalog>();
    assert_send_sync::<ViewCatalog>();
    assert_send_sync::<Warehouse>();
};

/// Checks appended rows against a table's schema before any mutation:
/// every row must match the header arity, and every value must fit the
/// column it lands in (typed columns accept their own variant; `Mixed` and
/// empty columns accept anything, like [`Column::push`] does). Returns a
/// description of the first offence, `None` when the rows are clean.
fn reject_rows(table: &Table, rows: &[Vec<Value>]) -> Option<String> {
    let attrs = table.attrs();
    let empty = table.is_empty();
    for (i, row) in rows.iter().enumerate() {
        if row.len() != attrs.len() {
            return Some(format!(
                "row {i} has arity {} but `{}` has {} attributes",
                row.len(),
                table.name(),
                attrs.len()
            ));
        }
        if empty {
            continue;
        }
        for (j, value) in row.iter().enumerate() {
            let fits = match (table.batch().column(j), value) {
                (Column::Int(_), Value::Int(_))
                | (Column::Text(_) | Column::Dict { .. }, Value::Text(_))
                | (Column::Date(_), Value::Date(_))
                | (Column::Mixed(_), _) => true,
                (col, _) => col.is_empty(),
            };
            if !fits {
                return Some(format!(
                    "row {i} value {value:?} does not fit column `{}`",
                    attrs[j]
                ));
            }
        }
    }
    None
}

/// Measured cost of one operating period: every workload query executed
/// through the views (weighted by its frequency) plus one refresh of every
/// view, all counted in *observed* simulated block I/O rather than estimates.
///
/// This is the end-to-end validation of the paper's objective function: run
/// the same period under different view sets and compare what the engine
/// actually reads and writes.
///
/// # Errors
///
/// Returns [`WarehouseError`] when a query or view fails to execute.
pub fn measured_period_cost(
    workload: &mvdesign_core::Workload,
    views: &ViewCatalog,
    db: &Database,
    records_per_block: f64,
) -> Result<MeasuredPeriod, WarehouseError> {
    use mvdesign_engine::measure;

    // Materialize the views into a working copy so queries can read them.
    let mut working = db.clone();
    let mut maintenance_io = 0.0;
    for (name, definition) in views.views() {
        let (result, io) = measure(definition, &working, records_per_block)?;
        maintenance_io += io.total();
        working.insert_table(Table::from_batch(name.clone(), result.into_batch()));
    }

    let mut query_io = 0.0;
    for q in workload.queries() {
        let routed = views.rewrite(q.root());
        let (_, io) = measure(&routed, &working, records_per_block)?;
        query_io += q.frequency() * io.total();
    }
    Ok(MeasuredPeriod {
        query_io,
        maintenance_io,
        total_io: query_io + maintenance_io,
    })
}

/// Measured period cost of a finished design: the design's views serve the
/// *merged* query plans (the ones the MVPP computes), so shared
/// subexpressions route through the stored views exactly as the designer
/// assumed.
///
/// # Errors
///
/// Returns [`WarehouseError`] when a query or view fails to execute.
pub fn measured_design_cost(
    design: &DesignResult,
    db: &Database,
    records_per_block: f64,
) -> Result<MeasuredPeriod, WarehouseError> {
    use mvdesign_engine::measure;

    let views = ViewCatalog::from_design(design);
    let mut working = db.clone();
    let mut maintenance_io = 0.0;
    for (name, definition) in views.views() {
        let (result, io) = measure(definition, &working, records_per_block)?;
        maintenance_io += io.total();
        working.insert_table(Table::from_batch(name.clone(), result.into_batch()));
    }
    let mut query_io = 0.0;
    for (_, fq, root) in design.mvpp.mvpp().roots() {
        let merged = design.mvpp.mvpp().node(*root).expr();
        let routed = views.rewrite(merged);
        let (_, io) = measure(&routed, &working, records_per_block)?;
        query_io += fq * io.total();
    }
    Ok(MeasuredPeriod {
        query_io,
        maintenance_io,
        total_io: query_io + maintenance_io,
    })
}

/// Observed block I/O of one simulated period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPeriod {
    /// Frequency-weighted I/O of answering every workload query.
    pub query_io: f64,
    /// I/O of refreshing every materialized view once.
    pub maintenance_io: f64,
    /// `query_io + maintenance_io`.
    pub total_io: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_core::Designer;
    use mvdesign_engine::{execute, Generator, GeneratorConfig};
    use mvdesign_workload::paper_example;

    fn warehouse() -> Warehouse {
        let scenario = paper_example();
        let design = Designer::new()
            .design(&scenario.catalog, &scenario.workload)
            .expect("designs");
        let db = Generator::with_config(GeneratorConfig {
            seed: 77,
            scale: 0.003,
            max_rows: 250,
        })
        .database(&scenario.catalog);
        Warehouse::new(scenario.catalog, db, &design).expect("builds")
    }

    #[test]
    fn views_are_materialized_at_startup() {
        let w = warehouse();
        assert!(!w.is_stale());
        assert_eq!(w.refreshes(), 1);
        for (name, _) in w.views().views() {
            assert!(
                w.database().table(name.as_str()).is_some(),
                "view {name} missing"
            );
        }
    }

    #[test]
    fn queries_answer_through_views_and_match_direct_execution() {
        let w = warehouse();
        let scenario = paper_example();
        for q in scenario.workload.queries() {
            let direct = execute(q.root(), w.database())
                .expect("direct executes")
                .canonicalized();
            let via = w
                .query_expr(q.root())
                .expect("warehouse answers")
                .canonicalized();
            assert_eq!(direct.rows(), via.rows(), "{} differs", q.name());
        }
    }

    #[test]
    fn appends_go_stale_and_refresh_catches_up() {
        let mut w = warehouse();
        let customer_attrs = w
            .database()
            .table("Customer")
            .expect("customer exists")
            .attrs()
            .to_vec();
        let row: Vec<Value> = customer_attrs
            .iter()
            .map(|a| match a.attr.as_str() {
                "Cid" => Value::Int(999_999),
                _ => Value::text("fresh"),
            })
            .collect();
        let before = w.query("SELECT name FROM Customer").expect("counts").len();
        w.append("Customer", vec![row]).expect("appends");
        assert!(w.is_stale());
        let after = w.query("SELECT name FROM Customer").expect("counts").len();
        assert_eq!(after, before + 1);
        w.refresh().expect("refreshes");
        assert!(!w.is_stale());
        assert_eq!(w.refreshes(), 2);
    }

    #[test]
    fn materialized_views_share_dictionary_value_tables_with_base_tables() {
        let w = warehouse();
        // Collect every base-table dictionary value table by pointer.
        let base_tables: Vec<_> = w
            .database()
            .iter()
            .filter(|(name, _)| w.views().views().iter().all(|(v, _)| v != *name))
            .flat_map(|(_, t)| t.batch().columns().iter())
            .filter_map(|c| c.dict_values().cloned())
            .collect();
        assert!(
            !base_tables.is_empty(),
            "generated base data carries dictionary columns"
        );
        let mut shared = 0usize;
        for (name, _) in w.views().views() {
            let view = w.database().table(name.as_str()).expect("view stored");
            for col in view.batch().columns() {
                if let Some(values) = col.dict_values() {
                    assert!(
                        base_tables
                            .iter()
                            .any(|b| std::sync::Arc::ptr_eq(b, values)),
                        "view {name} rebuilt a dictionary instead of sharing it"
                    );
                    shared += 1;
                }
            }
        }
        assert!(
            shared > 0,
            "no view carries a dictionary column — sharing untested"
        );
    }

    #[test]
    fn parallel_serve_and_refresh_match_single_threaded() {
        // The same design, data and queries under a parallel context: every
        // stored view and every answer must be bit-identical to the
        // single-threaded warehouse.
        let sequential = warehouse();
        let mut parallel = warehouse().with_exec_context(ExecContext {
            threads: 4,
            morsel_rows: 16,
            mem_budget: None,
        });
        parallel.refresh().expect("parallel refresh");
        for (name, t) in sequential.database().iter() {
            assert_eq!(
                Some(t),
                parallel.database().table(name.as_str()),
                "table {name} differs under parallel refresh"
            );
        }
        let scenario = paper_example();
        for q in scenario.workload.queries() {
            let a = sequential.query_expr(q.root()).expect("sequential");
            let b = parallel.query_expr(q.root()).expect("parallel");
            assert_eq!(a.batch(), b.batch(), "{} differs", q.name());
        }
    }

    #[test]
    fn budgeted_warehouse_matches_resident_and_repages_on_refresh() {
        let resident = warehouse();
        // A budget far smaller than the data forces eviction on every scan.
        let mut budgeted = warehouse().with_mem_budget(Some(4 * 1024));
        assert_eq!(budgeted.mem_budget(), Some(4 * 1024));
        let pool = Arc::clone(budgeted.buffer_pool().expect("pool exists"));
        let scenario = paper_example();
        for q in scenario.workload.queries() {
            let a = resident.query_expr(q.root()).expect("resident");
            let b = budgeted.query_expr(q.root()).expect("budgeted");
            assert_eq!(a.batch(), b.batch(), "{} differs under budget", q.name());
        }
        assert!(
            pool.stats().misses > 0,
            "a 4 KiB pool over this data must evict and re-read pages"
        );
        // Refresh rebuilds views resident, then folds them back into the
        // same pool; answers stay identical.
        budgeted.refresh().expect("budgeted refresh");
        assert!(budgeted
            .buffer_pool()
            .is_some_and(|p| Arc::ptr_eq(p, &pool)));
        for q in scenario.workload.queries() {
            let a = resident.query_expr(q.root()).expect("resident");
            let b = budgeted.query_expr(q.root()).expect("refreshed budgeted");
            assert_eq!(a.batch(), b.batch(), "{} differs after refresh", q.name());
        }
        // Lifting the budget returns the warehouse to resident operation.
        budgeted.set_mem_budget(None);
        assert_eq!(budgeted.mem_budget(), None);
        assert!(budgeted.buffer_pool().is_none());
        for (name, t) in resident.database().iter() {
            assert_eq!(
                Some(t),
                budgeted.database().table(name.as_str()),
                "table {name} differs after returning resident"
            );
        }
    }

    #[test]
    fn unknown_relation_append_is_rejected() {
        let mut w = warehouse();
        assert!(matches!(
            w.append("Ghost", vec![]),
            Err(WarehouseError::UnknownRelation(_))
        ));
    }

    #[test]
    fn bad_arity_append_is_rejected_without_mutating() {
        let mut w = warehouse();
        let before = w.database().table("Customer").expect("exists").len();
        let err = w
            .append("Customer", vec![vec![Value::Int(1)]])
            .expect_err("short row rejected");
        assert!(matches!(err, WarehouseError::BadRows { .. }), "{err}");
        assert!(err.to_string().contains("arity"), "{err}");
        assert_eq!(
            w.database().table("Customer").expect("exists").len(),
            before,
            "rejected rows must not land"
        );
        assert!(!w.is_stale(), "rejected appends leave views fresh");
    }

    #[test]
    fn bad_type_append_is_rejected_without_mutating() {
        let mut w = warehouse();
        let arity = w
            .database()
            .table("Customer")
            .expect("exists")
            .attrs()
            .len();
        // Cid is an integer column; a text value must not degrade it.
        let row: Vec<Value> = (0..arity).map(|_| Value::text("oops")).collect();
        let err = w
            .append("Customer", vec![row])
            .expect_err("mistyped row rejected");
        assert!(matches!(err, WarehouseError::BadRows { .. }), "{err}");
        assert!(!w.is_stale());
    }

    #[test]
    fn empty_append_is_a_fresh_no_op() {
        let mut w = warehouse();
        w.append("Customer", vec![]).expect("empty append ok");
        assert!(!w.is_stale(), "no rows, no staleness");
    }

    #[test]
    fn staleness_is_per_view_and_refresh_skips_fresh_views() {
        let mut w = warehouse();
        let customer_views: Vec<RelName> = w
            .views()
            .views()
            .iter()
            .filter(|(_, d)| d.base_relations().contains(&RelName::new("Customer")))
            .map(|(n, _)| n.clone())
            .collect();
        let total_views = w.views().views().len();
        assert!(
            !customer_views.is_empty() && customer_views.len() < total_views,
            "fixture needs a view over Customer and one not over it"
        );
        let row = customer_row(&w);
        w.append("Customer", vec![row]).expect("appends");
        let stale: Vec<RelName> = w.stale_views().cloned().collect();
        assert_eq!(stale, customer_views, "only Customer-fed views go stale");
        let report = w.refresh().expect("refreshes");
        assert_eq!(
            report.skipped,
            total_views - customer_views.len(),
            "fresh views are not touched"
        );
        assert_eq!(report.folded + report.recomputed, customer_views.len());
        assert!(!w.is_stale());
    }

    #[test]
    fn delta_refresh_folds_appends_and_matches_recompute() {
        let mut delta = warehouse();
        let mut recompute = warehouse().with_refresh_policy(RefreshPolicy::Recompute);
        let rows: Vec<Vec<Value>> = (0..5).map(|_| customer_row(&delta)).collect();
        delta.append("Customer", rows.clone()).expect("appends");
        recompute.append("Customer", rows).expect("appends");
        let dr = delta.refresh().expect("delta refresh");
        let rr = recompute.refresh().expect("recompute refresh");
        assert!(
            dr.folded > 0,
            "SPJ view over Customer folds its delta: {dr:?}"
        );
        assert_eq!(rr.folded, 0, "Recompute policy never folds: {rr:?}");
        for (name, _) in delta.views().views() {
            let a = delta
                .database()
                .table(name.as_str())
                .expect("view stored")
                .canonicalized();
            let b = recompute
                .database()
                .table(name.as_str())
                .expect("view stored")
                .canonicalized();
            assert_eq!(a.rows(), b.rows(), "view {name} differs across policies");
        }
        let scenario = paper_example();
        for q in scenario.workload.queries() {
            let a = delta.query_expr(q.root()).expect("delta").canonicalized();
            let b = recompute
                .query_expr(q.root())
                .expect("recompute")
                .canonicalized();
            assert_eq!(a.rows(), b.rows(), "{} differs across policies", q.name());
        }
    }

    #[test]
    fn per_view_policy_override_forces_recompute() {
        let mut w = warehouse();
        let names: Vec<RelName> = w.views().views().iter().map(|(n, _)| n.clone()).collect();
        for name in &names {
            w.set_view_refresh_policy(name.clone(), Some(RefreshPolicy::Recompute));
            assert_eq!(w.refresh_policy(name), RefreshPolicy::Recompute);
        }
        w.append("Customer", vec![customer_row(&w)])
            .expect("appends");
        let report = w.refresh().expect("refreshes");
        assert_eq!(
            report.folded, 0,
            "overrides force recomputation: {report:?}"
        );
        for name in &names {
            w.set_view_refresh_policy(name.clone(), None);
            assert_eq!(w.refresh_policy(name), RefreshPolicy::Delta);
        }
    }

    /// A fresh Customer row matching the generated schema.
    fn customer_row(w: &Warehouse) -> Vec<Value> {
        w.database()
            .table("Customer")
            .expect("customer exists")
            .attrs()
            .iter()
            .map(|a| match a.attr.as_str() {
                "Cid" => Value::Int(1_000_000),
                _ => Value::text("fresh"),
            })
            .collect()
    }

    #[test]
    fn bad_sql_is_reported_as_parse_error() {
        let w = warehouse();
        assert!(matches!(
            w.query("SELEC oops"),
            Err(WarehouseError::Parse(_))
        ));
    }

    #[test]
    fn snapshot_answers_like_the_warehouse_and_shares_columns() {
        let w = warehouse();
        let snap = w.snapshot();
        assert_eq!(snap.version(), 0);
        assert_eq!(snap.refreshes(), w.refreshes());
        assert!(!snap.is_stale());
        assert_eq!(snap.pending_rows(), 0);
        let scenario = paper_example();
        for q in scenario.workload.queries() {
            let a = w.query_expr(q.root()).expect("warehouse answers");
            let b = snap.query_expr(q.root()).expect("snapshot answers");
            assert_eq!(a.batch(), b.batch(), "{} differs", q.name());
        }
        // Zero-copy: every snapshot column is the warehouse's column, by
        // pointer — publishing a snapshot moves no data.
        for (name, t) in w.database().iter() {
            let s = snap.database().table(name.as_str()).expect("table shared");
            for (a, b) in t.batch().columns().iter().zip(s.batch().columns()) {
                assert!(Arc::ptr_eq(a, b), "{name} copied a column");
            }
        }
    }

    #[test]
    fn snapshot_is_isolated_from_later_appends_and_refreshes() {
        let mut w = warehouse();
        let before = w.snapshot().with_version(7);
        assert_eq!(before.version(), 7);
        let count_sql = "SELECT name FROM Customer";
        let count_at_snap = before.query(count_sql).expect("counts").len();
        w.append("Customer", vec![customer_row(&w)])
            .expect("appends");
        assert_eq!(w.pending_rows(), 1);
        assert_eq!(w.snapshot().stale_views(), w.stale_views().count());
        w.refresh().expect("refreshes");
        assert_eq!(w.pending_rows(), 0);
        // The held snapshot still answers from the old state…
        assert_eq!(
            before.query(count_sql).expect("counts").len(),
            count_at_snap,
            "snapshot must not see the append"
        );
        // …while the live warehouse (and any new snapshot) see the row.
        assert_eq!(w.query(count_sql).expect("counts").len(), count_at_snap + 1);
        assert_eq!(
            w.snapshot().query(count_sql).expect("counts").len(),
            count_at_snap + 1
        );
    }
}
