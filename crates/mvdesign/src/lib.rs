//! `mvdesign` — materialized view design for data warehouses, reproducing
//! *“A Framework for Designing Materialized Views in Data Warehousing
//! Environment”* (J. Yang, K. Karlapalem, Q. Li; ICDCS 1997).
//!
//! A data warehouse answers a fixed set of analytical queries over base
//! relations that keep changing. Materializing every query's result gives
//! the fastest answers but the highest refresh bill; keeping everything
//! virtual does the opposite. The paper's insight is that queries overlap:
//! merging their plans into one **Multiple View Processing Plan** (MVPP) —
//! a DAG sharing common subexpressions — exposes *intermediate* results
//! (like `Product ⋈ σ(Division)`) whose materialization serves several
//! queries at a fraction of the maintenance cost.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`catalog`] | relation schemas, statistics, selectivities (`mvdesign-catalog`) |
//! | [`algebra`] | SPJ expressions, predicates, SQL parser (`mvdesign-algebra`) |
//! | [`cost`]    | cardinality estimation, block-access cost models (`mvdesign-cost`) |
//! | [`optimizer`] | push-down/pull-up rewrites, join ordering (`mvdesign-optimizer`) |
//! | [`engine`]  | in-memory executor, data generator, I/O simulator (`mvdesign-engine`) |
//! | [`core`]    | MVPP construction, view selection, cost evaluation (`mvdesign-core`) |
//! | [`workload`] | the paper's running example, synthetic star schemas (`mvdesign-workload`) |
//! | [`distributed`] | inter-site transfer costs, distributed selection (`mvdesign-distributed`) |
//! | [`warehouse`] | an operational runtime: loads, refreshes, view-routed queries |
//!
//! # Quickstart
//!
//! ```
//! use mvdesign::prelude::*;
//!
//! // The paper's running example: Table 1 + queries Q1–Q4.
//! let scenario = mvdesign::workload::paper_example();
//! let design = Designer::new()
//!     .design(&scenario.catalog, &scenario.workload)
//!     .expect("paper workload is valid");
//!
//! // The designer materializes the two shared joins the paper picks
//! // (its tmp2 = Product⋈σDivision and tmp4 = σOrder⋈Customer).
//! assert_eq!(design.materialized.len(), 2);
//! println!("total cost: {}", design.cost.total);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod warehouse;

pub use mvdesign_algebra as algebra;
pub use mvdesign_catalog as catalog;
pub use mvdesign_core as core;
pub use mvdesign_cost as cost;
pub use mvdesign_distributed as distributed;
pub use mvdesign_engine as engine;
pub use mvdesign_optimizer as optimizer;
pub use mvdesign_workload as workload;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use mvdesign_algebra::{
        parse_query, parse_query_with, AttrRef, CompareOp, Expr, JoinCondition, Predicate, Query,
    };
    pub use mvdesign_catalog::{AttrType, Catalog, RelationStats};
    pub use mvdesign_core::{
        evaluate, generate_mvpps, AnnotatedMvpp, CostBreakdown, Designer, DesignerConfig,
        ExhaustiveSelection, GreedySelection, MaintenanceMode, MaterializeAll, MaterializeNone,
        Mvpp, NodeId, SelectionAlgorithm, SimulatedAnnealing, UpdateWeighting, Workload,
    };
    pub use mvdesign_cost::{CostEstimator, CostModel, EstimationMode, PaperCostModel};
    pub use mvdesign_engine::{execute, measure, Database, Generator, Table};
    pub use mvdesign_optimizer::Planner;
}
