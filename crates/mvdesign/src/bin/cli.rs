//! `mvdesign-cli` — design materialized views from a scenario file.
//!
//! ```text
//! mvdesign-cli design  <scenario.mvd> [--algorithm NAME] [--maintenance shared|isolated]
//!                      [--incremental FRACTION] [--rotations K] [--parallelism N] [--dot]
//! mvdesign-cli explain <scenario.mvd>         # print the annotated MVPP
//! mvdesign-cli validate <scenario.mvd>        # parse + validate only
//! mvdesign-cli example                        # print a starter scenario file
//! ```
//!
//! Algorithms: `greedy` (paper Figure 9, default), `exhaustive`, `genetic`,
//! `annealing`, `random`, `all`, `none`.

use std::collections::BTreeSet;
use std::process::ExitCode;

use mvdesign::core::{
    evaluate, generate_mvpps, AnnotatedMvpp, Designer, DesignerConfig, ExhaustiveSelection,
    GenerateConfig, GeneticSelection, GreedySelection, MaintenanceMode, MaintenancePolicy,
    MaterializeAll, MaterializeNone, RandomSearch, SelectionAlgorithm, SimulatedAnnealing,
    UpdateWeighting,
};
use mvdesign::cost::{CostEstimator, EstimationMode, PaperCostModel};
use mvdesign::optimizer::Planner;
use mvdesign::workload::{parse_scenario, render_catalog, Scenario};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "design" => design(&args[1..]),
        "explain" => explain(&args[1..]),
        "validate" => validate(&args[1..]),
        "example" => {
            print!("{}", example_file());
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: mvdesign-cli <design|explain|validate|example> [scenario.mvd] [options]\n\
     options for `design`:\n\
       --algorithm greedy|exhaustive|genetic|annealing|random|all|none\n\
       --maintenance shared|isolated\n\
       --incremental FRACTION      (delta maintenance instead of recompute)\n\
       --rotations K               (candidate MVPPs to try, default 8)\n\
       --parallelism N             (worker threads for exhaustive/genetic\n\
                                    search: 0 = all cores (default), 1 =\n\
                                    sequential; the result is identical at\n\
                                    any setting)\n\
       --trace                     (print the greedy decision trace)\n\
       --dot                       (also print the chosen MVPP as Graphviz)"
        .to_string()
}

fn load(args: &[String]) -> Result<Scenario, String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && !is_option_value(args, a))
        .ok_or_else(|| format!("missing scenario file\n{}", usage()))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_scenario(&text).map_err(|e| format!("{path}: {e}"))
}

fn is_option_value(args: &[String], candidate: &String) -> bool {
    // A bare word directly after a value-taking option is that option's value.
    let value_options = [
        "--algorithm",
        "--maintenance",
        "--incremental",
        "--rotations",
        "--parallelism",
    ];
    args.iter()
        .zip(args.iter().skip(1))
        .any(|(opt, val)| value_options.contains(&opt.as_str()) && val == candidate)
}

fn option<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn maintenance_mode(args: &[String]) -> Result<MaintenanceMode, String> {
    match option(args, "--maintenance") {
        None | Some("shared") => Ok(MaintenanceMode::SharedRecompute),
        Some("isolated") => Ok(MaintenanceMode::Isolated),
        Some(other) => Err(format!("unknown maintenance mode `{other}`")),
    }
}

fn validate(args: &[String]) -> Result<(), String> {
    let scenario = load(args)?;
    println!(
        "ok: {} relations, {} queries",
        scenario.catalog.len(),
        scenario.workload.len()
    );
    Ok(())
}

fn design(args: &[String]) -> Result<(), String> {
    let scenario = load(args)?;
    let mode = maintenance_mode(args)?;
    let rotations: usize = match option(args, "--rotations") {
        Some(k) => k.parse().map_err(|_| format!("`{k}` is not a number"))?,
        None => 8,
    };
    let policy = match option(args, "--incremental") {
        Some(f) => MaintenancePolicy::Incremental {
            update_fraction: f.parse().map_err(|_| format!("`{f}` is not a number"))?,
        },
        None => MaintenancePolicy::Recompute,
    };

    let parallelism: usize = match option(args, "--parallelism") {
        Some(n) => n.parse().map_err(|_| format!("`{n}` is not a number"))?,
        None => 0,
    };

    let algorithm: Box<dyn SelectionAlgorithm> = match option(args, "--algorithm") {
        None | Some("greedy") => Box::new(GreedySelection::new()),
        Some("exhaustive") => Box::new(ExhaustiveSelection {
            parallelism,
            ..ExhaustiveSelection::default()
        }),
        Some("genetic") => Box::new(GeneticSelection {
            parallelism,
            ..GeneticSelection::default()
        }),
        Some("annealing") => Box::new(SimulatedAnnealing::default()),
        Some("random") => Box::new(RandomSearch::default()),
        Some("all") => Box::new(MaterializeAll),
        Some("none") => Box::new(MaterializeNone),
        Some(other) => return Err(format!("unknown algorithm `{other}`")),
    };

    // Generate candidates once; run the chosen algorithm on each.
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let candidates = generate_mvpps(
        &scenario.workload,
        &est,
        &Planner::new(),
        GenerateConfig {
            max_rotations: rotations,
        },
    );
    let mut best: Option<(AnnotatedMvpp, BTreeSet<_>, f64)> = None;
    for mvpp in candidates {
        let a = AnnotatedMvpp::annotate_with(mvpp, &est, UpdateWeighting::Max, policy);
        let m = algorithm.select(&a, mode);
        let total = evaluate(&a, &m, mode).total;
        if best.as_ref().is_none_or(|(_, _, t)| total < *t) {
            best = Some((a, m, total));
        }
    }
    let (annotated, materialized, _) = best.ok_or("no candidates generated")?;
    let cost = evaluate(&annotated, &materialized, mode);

    println!("algorithm: {}", algorithm.name());
    println!("materialize {} view(s):", materialized.len());
    for id in &materialized {
        let node = annotated.mvpp().node(*id);
        let ann = annotated.annotation(*id);
        println!(
            "  {:<8} build {:>14.0}  read {:>10.0}  {}",
            node.label(),
            ann.ca,
            ann.scan,
            node.expr()
        );
    }
    println!("\ncost per period (block accesses):");
    println!("  query processing {:>16.0}", cost.query_processing);
    println!("  view maintenance {:>16.0}", cost.maintenance);
    println!("  total            {:>16.0}", cost.total);
    println!("\nper query:");
    for (name, c) in &cost.per_query {
        println!("  {name:<16} {c:>16.0}");
    }
    let none = evaluate(&annotated, &BTreeSet::new(), mode);
    if none.total > 0.0 {
        println!(
            "\nvs. no materialization: {:.0} ({:.1}% saved)",
            none.total,
            100.0 * (none.total - cost.total) / none.total
        );
    }
    if flag(args, "--trace") {
        let (_, trace) = GreedySelection::new().run(&annotated);
        println!("\ndecision trace (paper greedy):");
        print!("{}", mvdesign::core::render_trace(&trace, &annotated));
    }
    if flag(args, "--dot") {
        println!("\n{}", annotated.to_dot("design"));
    }
    Ok(())
}

fn explain(args: &[String]) -> Result<(), String> {
    let scenario = load(args)?;
    let design = Designer::with_config(DesignerConfig::default())
        .design(&scenario.catalog, &scenario.workload)
        .map_err(|e| e.to_string())?;
    println!("catalog:\n{}", render_catalog(&scenario.catalog));
    let est = CostEstimator::new(
        &scenario.catalog,
        EstimationMode::Calibrated,
        PaperCostModel::default(),
    );
    let planner = Planner::new();
    for q in scenario.workload.queries() {
        println!("plan for {} (fq={}):", q.name(), q.frequency());
        let optimal = planner.optimize(q.root(), &est);
        print!("{}", mvdesign::cost::explain(&optimal, &est));
        println!();
    }
    println!("chosen MVPP (rotation {}):", design.candidate_index);
    for node in design.mvpp.mvpp().nodes() {
        let ann = design.mvpp.annotation(node.id());
        let marker = if design.materialized.contains(&node.id()) {
            "▣"
        } else if node.is_leaf() {
            "□"
        } else {
            " "
        };
        println!(
            "  {marker} {:<8} Ca={:>14.0} w={:>14.0}  {}",
            node.label(),
            ann.ca,
            ann.weight,
            node.expr().op_label()
        );
    }
    Ok(())
}

fn example_file() -> String {
    format!(
        "# mvdesign scenario — edit and run `mvdesign-cli design this_file`\n\n{}\n\
         query by_city 25 {{\n    SELECT city, SUM(amount) AS total\n    FROM Sales, Stores\n    \
         WHERE Sales.store = Stores.store\n    GROUP BY Stores.city\n}}\n\n\
         query raw_sales 2 {{\n    SELECT city, amount FROM Sales, Stores\n    \
         WHERE Sales.store = Stores.store\n}}\n",
        render_catalog(&example_catalog())
    )
}

fn example_catalog() -> mvdesign::catalog::Catalog {
    use mvdesign::catalog::AttrType;
    let mut c = mvdesign::catalog::Catalog::new();
    c.relation("Stores")
        .attr("store", AttrType::Int)
        .attr("city", AttrType::Text)
        .records(1_000.0)
        .blocks(100.0)
        .update_frequency(0.5)
        .selectivity("city", 0.05)
        .finish()
        .expect("static catalog");
    c.relation("Sales")
        .attr("store", AttrType::Int)
        .attr("amount", AttrType::Int)
        .records(100_000.0)
        .blocks(10_000.0)
        .update_frequency(2.0)
        .finish()
        .expect("static catalog");
    c.set_join_selectivity(
        mvdesign::algebra::AttrRef::new("Sales", "store"),
        mvdesign::algebra::AttrRef::new("Stores", "store"),
        1.0 / 1_000.0,
    )
    .expect("static catalog");
    c
}
