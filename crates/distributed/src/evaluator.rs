//! Cost evaluation with inter-site shipping, and a selection loop that
//! optimizes it.

use std::collections::BTreeSet;

use mvdesign_core::{AnnotatedMvpp, CostBreakdown, MaintenanceMode, MaintenancePolicy, NodeId};

use crate::topology::{Placement, Topology};

/// Whether single-relation selections run at the data's home site (shipping
/// only the filtered blocks) or at the warehouse (shipping the whole base
/// relation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterShipping {
    /// Ship whole base relations; filter at the warehouse.
    #[default]
    AtWarehouse,
    /// Evaluate a leaf's selection at its home site and ship the result.
    AtSource,
}

/// Re-costs materialization choices with data-transfer charges added to the
/// paper's block-access costs.
///
/// Model: queries execute at the warehouse site. Whenever a query (or a view
/// refresh) reads a base relation stored remotely, its blocks are shipped at
/// the topology's per-block link cost. Materialized views are stored at the
/// warehouse, so queries answered from views incur no transfer.
#[derive(Debug, Clone)]
pub struct DistributedEvaluator<'a> {
    annotated: &'a AnnotatedMvpp,
    topology: Topology,
    placement: Placement,
    filter_shipping: FilterShipping,
}

impl<'a> DistributedEvaluator<'a> {
    /// Creates an evaluator over an annotated MVPP.
    pub fn new(
        annotated: &'a AnnotatedMvpp,
        topology: Topology,
        placement: Placement,
        filter_shipping: FilterShipping,
    ) -> Self {
        Self {
            annotated,
            topology,
            placement,
            filter_shipping,
        }
    }

    /// The underlying annotated MVPP.
    pub fn annotated(&self) -> &'a AnnotatedMvpp {
        self.annotated
    }

    /// Blocks shipped to the warehouse when the leaf node `leaf` is read
    /// remotely, already multiplied by the link cost. Zero for local data.
    pub fn leaf_shipping(&self, leaf: NodeId) -> f64 {
        let mvpp = self.annotated.mvpp();
        let node = mvpp.node(leaf);
        debug_assert!(node.is_leaf(), "leaf_shipping called on interior node");
        let rel = node
            .expr()
            .base_relations()
            .into_iter()
            .next()
            .expect("a leaf is a base relation");
        let home = self.placement.home(rel.as_str());
        let link = self.topology.link_cost(home, self.placement.warehouse());
        if link == 0.0 {
            return 0.0;
        }
        let blocks = match self.filter_shipping {
            FilterShipping::AtWarehouse => self.annotated.annotation(leaf).stats.blocks,
            FilterShipping::AtSource => {
                // Ship the smallest single-parent selection over this leaf,
                // if one exists; otherwise the whole relation.
                let mut best = self.annotated.annotation(leaf).stats.blocks;
                for p in node.parents() {
                    let parent = mvpp.node(*p);
                    if matches!(&**parent.expr(), mvdesign_algebra::Expr::Select { .. }) {
                        best = best.min(self.annotated.annotation(*p).stats.blocks);
                    }
                }
                best
            }
        };
        blocks * link
    }

    /// Evaluates the total (processing + maintenance + shipping) cost of
    /// materializing `m`.
    pub fn evaluate(&self, m: &BTreeSet<NodeId>, mode: MaintenanceMode) -> CostBreakdown {
        let mvpp = self.annotated.mvpp();
        let mut per_query = Vec::with_capacity(mvpp.roots().len());
        let mut query_processing = 0.0;
        for (name, fq, root) in mvpp.roots() {
            let mut visited = BTreeSet::new();
            let one = self.walk(m, *root, *root, &mut visited);
            let weighted = fq * one;
            query_processing += weighted;
            per_query.push((name.clone(), weighted));
        }

        let maintenance = match mode {
            MaintenanceMode::Isolated => m
                .iter()
                .filter(|v| !mvpp.node(**v).is_leaf())
                .map(|v| {
                    let ann = self.annotated.annotation(*v);
                    let shipping: f64 = mvpp
                        .descendants(*v)
                        .into_iter()
                        .chain([*v])
                        .filter(|n| mvpp.node(*n).is_leaf())
                        .map(|leaf| self.leaf_shipping(leaf))
                        .sum();
                    ann.fu_weight * (ann.cm + shipping)
                })
                .sum(),
            MaintenanceMode::SharedRecompute => {
                // Mirror the core evaluator exactly: one refresh pass charges
                // every needed operator `fu · op_cost · fraction`, where the
                // policy's work fraction scales the pass down to delta
                // propagation under incremental maintenance, which then also
                // scans each stored view to apply the deltas. Shipping for
                // remotely-stored leaves is scaled by the same fraction (only
                // the delta blocks travel).
                let fraction = self.annotated.maintenance_policy().work_fraction();
                let apply: f64 = match self.annotated.maintenance_policy() {
                    MaintenancePolicy::Recompute => 0.0,
                    MaintenancePolicy::Incremental { .. } => m
                        .iter()
                        .filter(|v| !mvpp.node(**v).is_leaf())
                        .map(|v| {
                            let ann = self.annotated.annotation(*v);
                            ann.fu_weight * ann.scan
                        })
                        .sum(),
                };
                let mut needed: BTreeSet<NodeId> = BTreeSet::new();
                for v in m {
                    if mvpp.node(*v).is_leaf() {
                        continue;
                    }
                    needed.insert(*v);
                    needed.extend(mvpp.descendants(*v));
                }
                needed
                    .into_iter()
                    .map(|n| {
                        let ann = self.annotated.annotation(n);
                        if mvpp.node(n).is_leaf() {
                            ann.fu_weight * self.leaf_shipping(n) * fraction
                        } else {
                            ann.fu_weight * ann.op_cost * fraction
                        }
                    })
                    .sum::<f64>()
                    + apply
            }
        };

        CostBreakdown {
            query_processing: query_processing + 0.0,
            maintenance: maintenance + 0.0,
            total: query_processing + maintenance + 0.0,
            per_query,
        }
    }

    fn walk(
        &self,
        m: &BTreeSet<NodeId>,
        v: NodeId,
        root: NodeId,
        visited: &mut BTreeSet<NodeId>,
    ) -> f64 {
        if !visited.insert(v) {
            return 0.0;
        }
        let node = self.annotated.mvpp().node(v);
        if node.is_leaf() {
            // Remote base relations must be shipped per query execution.
            return self.leaf_shipping(v);
        }
        if v != root && m.contains(&v) {
            return self.annotated.annotation(v).scan;
        }
        if v == root && m.contains(&v) {
            return self.annotated.annotation(v).scan;
        }
        let mut cost = self.annotated.annotation(v).op_cost;
        for c in node.children() {
            cost += self.walk(m, *c, root, visited);
        }
        cost
    }
}

/// Where each materialized view is stored — the placement extension: a view
/// over remote data can live at the data's site (cheap refresh, shipped
/// reads) or at the warehouse (shipped refresh, local reads).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ViewPlacement {
    sites: std::collections::BTreeMap<NodeId, crate::topology::SiteId>,
}

impl ViewPlacement {
    /// Every view at the warehouse.
    pub fn all_at_warehouse() -> Self {
        Self::default()
    }

    /// Assigns one view's site.
    pub fn assign(&mut self, view: NodeId, site: crate::topology::SiteId) {
        self.sites.insert(view, site);
    }

    /// A view's site, defaulting to `warehouse`.
    pub fn site_of(
        &self,
        view: NodeId,
        warehouse: crate::topology::SiteId,
    ) -> crate::topology::SiteId {
        self.sites.get(&view).copied().unwrap_or(warehouse)
    }

    /// Iterates over explicit assignments.
    pub fn iter(&self) -> impl Iterator<Item = (&NodeId, &crate::topology::SiteId)> {
        self.sites.iter()
    }
}

impl<'a> DistributedEvaluator<'a> {
    /// Total cost of materializing `m` with each view stored per
    /// `placement`: queries pay to ship remote views they read, refreshes
    /// pay to ship base inputs to each view's site.
    pub fn evaluate_placed(
        &self,
        m: &BTreeSet<NodeId>,
        placement: &ViewPlacement,
        mode: MaintenanceMode,
    ) -> CostBreakdown {
        let base = self.evaluate(m, mode);
        let wh = self.placement().warehouse();
        let mvpp = self.annotated().mvpp();
        let mut extra_query = 0.0;
        // Per query: which views does its evaluation read?
        for (_, fq, root) in mvpp.roots() {
            for v in self.views_read(m, *root) {
                let site = placement.site_of(v, wh);
                let link = self.topology().link_cost(site, wh);
                extra_query += fq * self.annotated().annotation(v).scan * link;
            }
        }
        // Per view: refresh inputs ship to the view's site instead of the
        // warehouse; recompute the delta versus the base evaluation.
        let mut extra_maintenance = 0.0;
        for v in m {
            if mvpp.node(*v).is_leaf() {
                continue;
            }
            let site = placement.site_of(*v, wh);
            if site == wh {
                continue;
            }
            for leaf in mvpp.descendants(*v) {
                if !mvpp.node(leaf).is_leaf() {
                    continue;
                }
                let ann = self.annotated().annotation(leaf);
                let rel = mvpp
                    .node(leaf)
                    .expr()
                    .base_relations()
                    .into_iter()
                    .next()
                    .expect("leaf is a base relation");
                let home = self.placement().home(rel.as_str());
                let to_site = self.topology().link_cost(home, site);
                let to_wh = self.topology().link_cost(home, wh);
                extra_maintenance += ann.fu_weight * ann.stats.blocks * (to_site - to_wh);
            }
        }
        let query_processing = base.query_processing + extra_query;
        let maintenance = base.maintenance + extra_maintenance;
        CostBreakdown {
            query_processing,
            maintenance,
            total: query_processing + maintenance,
            per_query: base.per_query,
        }
    }

    /// The materialized nodes the query rooted at `root` actually reads.
    pub fn views_read(&self, m: &BTreeSet<NodeId>, root: NodeId) -> BTreeSet<NodeId> {
        let mut reads = BTreeSet::new();
        let mut visited = BTreeSet::new();
        self.collect_reads(m, root, root, &mut visited, &mut reads);
        reads
    }

    fn collect_reads(
        &self,
        m: &BTreeSet<NodeId>,
        v: NodeId,
        root: NodeId,
        visited: &mut BTreeSet<NodeId>,
        reads: &mut BTreeSet<NodeId>,
    ) {
        if !visited.insert(v) {
            return;
        }
        let node = self.annotated().mvpp().node(v);
        if node.is_leaf() {
            return;
        }
        let _ = root;
        if m.contains(&v) {
            reads.insert(v);
            return;
        }
        for c in node.children() {
            self.collect_reads(m, *c, root, visited, reads);
        }
    }

    /// Chooses each view's best site independently: the site minimizing
    /// `Σ fq·scan·link(site, warehouse) + U·Σ ship(input → site)`. With a
    /// fixed read pattern this decomposes per view, so the independent
    /// optimum is the global one.
    pub fn optimal_view_placement(&self, m: &BTreeSet<NodeId>) -> ViewPlacement {
        let wh = self.placement().warehouse();
        let mvpp = self.annotated().mvpp();
        // Read frequency per view.
        let mut read_fq: std::collections::BTreeMap<NodeId, f64> = Default::default();
        for (_, fq, root) in mvpp.roots() {
            for v in self.views_read(m, *root) {
                *read_fq.entry(v).or_insert(0.0) += fq;
            }
        }
        let mut placement = ViewPlacement::all_at_warehouse();
        for v in m {
            if mvpp.node(*v).is_leaf() {
                continue;
            }
            let ann = self.annotated().annotation(*v);
            let fq = read_fq.get(v).copied().unwrap_or(0.0);
            let mut best = (wh, f64::INFINITY);
            for site in self.topology().sites() {
                let mut cost = fq * ann.scan * self.topology().link_cost(site, wh);
                for leaf in mvpp.descendants(*v) {
                    if !mvpp.node(leaf).is_leaf() {
                        continue;
                    }
                    let leaf_ann = self.annotated().annotation(leaf);
                    let rel = mvpp
                        .node(leaf)
                        .expr()
                        .base_relations()
                        .into_iter()
                        .next()
                        .expect("leaf is a base relation");
                    let home = self.placement().home(rel.as_str());
                    cost += leaf_ann.fu_weight
                        * leaf_ann.stats.blocks
                        * self.topology().link_cost(home, site);
                }
                if cost < best.1 {
                    best = (site, cost);
                }
            }
            placement.assign(*v, best.0);
        }
        placement
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The base-relation placement in use.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }
}

/// Marginal-benefit greedy selection over an arbitrary evaluator: repeatedly
/// materialize the interior node whose addition reduces the evaluated total
/// the most, until no addition helps.
///
/// Unlike the paper's Figure 9 (whose weights only see block accesses), this
/// loop optimizes the distributed objective directly, so it notices that
/// materializing a view of remote data also saves its shipping.
#[derive(Debug, Clone, Copy, Default)]
pub struct MarginalGreedy {
    /// Maintenance mode used for the objective.
    pub mode: MaintenanceMode,
}

impl MarginalGreedy {
    /// Runs the loop, returning the chosen set and its cost.
    pub fn run(&self, eval: &DistributedEvaluator<'_>) -> (BTreeSet<NodeId>, CostBreakdown) {
        let candidates = eval.annotated().mvpp().interior();
        let mut m = BTreeSet::new();
        let mut best = eval.evaluate(&m, self.mode);
        loop {
            let mut improvement: Option<(NodeId, CostBreakdown)> = None;
            for v in &candidates {
                if m.contains(v) {
                    continue;
                }
                let mut trial = m.clone();
                trial.insert(*v);
                let cost = eval.evaluate(&trial, self.mode);
                if cost.total < best.total
                    && improvement
                        .as_ref()
                        .is_none_or(|(_, c)| cost.total < c.total)
                {
                    improvement = Some((*v, cost));
                }
            }
            match improvement {
                Some((v, cost)) => {
                    m.insert(v);
                    best = cost;
                }
                None => return (m, best),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{AttrRef, CompareOp, Expr, JoinCondition, Predicate};
    use mvdesign_catalog::{AttrType, Catalog};
    use mvdesign_core::{evaluate, AnnotatedMvpp, GreedySelection, Mvpp, UpdateWeighting};
    use mvdesign_cost::{CostEstimator, EstimationMode, PaperCostModel};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("R")
            .attr("k", AttrType::Int)
            .attr("x", AttrType::Int)
            .records(10_000.0)
            .blocks(1_000.0)
            .update_frequency(1.0)
            .selectivity("x", 0.1)
            .finish()
            .unwrap();
        c.relation("S")
            .attr("k", AttrType::Int)
            .records(10_000.0)
            .blocks(1_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.set_join_selectivity(AttrRef::new("R", "k"), AttrRef::new("S", "k"), 1e-4)
            .unwrap();
        c
    }

    fn annotated(c: &Catalog) -> AnnotatedMvpp {
        let join = Expr::join(
            Expr::base("R"),
            Expr::base("S"),
            JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k")),
        );
        let filtered = Expr::select(
            join.clone(),
            Predicate::cmp(AttrRef::new("R", "x"), CompareOp::Eq, 5),
        );
        let mut m = Mvpp::new();
        m.insert_query("Q1", 10.0, &join);
        m.insert_query("Q2", 2.0, &filtered);
        let est = CostEstimator::new(c, EstimationMode::Analytic, PaperCostModel::default());
        AnnotatedMvpp::annotate(m, &est, UpdateWeighting::Max)
    }

    fn remote_setup(t_cost: f64) -> (Topology, Placement) {
        let topo = Topology::uniform(2, t_cost);
        let mut placement = Placement::new(topo.site(0).unwrap());
        placement.assign("R", topo.site(1).unwrap());
        placement.assign("S", topo.site(1).unwrap());
        (topo, placement)
    }

    #[test]
    fn zero_link_cost_matches_centralized_evaluation() {
        let c = catalog();
        let a = annotated(&c);
        let (topo, placement) = remote_setup(0.0);
        let eval = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtWarehouse);
        for m in [BTreeSet::new(), a.mvpp().interior().into_iter().collect()] {
            let central = evaluate(&a, &m, MaintenanceMode::SharedRecompute);
            let dist = eval.evaluate(&m, MaintenanceMode::SharedRecompute);
            assert!((central.total - dist.total).abs() < 1e-9);
        }
    }

    #[test]
    fn remote_data_makes_unmaterialized_queries_costlier() {
        let c = catalog();
        let a = annotated(&c);
        let (topo, placement) = remote_setup(4.0);
        let eval = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtWarehouse);
        let none = BTreeSet::new();
        let central = evaluate(&a, &none, MaintenanceMode::SharedRecompute);
        let dist = eval.evaluate(&none, MaintenanceMode::SharedRecompute);
        // Q1 and Q2 each ship R and S once per execution: (10+2)·(1000+1000)·4.
        assert!((dist.total - central.total - 96_000.0).abs() < 1e-6);
    }

    #[test]
    fn materialized_views_absorb_shipping() {
        let c = catalog();
        let a = annotated(&c);
        let (topo, placement) = remote_setup(4.0);
        let eval = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtWarehouse);
        let join_id = a.mvpp().interior()[0];
        let m: BTreeSet<_> = [join_id].into();
        let cost = eval.evaluate(&m, MaintenanceMode::SharedRecompute);
        // One refresh ships both relations once; queries ship nothing.
        let central = evaluate(&a, &m, MaintenanceMode::SharedRecompute);
        assert!((cost.total - central.total - 8_000.0).abs() < 1e-6);
    }

    #[test]
    fn marginal_greedy_materializes_more_when_data_is_remote() {
        let c = catalog();
        let a = annotated(&c);
        // Expensive links: materialization pays for itself via shipping.
        let (topo, placement) = remote_setup(50.0);
        let eval = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtWarehouse);
        let (m, cost) = MarginalGreedy::default().run(&eval);
        assert!(!m.is_empty());
        let none = eval.evaluate(&BTreeSet::new(), MaintenanceMode::SharedRecompute);
        assert!(cost.total < none.total);
    }

    #[test]
    fn at_source_filtering_ships_no_more_than_at_warehouse() {
        let c = catalog();
        // Query selects on R.x, so σ can run at R's home site.
        let sel = Expr::select(
            Expr::base("R"),
            Predicate::cmp(AttrRef::new("R", "x"), CompareOp::Eq, 5),
        );
        let mut mv = Mvpp::new();
        mv.insert_query("Q", 1.0, &sel);
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        let a = AnnotatedMvpp::annotate(mv, &est, UpdateWeighting::Max);
        let (topo, placement) = remote_setup(4.0);
        let warehouse = DistributedEvaluator::new(
            &a,
            topo.clone(),
            placement.clone(),
            FilterShipping::AtWarehouse,
        );
        let source = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtSource);
        let m = BTreeSet::new();
        let cw = warehouse
            .evaluate(&m, MaintenanceMode::SharedRecompute)
            .total;
        let cs = source.evaluate(&m, MaintenanceMode::SharedRecompute).total;
        assert!(cs < cw, "source {cs} should beat warehouse {cw}");
    }

    #[test]
    fn marginal_greedy_never_loses_to_paper_greedy_on_its_own_objective() {
        let c = catalog();
        let a = annotated(&c);
        let (topo, placement) = remote_setup(10.0);
        let eval = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtWarehouse);
        let (_, marginal_cost) = MarginalGreedy::default().run(&eval);
        let (paper_set, _) = GreedySelection::new().run(&a);
        let paper_cost = eval.evaluate(&paper_set, MaintenanceMode::SharedRecompute);
        assert!(marginal_cost.total <= paper_cost.total + 1e-9);
    }

    #[test]
    fn placement_at_warehouse_matches_unplaced_evaluation() {
        let c = catalog();
        let a = annotated(&c);
        let (topo, placement) = remote_setup(4.0);
        let eval = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtWarehouse);
        let m: BTreeSet<_> = [a.mvpp().interior()[0]].into();
        let base = eval.evaluate(&m, MaintenanceMode::SharedRecompute);
        let placed = eval.evaluate_placed(
            &m,
            &ViewPlacement::all_at_warehouse(),
            MaintenanceMode::SharedRecompute,
        );
        assert!((base.total - placed.total).abs() < 1e-9);
    }

    #[test]
    fn optimal_placement_never_loses_to_warehouse_only() {
        let c = catalog();
        let a = annotated(&c);
        let (topo, placement) = remote_setup(8.0);
        let eval = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtWarehouse);
        let m: BTreeSet<_> = a.mvpp().interior().into_iter().collect();
        let best = eval.optimal_view_placement(&m);
        let placed = eval
            .evaluate_placed(&m, &best, MaintenanceMode::SharedRecompute)
            .total;
        let warehouse_only = eval
            .evaluate_placed(
                &m,
                &ViewPlacement::all_at_warehouse(),
                MaintenanceMode::SharedRecompute,
            )
            .total;
        assert!(placed <= warehouse_only + 1e-9);
    }

    #[test]
    fn rarely_read_views_move_to_their_data() {
        // One view over remote data, read rarely but refreshed often: the
        // optimal placement stores it at the data's site.
        let c = {
            let mut c = catalog();
            c.set_update_frequency("R", 50.0).expect("known relation");
            c.set_update_frequency("S", 50.0).expect("known relation");
            c
        };
        let join = mvdesign_algebra::Expr::join(
            mvdesign_algebra::Expr::base("R"),
            mvdesign_algebra::Expr::base("S"),
            mvdesign_algebra::JoinCondition::on(
                mvdesign_algebra::AttrRef::new("R", "k"),
                mvdesign_algebra::AttrRef::new("S", "k"),
            ),
        );
        let mut mv = mvdesign_core::Mvpp::new();
        mv.insert_query("Q", 0.1, &join);
        let est = mvdesign_cost::CostEstimator::new(
            &c,
            mvdesign_cost::EstimationMode::Analytic,
            mvdesign_cost::PaperCostModel::default(),
        );
        let a = AnnotatedMvpp::annotate(mv, &est, mvdesign_core::UpdateWeighting::Max);
        let (topo, placement) = remote_setup(5.0);
        let data_site = topo.site(1).expect("site 1");
        let eval = DistributedEvaluator::new(&a, topo, placement, FilterShipping::AtWarehouse);
        let m: BTreeSet<_> = a.mvpp().interior().into_iter().collect();
        let best = eval.optimal_view_placement(&m);
        let join_id = a.mvpp().interior()[0];
        assert_eq!(
            best.site_of(join_id, eval.placement().warehouse()),
            data_site,
            "refresh-heavy view should co-locate with its inputs"
        );
    }
}
