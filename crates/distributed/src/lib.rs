//! Distributed-warehouse extension: data-transfer costs between sites.
//!
//! The paper notes (§4.1) that "in the distributed data warehouse
//! environment, the cost `C` should incorporate the costs of data
//! transferring among different sites as well". This crate supplies that
//! extension:
//!
//! * [`Topology`] — sites and per-block transfer costs between them;
//! * [`Placement`] — which site stores each base relation, and where the
//!   warehouse (where views are materialized and queries run) lives;
//! * [`DistributedEvaluator`] — re-costs any materialization choice with
//!   shipping added: every query execution ships the base relations it still
//!   reads remotely, every view refresh ships the updated inputs, and
//!   materialized views live at the warehouse so reading them is free of
//!   transfer;
//! * [`MarginalGreedy`] — a marginal-benefit selection loop that optimizes
//!   the distributed objective directly (the paper's Figure-9 weights do not
//!   see shipping).
//!
//! # Example
//!
//! ```
//! use mvdesign_distributed::{Placement, Topology};
//!
//! let topo = Topology::uniform(3, 2.0); // 3 sites, 2 block-cost per hop
//! let mut placement = Placement::new(topo.site(0).unwrap());
//! placement.assign("Orders", topo.site(1).unwrap());
//! assert_eq!(placement.warehouse(), topo.site(0).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod evaluator;
mod topology;

pub use crate::evaluator::{DistributedEvaluator, FilterShipping, MarginalGreedy, ViewPlacement};
pub use crate::topology::{Placement, SiteId, Topology};
