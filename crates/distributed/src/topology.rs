//! Sites, link costs and relation placement.

use std::collections::BTreeMap;
use std::fmt;

use mvdesign_catalog::RelName;

/// Identifier of a site within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(usize);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// A set of sites with pairwise per-block transfer costs.
///
/// Costs are directed (`cost(a→b)` may differ from `cost(b→a)`) and
/// `cost(a→a) = 0` always.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    cost: Vec<Vec<f64>>,
}

impl Topology {
    /// A topology of `n` sites where every remote transfer costs
    /// `cost_per_block` per block.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the cost is negative/not finite.
    pub fn uniform(n: usize, cost_per_block: f64) -> Self {
        assert!(n > 0, "a topology needs at least one site");
        assert!(
            cost_per_block.is_finite() && cost_per_block >= 0.0,
            "transfer cost must be finite and non-negative"
        );
        let cost = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| if i == j { 0.0 } else { cost_per_block })
                    .collect()
            })
            .collect();
        Self { cost }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.cost.len()
    }

    /// Whether the topology is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cost.is_empty()
    }

    /// The `i`-th site, if it exists.
    pub fn site(&self, i: usize) -> Option<SiteId> {
        (i < self.len()).then_some(SiteId(i))
    }

    /// All sites.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.len()).map(SiteId)
    }

    /// Per-block cost of shipping from `from` to `to`.
    pub fn link_cost(&self, from: SiteId, to: SiteId) -> f64 {
        self.cost[from.0][to.0]
    }

    /// Overrides one directed link cost.
    ///
    /// # Panics
    ///
    /// Panics if the cost is negative/not finite, or when setting a
    /// non-zero self-link.
    pub fn set_link_cost(&mut self, from: SiteId, to: SiteId, cost: f64) {
        assert!(cost.is_finite() && cost >= 0.0, "invalid link cost {cost}");
        assert!(from != to || cost == 0.0, "self-links must cost zero");
        self.cost[from.0][to.0] = cost;
    }
}

/// Where each base relation lives, and where the warehouse is.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    warehouse: SiteId,
    homes: BTreeMap<RelName, SiteId>,
}

impl Placement {
    /// Creates a placement with every relation defaulting to the warehouse
    /// site (i.e. local until assigned elsewhere).
    pub fn new(warehouse: SiteId) -> Self {
        Self {
            warehouse,
            homes: BTreeMap::new(),
        }
    }

    /// The warehouse site — views are materialized and queries run here.
    pub fn warehouse(&self) -> SiteId {
        self.warehouse
    }

    /// Assigns a relation's home site.
    pub fn assign(&mut self, relation: impl Into<RelName>, site: SiteId) {
        self.homes.insert(relation.into(), site);
    }

    /// A relation's home site (the warehouse when unassigned).
    pub fn home(&self, relation: &str) -> SiteId {
        self.homes.get(relation).copied().unwrap_or(self.warehouse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_topology_has_zero_diagonal() {
        let t = Topology::uniform(3, 5.0);
        for a in t.sites() {
            for b in t.sites() {
                let c = t.link_cost(a, b);
                if a == b {
                    assert_eq!(c, 0.0);
                } else {
                    assert_eq!(c, 5.0);
                }
            }
        }
    }

    #[test]
    fn link_costs_can_be_asymmetric() {
        let mut t = Topology::uniform(2, 1.0);
        let (a, b) = (t.site(0).unwrap(), t.site(1).unwrap());
        t.set_link_cost(a, b, 3.0);
        assert_eq!(t.link_cost(a, b), 3.0);
        assert_eq!(t.link_cost(b, a), 1.0);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn nonzero_self_link_panics() {
        let mut t = Topology::uniform(2, 1.0);
        let a = t.site(0).unwrap();
        t.set_link_cost(a, a, 1.0);
    }

    #[test]
    fn placement_defaults_to_warehouse() {
        let t = Topology::uniform(2, 1.0);
        let mut p = Placement::new(t.site(0).unwrap());
        assert_eq!(p.home("Orders"), t.site(0).unwrap());
        p.assign("Orders", t.site(1).unwrap());
        assert_eq!(p.home("Orders"), t.site(1).unwrap());
    }

    #[test]
    fn site_lookup_bounds() {
        let t = Topology::uniform(2, 1.0);
        assert!(t.site(1).is_some());
        assert!(t.site(2).is_none());
    }
}
