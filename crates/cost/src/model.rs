//! Operator cost models, all measured in block accesses.

use std::fmt::Debug;

use mvdesign_catalog::RelationStats;

/// A cost model assigns a block-access cost to each physical operator.
///
/// Implementations must be cheap to call — the view-selection search costs
/// the same nodes many times.
pub trait CostModel: Debug {
    /// Cost of a selection scanning `input` and writing `output`.
    fn select(&self, input: &RelationStats, output: &RelationStats) -> f64;

    /// Cost of a projection scanning `input` and writing `output`.
    fn project(&self, input: &RelationStats, output: &RelationStats) -> f64;

    /// Cost of joining `left` (outer) with `right` (inner), producing
    /// `output`.
    fn join(&self, left: &RelationStats, right: &RelationStats, output: &RelationStats) -> f64;

    /// Cost of an *indexed* selection: probe the index (logarithmic in the
    /// input blocks) and fetch only the matching blocks.
    fn indexed_select(&self, input: &RelationStats, output: &RelationStats) -> f64 {
        let probe = if input.blocks > 1.0 {
            input.blocks.log2().ceil()
        } else {
            1.0
        };
        probe + output.blocks
    }

    /// Cost of a hash aggregation scanning `input` and writing `output`.
    ///
    /// The default charges one pass over the input plus the output write —
    /// a single-pass hash aggregate, consistent with the linear-scan flavour
    /// of the paper's model.
    fn aggregate(&self, input: &RelationStats, output: &RelationStats) -> f64 {
        input.blocks + output.blocks
    }

    /// Cost of reading a materialized relation with these statistics.
    fn scan(&self, stats: &RelationStats) -> f64 {
        stats.blocks
    }
}

/// The paper's cost model (§2): selections and projections are linear
/// scans, joins are naive nested loops reading `b(L) · b(R)` block pairs and
/// writing the result.
///
/// `write_output` controls whether operators are charged for writing their
/// result blocks; the paper's arithmetic includes the output term (Table 1's
/// joint block counts appear in the node costs of Figure 3), so it defaults
/// to `true`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperCostModel {
    /// Charge operators for writing their output blocks.
    pub write_output: bool,
}

impl Default for PaperCostModel {
    fn default() -> Self {
        Self { write_output: true }
    }
}

impl PaperCostModel {
    fn out(&self, output: &RelationStats) -> f64 {
        if self.write_output {
            output.blocks
        } else {
            0.0
        }
    }
}

impl CostModel for PaperCostModel {
    fn select(&self, input: &RelationStats, _output: &RelationStats) -> f64 {
        input.blocks
    }

    fn project(&self, input: &RelationStats, _output: &RelationStats) -> f64 {
        input.blocks
    }

    fn join(&self, left: &RelationStats, right: &RelationStats, output: &RelationStats) -> f64 {
        left.blocks * right.blocks + self.out(output)
    }
}

/// Block nested-loop join with `buffer_pages` pages of memory for the outer:
/// `b(L) + ⌈b(L)/(B−2)⌉ · b(R) + b(out)`.
///
/// An ablation model: with a realistic buffer the crossover points of the
/// paper's example move, which the `bench` crate measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NestedLoopCostModel {
    /// Number of buffer pages available (must be ≥ 3).
    pub buffer_pages: u32,
}

impl Default for NestedLoopCostModel {
    fn default() -> Self {
        Self { buffer_pages: 64 }
    }
}

impl CostModel for NestedLoopCostModel {
    fn select(&self, input: &RelationStats, _output: &RelationStats) -> f64 {
        input.blocks
    }

    fn project(&self, input: &RelationStats, _output: &RelationStats) -> f64 {
        input.blocks
    }

    fn join(&self, left: &RelationStats, right: &RelationStats, output: &RelationStats) -> f64 {
        let b = f64::from(self.buffer_pages.max(3)) - 2.0;
        let passes = (left.blocks / b).ceil().max(1.0);
        left.blocks + passes * right.blocks + output.blocks
    }
}

/// Sort-merge join: `b(L)·log₂b(L) + b(R)·log₂b(R) + b(L) + b(R) + b(out)`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SortMergeCostModel;

impl CostModel for SortMergeCostModel {
    fn select(&self, input: &RelationStats, _output: &RelationStats) -> f64 {
        input.blocks
    }

    fn project(&self, input: &RelationStats, _output: &RelationStats) -> f64 {
        input.blocks
    }

    fn join(&self, left: &RelationStats, right: &RelationStats, output: &RelationStats) -> f64 {
        let sort = |b: f64| if b > 1.0 { b * b.log2() } else { 0.0 };
        sort(left.blocks) + sort(right.blocks) + left.blocks + right.blocks + output.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(records: f64, blocks: f64) -> RelationStats {
        RelationStats::new(records, blocks)
    }

    #[test]
    fn paper_join_is_block_product_plus_output() {
        let m = PaperCostModel::default();
        // Order (6k blocks) ⋈ Customer (2k blocks) → 5k output blocks: the
        // 12.005M block accesses behind the paper's `Ca(tmp4) ≈ 12.03M`.
        let c = m.join(
            &st(50_000.0, 6_000.0),
            &st(20_000.0, 2_000.0),
            &st(25_000.0, 5_000.0),
        );
        assert_eq!(c, 12_005_000.0);
    }

    #[test]
    fn paper_select_is_linear_scan() {
        let m = PaperCostModel::default();
        assert_eq!(m.select(&st(5_000.0, 500.0), &st(100.0, 10.0)), 500.0);
    }

    #[test]
    fn write_output_toggle() {
        let m = PaperCostModel {
            write_output: false,
        };
        let c = m.join(&st(10.0, 1.0), &st(10.0, 1.0), &st(100.0, 10.0));
        assert_eq!(c, 1.0);
    }

    #[test]
    fn scan_reads_all_blocks() {
        let m = PaperCostModel::default();
        assert_eq!(m.scan(&st(30_000.0, 5_000.0)), 5_000.0);
    }

    #[test]
    fn buffered_nested_loop_beats_naive() {
        let naive = PaperCostModel::default();
        let buffered = NestedLoopCostModel { buffer_pages: 102 };
        let l = st(10_000.0, 1_000.0);
        let r = st(10_000.0, 1_000.0);
        let out = st(100.0, 10.0);
        assert!(buffered.join(&l, &r, &out) < naive.join(&l, &r, &out));
    }

    #[test]
    fn buffered_handles_tiny_buffers() {
        let m = NestedLoopCostModel { buffer_pages: 0 };
        // Clamped to 3 pages → 1 outer page at a time.
        let c = m.join(&st(20.0, 2.0), &st(10.0, 1.0), &st(0.0, 0.0));
        assert_eq!(c, 2.0 + 2.0 * 1.0);
    }

    #[test]
    fn sort_merge_handles_single_block_inputs() {
        let m = SortMergeCostModel;
        let c = m.join(&st(10.0, 1.0), &st(10.0, 1.0), &st(10.0, 1.0));
        assert_eq!(c, 3.0); // no sort cost at 1 block, read both, write one
    }
}
