//! Cardinality estimation and block-access cost models.
//!
//! The paper costs every operator in *block accesses* against a simple
//! storage model: selections are linear scans, joins are nested loops, and
//! materialized views are read by scanning their blocks. This crate provides:
//!
//! * [`CostModel`] — the operator-cost interface, with the paper's model
//!   ([`PaperCostModel`]) plus buffered nested-loop and sort-merge
//!   alternatives for ablation studies;
//! * [`CardinalityEstimator`] — derives [`RelationStats`] for every
//!   subexpression, either purely from selectivities
//!   ([`EstimationMode::Analytic`]) or honouring the catalog's stated
//!   joint sizes the way the paper's Table 1 does
//!   ([`EstimationMode::Calibrated`]);
//! * [`CostEstimator`] — combines both to give per-operator and whole-tree
//!   costs (`Ca(v)` in the paper's notation).
//!
//! Estimates are memoised per *semantic-equivalence class*: the estimator
//! interns every expression into an
//! [`ExprArena`](mvdesign_algebra::ExprArena) and keeps one dense
//! `Vec<Option<RelationStats>>` indexed by
//! [`ExprId`](mvdesign_algebra::ExprId). (Earlier revisions layered a
//! thread-local pointer map over string-keyed hash buckets; the arena
//! replaces both.) The cache sits behind a mutex, so a single estimator is
//! `Sync` and can be shared by reference across search worker threads — all
//! of them warm, and profit from, the same cache.
//!
//! # Example
//!
//! ```
//! use mvdesign_algebra::{Expr, Predicate, CompareOp, AttrRef};
//! use mvdesign_catalog::{AttrType, Catalog};
//! use mvdesign_cost::{CostEstimator, EstimationMode, PaperCostModel};
//!
//! let mut catalog = Catalog::new();
//! catalog.relation("Division")
//!     .attr("city", AttrType::Text)
//!     .records(5_000.0).blocks(500.0)
//!     .selectivity("city", 0.02)
//!     .finish()?;
//! let est = CostEstimator::new(&catalog, EstimationMode::Analytic, PaperCostModel::default());
//! let tmp1 = Expr::select(
//!     Expr::base("Division"),
//!     Predicate::cmp(AttrRef::new("Division", "city"), CompareOp::Eq, "LA"),
//! );
//! assert_eq!(est.tree_cost(&tmp1), 500.0);   // one linear scan of Division
//! assert_eq!(est.stats(&tmp1).records, 100.0); // 2% survive
//! # Ok::<(), mvdesign_catalog::CatalogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimate;
mod explain;
mod model;

pub use crate::estimate::{CardinalityEstimator, CostEstimator, EstimationMode};
pub use crate::explain::explain;
pub use crate::model::{CostModel, NestedLoopCostModel, PaperCostModel, SortMergeCostModel};

pub use mvdesign_catalog::RelationStats;
