//! Cardinality estimation for SPJ expressions.

use std::collections::HashSet;
use std::sync::{Arc, Mutex, MutexGuard};

use mvdesign_algebra::{output_attrs, Expr, ExprArena, ExprId, Predicate, Rhs};
use mvdesign_catalog::{Catalog, RelationStats};

use crate::model::CostModel;

/// How joint sizes are estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimationMode {
    /// Derive every size from selectivities (independence assumptions).
    Analytic,
    /// Like `Analytic`, but a join whose set of base relations has a stated
    /// joint size in the catalog uses that size (scaled by the selection
    /// selectivities applied below the join). This reproduces how the paper
    /// reads joint sizes straight out of Table 1.
    #[default]
    Calibrated,
}

/// The one stats cache: an [`ExprArena`] interning every estimated
/// expression plus a dense vector of per-class results indexed by
/// [`ExprId`]. Interning folds join commutativity/associativity and the
/// other `semantic_key` normalisations away, so semantically equal
/// expressions share one slot by construction.
#[derive(Debug, Default)]
struct StatsCache {
    arena: ExprArena,
    stats: Vec<Option<RelationStats>>,
}

/// Estimates output statistics (records/blocks) for every subexpression.
///
/// Estimates are memoised per semantic-equivalence class in a single
/// arena-indexed cache behind a mutex, which makes the estimator [`Sync`]: one
/// estimator can be shared by reference across worker threads (the
/// `Designer` fan-out does exactly that), and every thread hits the same
/// warm cache. Re-estimating a shared `Arc` costs one pointer-map probe
/// inside the arena; a structurally fresh duplicate costs one bottom-up
/// intern — never an O(n²) key-string build.
#[derive(Debug)]
pub struct CardinalityEstimator<'c> {
    catalog: &'c Catalog,
    mode: EstimationMode,
    cache: Mutex<StatsCache>,
}

impl<'c> CardinalityEstimator<'c> {
    /// Creates an estimator over a catalog.
    pub fn new(catalog: &'c Catalog, mode: EstimationMode) -> Self {
        Self {
            catalog,
            mode,
            cache: Mutex::new(StatsCache::default()),
        }
    }

    /// The catalog this estimator reads.
    pub fn catalog(&self) -> &'c Catalog {
        self.catalog
    }

    /// Locks the cache; a panic while holding the lock can only leave whole,
    /// valid entries behind, so a poisoned mutex is safe to adopt.
    fn cache(&self) -> MutexGuard<'_, StatsCache> {
        self.cache.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Interns `expr`'s semantic-equivalence class in the shared cache and
    /// returns its dense id (stable for this estimator's lifetime).
    pub fn class_of(&self, expr: &Arc<Expr>) -> ExprId {
        self.cache().arena.intern(expr)
    }

    /// Number of distinct semantic classes interned so far.
    pub fn interned_classes(&self) -> usize {
        self.cache().arena.len()
    }

    /// Estimated statistics of the expression's result.
    ///
    /// Unknown base relations estimate as empty; run
    /// [`mvdesign_algebra::output_attrs`] first if you want hard errors.
    pub fn stats(&self, expr: &Arc<Expr>) -> RelationStats {
        let mut cache = self.cache();
        let id = cache.arena.intern(expr);
        if let Some(Some(hit)) = cache.stats.get(id.index()) {
            return *hit;
        }
        // Fill every missing class bottom-up along the memoized postorder —
        // children strictly precede parents, so each step reads only
        // already-present slots and the lock is never re-entered.
        let StatsCache { arena, stats } = &mut *cache;
        stats.resize(arena.len(), None);
        for &step in arena.postorder(id) {
            if stats[step.index()].is_none() {
                stats[step.index()] =
                    Some(compute_class(self.catalog, self.mode, arena, stats, step));
            }
        }
        stats[id.index()].expect("postorder ends at the requested class")
    }
}

/// Computes one class's statistics from its representative expression and
/// its children's already-cached statistics.
fn compute_class(
    catalog: &Catalog,
    mode: EstimationMode,
    arena: &ExprArena,
    stats: &[Option<RelationStats>],
    id: ExprId,
) -> RelationStats {
    let of = |child: ExprId| stats[child.index()].expect("children computed before parents");
    let expr = arena.expr(id);
    let children = arena.children(id);
    match &**expr {
        Expr::Base(name) => catalog
            .stats(name.as_str())
            .copied()
            .unwrap_or_else(RelationStats::empty),
        Expr::Select { predicate, .. } => {
            let s = predicate.selectivity(catalog);
            of(children[0]).scaled(s)
        }
        Expr::Project { input, attrs } => {
            let in_stats = of(children[0]);
            // Projection keeps every record but narrows tuples: blocks
            // shrink with the kept-attribute fraction.
            let ratio = match output_attrs(input, catalog) {
                Ok(avail) if !avail.is_empty() => {
                    (attrs.len() as f64 / avail.len() as f64).clamp(0.0, 1.0)
                }
                _ => 1.0,
            };
            RelationStats::new(in_stats.records, in_stats.blocks * ratio)
        }
        Expr::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let in_stats = of(children[0]);
            // Number of groups: bounded by the product of the grouping
            // attributes' domain sizes (the reciprocal of a registered
            // equality selectivity is the domain-size proxy used across
            // the workspace) and by the input cardinality itself.
            let mut groups = 1.0_f64;
            for g in group_by {
                let s = catalog.selectivity(g.relation.as_str(), g.attr.as_str());
                let domain = if s > 0.0 { 1.0 / s } else { in_stats.records };
                groups *= domain.max(1.0);
                if groups > in_stats.records {
                    break;
                }
            }
            let records =
                groups
                    .min(in_stats.records)
                    .max(if in_stats.records > 0.0 { 1.0 } else { 0.0 });
            // Output tuples carry the group keys plus one value per
            // aggregate; approximate the width by the kept-attribute
            // fraction, as projection does.
            let width_attrs = (group_by.len() + aggs.len()).max(1) as f64;
            let in_arity = match output_attrs(input, catalog) {
                Ok(avail) if !avail.is_empty() => avail.len() as f64,
                _ => width_attrs,
            };
            let ratio = (width_attrs / in_arity).clamp(0.0, 1.0);
            let per_block = in_stats.blocking_factor() / ratio.max(1e-9);
            RelationStats::new(records, records / per_block.max(1.0))
        }
        Expr::Join { on, .. } => {
            if mode == EstimationMode::Calibrated {
                if let Some(o) = catalog.size_override(&expr.base_relations()) {
                    let s = subtree_selection_selectivity(expr, catalog);
                    return o.stats.scaled(s);
                }
            }
            let l = of(children[0]);
            let r = of(children[1]);
            let js: f64 = if on.is_cross() {
                1.0
            } else {
                on.pairs()
                    .iter()
                    .map(|(a, b)| catalog.join_selectivity_or_default(a, b))
                    .product()
            };
            // Saturate instead of overflowing: astronomically large (but
            // valid) inputs would otherwise push the product to ∞ and
            // panic `RelationStats::new`.
            let records = (l.records * r.records * js).min(f64::MAX);
            // Output tuples are as wide as both inputs together; widths
            // are the reciprocal blocking factors.
            let width = 1.0 / l.blocking_factor() + 1.0 / r.blocking_factor();
            RelationStats::new(records, (records * width).min(f64::MAX))
        }
    }
}

/// Whether a predicate can be answered entirely through declared indexes:
/// a comparison against a literal on an indexed attribute, or a conjunction
/// of such comparisons.
fn indexable(p: &Predicate, catalog: &Catalog) -> bool {
    match p {
        Predicate::True => false,
        Predicate::Cmp(c) => {
            matches!(c.rhs, Rhs::Literal(_))
                && catalog.has_index(c.attr.relation.as_str(), c.attr.attr.as_str())
        }
        Predicate::And(ps) => ps.iter().all(|p| indexable(p, catalog)),
        Predicate::Or(_) => false,
    }
}

/// Product of the selectivities of every selection in the subtree.
fn subtree_selection_selectivity(expr: &Arc<Expr>, catalog: &Catalog) -> f64 {
    let own = match &**expr {
        Expr::Select { predicate, .. } => predicate.selectivity(catalog),
        _ => 1.0,
    };
    expr.children()
        .iter()
        .map(|c| subtree_selection_selectivity(c, catalog))
        .product::<f64>()
        * own
}

/// Combines a [`CardinalityEstimator`] with a [`CostModel`] to cost
/// operators and whole plans.
#[derive(Debug)]
pub struct CostEstimator<'c, M> {
    cards: CardinalityEstimator<'c>,
    model: M,
}

impl<'c, M: CostModel> CostEstimator<'c, M> {
    /// Creates a cost estimator.
    pub fn new(catalog: &'c Catalog, mode: EstimationMode, model: M) -> Self {
        Self {
            cards: CardinalityEstimator::new(catalog, mode),
            model,
        }
    }

    /// The underlying cardinality estimator.
    pub fn cardinalities(&self) -> &CardinalityEstimator<'c> {
        &self.cards
    }

    /// The cost model in use.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Estimated output statistics of an expression.
    pub fn stats(&self, expr: &Arc<Expr>) -> RelationStats {
        self.cards.stats(expr)
    }

    /// Cost of evaluating *this operator only*, assuming its inputs are
    /// already available (materialized or piped in). Zero for base leaves.
    pub fn op_cost(&self, expr: &Arc<Expr>) -> f64 {
        let out = self.stats(expr);
        match &**expr {
            Expr::Base(_) => 0.0,
            Expr::Select { input, predicate } => {
                let in_stats = self.stats(input);
                if input.is_base() && indexable(predicate, self.cards.catalog()) {
                    self.model.indexed_select(&in_stats, &out)
                } else {
                    self.model.select(&in_stats, &out)
                }
            }
            Expr::Project { input, .. } => self.model.project(&self.stats(input), &out),
            Expr::Join { left, right, .. } => {
                self.model.join(&self.stats(left), &self.stats(right), &out)
            }
            Expr::Aggregate { input, .. } => self.model.aggregate(&self.stats(input), &out),
        }
    }

    /// Cost of computing the expression from base relations — the paper's
    /// `Ca(v)`.
    ///
    /// Semantically identical subtrees are charged **once** (a tree that
    /// uses `σ city='LA' (Division)` twice recomputes it once), matching the
    /// DAG semantics of an MVPP.
    pub fn tree_cost(&self, expr: &Arc<Expr>) -> f64 {
        let mut seen = HashSet::new();
        self.tree_cost_inner(expr, &mut seen)
    }

    fn tree_cost_inner(&self, expr: &Arc<Expr>, seen: &mut HashSet<ExprId>) -> f64 {
        // Equivalence classes come from the shared arena, so "seen" means
        // "semantically identical", not merely "same allocation".
        if !seen.insert(self.cards.class_of(expr)) {
            return 0.0;
        }
        let mut total = self.op_cost(expr);
        for c in expr.children() {
            total += self.tree_cost_inner(c, seen);
        }
        total
    }

    /// Cost of reading a materialized copy of `expr`'s result.
    pub fn scan_cost(&self, expr: &Arc<Expr>) -> f64 {
        self.model.scan(&self.stats(expr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PaperCostModel;
    use mvdesign_algebra::{AttrRef, CompareOp, JoinCondition, Predicate};
    use mvdesign_catalog::{AttrType, RelName};

    /// Product / Division / Part slice of the paper's Table 1.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("Product")
            .attr("Pid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("Did", AttrType::Int)
            .records(30_000.0)
            .blocks(3_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.relation("Division")
            .attr("Did", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("city", AttrType::Text)
            .records(5_000.0)
            .blocks(500.0)
            .update_frequency(1.0)
            .selectivity("city", 0.02)
            .finish()
            .unwrap();
        c.set_join_selectivity(
            AttrRef::new("Product", "Did"),
            AttrRef::new("Division", "Did"),
            1.0 / 5_000.0,
        )
        .unwrap();
        c.set_size_override(
            [RelName::new("Product"), RelName::new("Division")],
            RelationStats::new(30_000.0, 5_000.0),
        )
        .unwrap();
        c
    }

    fn tmp1() -> Arc<Expr> {
        Expr::select(
            Expr::base("Division"),
            Predicate::cmp(AttrRef::new("Division", "city"), CompareOp::Eq, "LA"),
        )
    }

    fn tmp2() -> Arc<Expr> {
        Expr::join(
            Expr::base("Product"),
            tmp1(),
            JoinCondition::on(
                AttrRef::new("Product", "Did"),
                AttrRef::new("Division", "Did"),
            ),
        )
    }

    #[test]
    fn huge_join_estimate_saturates_instead_of_panicking() {
        let mut c = Catalog::new();
        for name in ["Big", "Huge"] {
            c.relation(name)
                .attr("id", AttrType::Int)
                .records(1e300)
                .blocks(1e298)
                .update_frequency(1.0)
                .finish()
                .unwrap();
        }
        c.set_join_selectivity(AttrRef::new("Big", "id"), AttrRef::new("Huge", "id"), 1.0)
            .unwrap();
        let e = CardinalityEstimator::new(&c, EstimationMode::Analytic);
        let s = e.stats(&Expr::join(
            Expr::base("Big"),
            Expr::base("Huge"),
            JoinCondition::on(AttrRef::new("Big", "id"), AttrRef::new("Huge", "id")),
        ));
        // 1e300 × 1e300 overflows f64; the estimate must clamp, not panic.
        assert_eq!(s.records, f64::MAX);
        assert!(s.blocks.is_finite());
    }

    #[test]
    fn base_stats_come_from_catalog() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c, EstimationMode::Analytic);
        assert_eq!(e.stats(&Expr::base("Product")).blocks, 3_000.0);
    }

    #[test]
    fn unknown_base_estimates_empty() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c, EstimationMode::Analytic);
        assert_eq!(e.stats(&Expr::base("Ghost")).records, 0.0);
    }

    #[test]
    fn select_scales_by_selectivity() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c, EstimationMode::Analytic);
        let s = e.stats(&tmp1());
        assert_eq!(s.records, 100.0);
        assert_eq!(s.blocks, 10.0);
    }

    #[test]
    fn analytic_join_uses_js_and_width() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c, EstimationMode::Analytic);
        let s = e.stats(&tmp2());
        // 30k × 100 × (1/5k) = 600 records.
        assert_eq!(s.records, 600.0);
        // width = 1/10 + 1/10 ⇒ 120 blocks.
        assert!((s.blocks - 120.0).abs() < 1e-9);
    }

    #[test]
    fn calibrated_join_scales_table1_override() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c, EstimationMode::Calibrated);
        let s = e.stats(&tmp2());
        // Table 1 says P⋈D = 30k/5k; the σ below keeps 2%.
        assert_eq!(s.records, 600.0);
        assert_eq!(s.blocks, 100.0);
    }

    #[test]
    fn calibrated_without_override_falls_back_to_analytic() {
        let mut c = Catalog::new();
        c.relation("A")
            .attr("x", AttrType::Int)
            .records(100.0)
            .blocks(10.0)
            .finish()
            .unwrap();
        c.relation("B")
            .attr("x", AttrType::Int)
            .records(100.0)
            .blocks(10.0)
            .finish()
            .unwrap();
        let e = CardinalityEstimator::new(&c, EstimationMode::Calibrated);
        let j = Expr::join(
            Expr::base("A"),
            Expr::base("B"),
            JoinCondition::on(AttrRef::new("A", "x"), AttrRef::new("B", "x")),
        );
        // default js = 1/max(|A|,|B|) = 1/100 → 100 records, width 0.2.
        let s = e.stats(&j);
        assert_eq!(s.records, 100.0);
        assert!((s.blocks - 20.0).abs() < 1e-9);
    }

    #[test]
    fn projection_narrows_blocks() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c, EstimationMode::Analytic);
        let p = Expr::project(Expr::base("Product"), [AttrRef::new("Product", "name")]);
        let s = e.stats(&p);
        assert_eq!(s.records, 30_000.0);
        assert_eq!(s.blocks, 1_000.0); // 1 of 3 attributes kept
    }

    #[test]
    fn op_cost_matches_paper_arithmetic() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        // σ on Division: one 500-block scan.
        assert_eq!(est.op_cost(&tmp1()), 500.0);
        // Join: 3000 × 10 block pairs + 100 output blocks.
        assert_eq!(est.op_cost(&tmp2()), 30_100.0);
        // Ca(tmp2) adds the selection underneath.
        assert_eq!(est.tree_cost(&tmp2()), 30_600.0);
    }

    #[test]
    fn tree_cost_charges_shared_subtrees_once() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        let shared = tmp1();
        let twice = Expr::join(
            Expr::project(Arc::clone(&shared), [AttrRef::new("Division", "name")]),
            shared,
            JoinCondition::cross(),
        );
        // σ city (500, charged once) + π scanning tmp1's 10 blocks + the join.
        let naive: f64 = 500.0 + 10.0 + est.op_cost(&twice);
        assert_eq!(est.tree_cost(&twice), naive);
    }

    #[test]
    fn scan_cost_reads_result_blocks() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        assert_eq!(est.scan_cost(&tmp2()), 100.0);
    }

    #[test]
    fn estimates_are_memoised() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c, EstimationMode::Analytic);
        let a = e.stats(&tmp2());
        let b = e.stats(&tmp2());
        assert_eq!(a, b);
        // Division, σ, Product, join — one interned class each, even though
        // the two `tmp2()` calls built distinct trees.
        assert_eq!(e.interned_classes(), 4);
    }

    #[test]
    fn semantically_equal_trees_share_one_class() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c, EstimationMode::Analytic);
        let shared = tmp2();
        let first = e.stats(&shared);
        let classes = e.interned_classes();
        // Same Arc again: answered through the arena's pointer fast path.
        assert_eq!(e.stats(&shared), first);
        assert_eq!(e.interned_classes(), classes);
        // A structurally fresh but semantically equal tree reuses the cached
        // stats without minting any new class.
        let fresh = tmp2();
        assert!(!Arc::ptr_eq(&shared, &fresh));
        assert_eq!(e.stats(&fresh), first);
        assert_eq!(e.interned_classes(), classes);
        assert_eq!(e.class_of(&fresh), e.class_of(&shared));
    }

    #[test]
    fn estimator_is_shareable_across_threads() {
        let c = catalog();
        let e = CardinalityEstimator::new(&c, EstimationMode::Analytic);
        let warm = e.stats(&tmp2());
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| assert_eq!(e.stats(&tmp2()), warm));
            }
        });
        assert_eq!(e.interned_classes(), 4);
    }
}

#[cfg(test)]
mod index_tests {
    use super::*;
    use crate::model::PaperCostModel;
    use mvdesign_algebra::{AttrRef, CompareOp};
    use mvdesign_catalog::AttrType;

    fn catalog_with_index() -> Catalog {
        let mut c = Catalog::new();
        c.relation("Order")
            .attr("Cid", AttrType::Int)
            .attr("quantity", AttrType::Int)
            .attr("date", AttrType::Date)
            .records(50_000.0)
            .blocks(6_000.0)
            .selectivity("quantity", 0.5)
            .finish()
            .unwrap();
        c.add_index("Order", "quantity").unwrap();
        c
    }

    fn sigma(attr: &str) -> Arc<Expr> {
        Expr::select(
            Expr::base("Order"),
            Predicate::cmp(AttrRef::new("Order", attr), CompareOp::Gt, 100),
        )
    }

    #[test]
    fn indexed_selection_probes_instead_of_scanning() {
        let c = catalog_with_index();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        // σ quantity>100 has an index: log₂(6000)≈13 probes + 3000 output
        // blocks, far below the 6000-block scan.
        let cost = est.op_cost(&sigma("quantity"));
        assert!(cost < 6_000.0, "indexed select cost {cost}");
        assert!((cost - (6_000_f64.log2().ceil() + 3_000.0)).abs() < 1e-9);
    }

    #[test]
    fn unindexed_attribute_still_scans() {
        let c = catalog_with_index();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        assert_eq!(est.op_cost(&sigma("date")), 6_000.0);
    }

    #[test]
    fn disjunctions_do_not_use_the_index() {
        let c = catalog_with_index();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        let or = Expr::select(
            Expr::base("Order"),
            Predicate::or([
                Predicate::cmp(AttrRef::new("Order", "quantity"), CompareOp::Gt, 100),
                Predicate::cmp(AttrRef::new("Order", "date"), CompareOp::Gt, 5),
            ]),
        );
        assert_eq!(est.op_cost(&or), 6_000.0);
    }

    #[test]
    fn index_only_applies_directly_on_the_base() {
        let c = catalog_with_index();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        // σ over a projection of the base is not an index probe.
        let narrowed = Expr::select(
            Expr::project(
                Expr::base("Order"),
                [
                    AttrRef::new("Order", "quantity"),
                    AttrRef::new("Order", "Cid"),
                ],
            ),
            Predicate::cmp(AttrRef::new("Order", "quantity"), CompareOp::Gt, 100),
        );
        // Cost equals a scan of the projected input (4000 blocks = 2/3).
        assert_eq!(est.op_cost(&narrowed), 4_000.0);
    }

    #[test]
    fn catalog_index_validation() {
        let mut c = catalog_with_index();
        assert!(c.has_index("Order", "quantity"));
        assert!(!c.has_index("Order", "date"));
        assert!(c.add_index("Order", "ghost").is_err());
        assert!(c.add_index("Ghost", "x").is_err());
        assert_eq!(c.indexes().count(), 1);
    }
}
