//! Human-readable plan explanation: the expression tree with estimated
//! cardinalities and per-operator costs, in the style of `EXPLAIN`.

use std::fmt::Write as _;
use std::sync::Arc;

use mvdesign_algebra::Expr;

use crate::estimate::CostEstimator;
use crate::model::CostModel;

/// Renders a plan tree with one line per operator:
///
/// ```text
/// π[Product.name]                              rows=600 blocks=100 op=100 total=30700
/// └─ ⋈[Division.Did=Product.Did]               rows=600 blocks=100 op=30100 total=30600
///    ├─ Product                                rows=30000 blocks=3000
///    └─ σ[Division.city='LA']                  rows=100 blocks=10 op=500 total=500
///       └─ Division                            rows=5000 blocks=500
/// ```
///
/// `op` is the operator's own cost, `total` the cumulative `Ca` from the
/// base relations (shared subtrees counted once, as in an MVPP).
pub fn explain<M: CostModel>(expr: &Arc<Expr>, est: &CostEstimator<'_, M>) -> String {
    let mut out = String::new();
    render(expr, est, "", true, true, &mut out);
    out
}

fn render<M: CostModel>(
    expr: &Arc<Expr>,
    est: &CostEstimator<'_, M>,
    prefix: &str,
    is_last: bool,
    is_root: bool,
    out: &mut String,
) {
    let stats = est.stats(expr);
    let label = expr.op_label();
    let connector = if is_root {
        ""
    } else if is_last {
        "└─ "
    } else {
        "├─ "
    };
    let head = format!("{prefix}{connector}{label}");
    let pad = if head.chars().count() < 44 {
        " ".repeat(44 - head.chars().count())
    } else {
        " ".to_string()
    };
    if expr.is_base() {
        let _ = writeln!(
            out,
            "{head}{pad}rows={:.0} blocks={:.0}",
            stats.records, stats.blocks
        );
    } else {
        let _ = writeln!(
            out,
            "{head}{pad}rows={:.0} blocks={:.0} op={:.0} total={:.0}",
            stats.records,
            stats.blocks,
            est.op_cost(expr),
            est.tree_cost(expr)
        );
    }
    let children = expr.children();
    let child_prefix = if is_root {
        String::new()
    } else if is_last {
        format!("{prefix}   ")
    } else {
        format!("{prefix}│  ")
    };
    for (i, child) in children.iter().enumerate() {
        render(
            child,
            est,
            &child_prefix,
            i + 1 == children.len(),
            false,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::EstimationMode;
    use crate::model::PaperCostModel;
    use mvdesign_algebra::{AttrRef, CompareOp, JoinCondition, Predicate};
    use mvdesign_catalog::{AttrType, Catalog};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("Pd")
            .attr("Pid", AttrType::Int)
            .attr("Did", AttrType::Int)
            .records(30_000.0)
            .blocks(3_000.0)
            .finish()
            .unwrap();
        c.relation("Div")
            .attr("Did", AttrType::Int)
            .attr("city", AttrType::Text)
            .records(5_000.0)
            .blocks(500.0)
            .selectivity("city", 0.02)
            .finish()
            .unwrap();
        c.set_join_selectivity(
            AttrRef::new("Pd", "Did"),
            AttrRef::new("Div", "Did"),
            1.0 / 5_000.0,
        )
        .unwrap();
        c
    }

    #[test]
    fn explain_shows_every_operator_with_costs() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        let plan = Expr::join(
            Expr::base("Pd"),
            Expr::select(
                Expr::base("Div"),
                Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
            ),
            JoinCondition::on(AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did")),
        );
        let text = explain(&plan, &est);
        assert!(text.contains("⋈[Div.Did=Pd.Did]"), "{text}");
        assert!(text.contains("σ[Div.city='LA']"), "{text}");
        assert!(text.contains("rows=5000 blocks=500"), "{text}");
        assert!(text.contains("op=500 total=500"), "{text}");
        // Four operators, four lines.
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn explain_indents_nested_children() {
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        let plan = Expr::select(
            Expr::base("Div"),
            Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
        );
        let text = explain(&plan, &est);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("σ"));
        assert!(lines[1].starts_with("└─ Div"));
    }
}
