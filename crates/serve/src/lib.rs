//! Multi-client serving layer over the mvdesign [`Warehouse`] — the
//! operational side of the paper's Figure-1 architecture under load: many
//! concurrent analysts querying through the materialized views while
//! maintenance (loads and refreshes) runs in the background.
//!
//! # Architecture
//!
//! ```text
//!  clients ──┐  query tickets            ┌─ reader worker ─┐
//!  clients ──┼──────────► shared queue ──┼─ reader worker ─┼─► answers
//!  clients ──┘                           └─ reader worker ─┘
//!      │                                        ▲ Arc<WarehouseSnapshot>
//!      │  append / refresh tickets              │   (RwLock pointer swap)
//!      └──────────► write channel ──► writer task (owns the Warehouse)
//! ```
//!
//! **Snapshot isolation.** Readers never touch the live [`Warehouse`]:
//! every query executes against an immutable [`WarehouseSnapshot`] —
//! catalog, database and view registry behind `Arc`s, so taking and
//! publishing one is pointer work, never a data copy. The single writer
//! task applies `append`/`refresh` on the warehouse it owns and then
//! *publishes* the next snapshot by swapping one `Arc` behind a `RwLock`.
//! Readers hold that lock only long enough to clone the `Arc`, so they are
//! wait-free with respect to maintenance *work*: a refresh can rebuild
//! every view without a reader ever blocking on it, and a reader holding a
//! snapshot across a published refresh keeps seeing its old, internally
//! consistent state end-to-end.
//!
//! **Linearization.** Every applied write publishes exactly one snapshot
//! and bumps the publish version; every answer carries the version it was
//! served at. Concurrent execution is therefore equivalent to the
//! sequential history "apply writes in version order; answer each query at
//! its version" — which is exactly what the test battery and the
//! `repro perf-serve` gate replay against a plain single-threaded
//! [`Warehouse`].
//!
//! **Shutdown.** [`Server::shutdown`] drains: the queue closes to new
//! submissions, readers finish every in-flight and queued query, the
//! writer applies every accepted write, and the warehouse (with all
//! maintenance applied) is handed back to the caller.
//!
//! ```
//! use mvdesign::prelude::*;
//! use mvdesign::warehouse::Warehouse;
//! use mvdesign_serve::{Server, ServeConfig};
//!
//! let scenario = mvdesign::workload::paper_example();
//! let design = Designer::new().design(&scenario.catalog, &scenario.workload)?;
//! let db = Generator::new().database(&scenario.catalog);
//! let warehouse = Warehouse::new(scenario.catalog, db, &design).expect("views build");
//!
//! let server = Server::start(warehouse, ServeConfig::default());
//! let handle = server.handle();
//! let answer = handle
//!     .query("SELECT name FROM Customer WHERE city = 'v0'")
//!     .wait()
//!     .expect("query answers");
//! println!("{} rows at snapshot v{}", answer.table.len(), answer.version);
//! let _warehouse = server.shutdown(); // drains in-flight queries
//! # Ok::<(), mvdesign::core::DesignError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod stats;

pub use stats::{LatencySummary, ServeStats};

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mvdesign::algebra::{Expr, Value};
use mvdesign::engine::Table;
use mvdesign::warehouse::{RefreshReport, Warehouse, WarehouseError, WarehouseSnapshot};

use stats::Histogram;

// Everything the serving layer shares across threads must be Send + Sync;
// a future non-Sync field in any of these types should fail *this* crate's
// compile, not surface as a distant trait-bound error in user code.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<WarehouseSnapshot>();
    assert_send_sync::<mvdesign::engine::Database>();
    assert_send_sync::<mvdesign::engine::Table>();
    assert_send_sync::<mvdesign::engine::BufferPool>();
    assert_send_sync::<mvdesign::catalog::Catalog>();
    assert_send_sync::<mvdesign::core::ViewCatalog>();
    assert_send_sync::<Shared>();
    assert_send_sync::<ServeHandle>();
};
const _: () = {
    const fn assert_send<T: Send>() {}
    // The writer task takes the warehouse onto its own thread.
    assert_send::<Warehouse>();
};

/// Errors surfaced by serve tickets.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The underlying warehouse rejected the request (parse, execution,
    /// unknown relation, bad rows …).
    Warehouse(WarehouseError),
    /// The server is shutting down (or has shut down) and no longer
    /// accepts work.
    ShutDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Warehouse(e) => write!(f, "{e}"),
            ServeError::ShutDown => write!(f, "server is shut down"),
        }
    }
}

impl Error for ServeError {}

impl From<WarehouseError> for ServeError {
    fn from(e: WarehouseError) -> Self {
        ServeError::Warehouse(e)
    }
}

/// Knobs for [`Server::start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeConfig {
    /// Reader worker threads answering queries; `0` (the default) means
    /// one per host core.
    pub readers: usize,
}

/// A completed query: the result table plus the linearization point it was
/// answered at.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The query result.
    pub table: Table,
    /// Publish version of the snapshot that served the answer (0 = the
    /// state the server started from).
    pub version: u64,
    /// Views that were stale in that snapshot — nonzero means the answer
    /// may predate some appended rows.
    pub stale_views: usize,
    /// Appended-but-unfolded base rows at that snapshot
    /// (staleness-at-answer, in rows).
    pub pending_rows: usize,
    /// Submission-to-completion latency, measured at the worker.
    pub elapsed: Duration,
}

/// A completed write: the publish version it created.
#[derive(Debug, Clone, Copy)]
pub struct Applied {
    /// Publish version of the snapshot this write produced — version `v`
    /// means the write is the `v`-th in the writer's total order.
    pub version: u64,
    /// What the refresh pass did, for refresh writes.
    pub refresh: Option<RefreshReport>,
    /// Submission-to-completion latency, measured at the writer.
    pub elapsed: Duration,
}

enum Request {
    Sql(String),
    Expr(Arc<Expr>),
}

struct QueryJob {
    request: Request,
    submitted: Instant,
    reply: Sender<Result<Answer, ServeError>>,
}

enum WriteOp {
    Append {
        relation: String,
        rows: Vec<Vec<Value>>,
        submitted: Instant,
        reply: Sender<Result<Applied, ServeError>>,
    },
    Refresh {
        submitted: Instant,
        reply: Sender<Result<Applied, ServeError>>,
    },
    Stop,
}

struct QueueState {
    jobs: VecDeque<QueryJob>,
    closed: bool,
}

struct Shared {
    /// The published snapshot readers serve from. Writers hold the write
    /// lock only for the pointer swap; readers only to clone the `Arc`.
    snapshot: RwLock<Arc<WarehouseSnapshot>>,
    queue: Mutex<QueueState>,
    available: Condvar,
    queries: AtomicU64,
    appends: AtomicU64,
    refreshes: AtomicU64,
    snapshots_published: AtomicU64,
    stale_answers: AtomicU64,
    max_staleness_rows: AtomicU64,
    latency: Histogram,
}

impl Shared {
    fn current_snapshot(&self) -> Arc<WarehouseSnapshot> {
        Arc::clone(&self.snapshot.read().expect("snapshot lock poisoned"))
    }

    fn publish(&self, snapshot: WarehouseSnapshot) {
        let snapshot = Arc::new(snapshot);
        *self.snapshot.write().expect("snapshot lock poisoned") = snapshot;
        self.snapshots_published.fetch_add(1, Ordering::Relaxed);
    }
}

/// A running serve session: the reader pool, the writer task and the
/// published snapshot chain. Hand out [`ServeHandle`]s with
/// [`Server::handle`]; recover the warehouse with [`Server::shutdown`].
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    write_tx: Sender<WriteOp>,
    readers: Vec<JoinHandle<()>>,
    writer: JoinHandle<Warehouse>,
}

impl fmt::Debug for Shared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("queries", &self.queries.load(Ordering::Relaxed))
            .field(
                "snapshots_published",
                &self.snapshots_published.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Takes ownership of a warehouse and starts serving it: publishes the
    /// initial snapshot (version 0), spawns the reader pool and the writer
    /// task.
    pub fn start(warehouse: Warehouse, config: ServeConfig) -> Self {
        let readers = if config.readers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.readers
        };
        let shared = Arc::new(Shared {
            snapshot: RwLock::new(Arc::new(warehouse.snapshot().with_version(0))),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            queries: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            snapshots_published: AtomicU64::new(0),
            stale_answers: AtomicU64::new(0),
            max_staleness_rows: AtomicU64::new(0),
            latency: Histogram::new(),
        });
        let reader_handles = (0..readers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mvdesign-serve-reader-{i}"))
                    .spawn(move || reader_loop(&shared))
                    .expect("reader thread spawns")
            })
            .collect();
        let (write_tx, write_rx) = channel();
        let writer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mvdesign-serve-writer".into())
                .spawn(move || writer_loop(warehouse, &write_rx, &shared))
                .expect("writer thread spawns")
        };
        Self {
            shared,
            write_tx,
            readers: reader_handles,
            writer,
        }
    }

    /// A cloneable client handle into this server.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
            write_tx: self.write_tx.clone(),
        }
    }

    /// Graceful shutdown: stops accepting new work, drains every queued
    /// and in-flight query, applies every accepted write, then returns the
    /// warehouse with all maintenance applied. Outstanding tickets stay
    /// redeemable after the server is gone.
    pub fn shutdown(self) -> Warehouse {
        {
            let mut queue = self.shared.queue.lock().expect("queue lock poisoned");
            queue.closed = true;
        }
        self.shared.available.notify_all();
        for reader in self.readers {
            reader.join().expect("reader thread panicked");
        }
        // Readers are gone; anything already sent on the write channel is
        // still applied before the writer sees Stop (channel order).
        let _ = self.write_tx.send(WriteOp::Stop);
        self.writer.join().expect("writer thread panicked")
    }
}

/// A cloneable, thread-safe client of a [`Server`]: non-blocking
/// submission, ticket-based completion.
#[derive(Debug, Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
    write_tx: Sender<WriteOp>,
}

impl ServeHandle {
    /// Submits a SQL query; returns immediately with a ticket.
    pub fn query(&self, sql: &str) -> QueryTicket {
        self.submit(Request::Sql(sql.to_string()))
    }

    /// Submits an already-built expression; returns immediately with a
    /// ticket.
    pub fn query_expr(&self, expr: &Arc<Expr>) -> QueryTicket {
        self.submit(Request::Expr(Arc::clone(expr)))
    }

    fn submit(&self, request: Request) -> QueryTicket {
        let (reply, rx) = channel();
        let job = QueryJob {
            request,
            submitted: Instant::now(),
            reply,
        };
        {
            let mut queue = self.shared.queue.lock().expect("queue lock poisoned");
            if queue.closed {
                drop(queue);
                let _ = job.reply.send(Err(ServeError::ShutDown));
                return QueryTicket { rx };
            }
            queue.jobs.push_back(job);
        }
        self.shared.available.notify_one();
        QueryTicket { rx }
    }

    /// Submits an append (a member-database load) to the writer task;
    /// returns immediately with a ticket. Applied writes publish a new
    /// snapshot — later queries see the rows, earlier snapshots never do.
    pub fn append(&self, relation: impl Into<String>, rows: Vec<Vec<Value>>) -> WriteTicket {
        let (reply, rx) = channel();
        let op = WriteOp::Append {
            relation: relation.into(),
            rows,
            submitted: Instant::now(),
            reply,
        };
        if let Err(std::sync::mpsc::SendError(WriteOp::Append { reply, .. })) =
            self.write_tx.send(op)
        {
            let _ = reply.send(Err(ServeError::ShutDown));
        }
        WriteTicket { rx }
    }

    /// Submits a refresh pass (bring every stale view up to date) to the
    /// writer task; returns immediately with a ticket.
    pub fn refresh(&self) -> WriteTicket {
        let (reply, rx) = channel();
        let op = WriteOp::Refresh {
            submitted: Instant::now(),
            reply,
        };
        if let Err(std::sync::mpsc::SendError(WriteOp::Refresh { reply, .. })) =
            self.write_tx.send(op)
        {
            let _ = reply.send(Err(ServeError::ShutDown));
        }
        WriteTicket { rx }
    }

    /// The currently published snapshot — pin it to read a stable state
    /// across any number of concurrent writes.
    pub fn snapshot(&self) -> Arc<WarehouseSnapshot> {
        self.shared.current_snapshot()
    }

    /// A point-in-time picture of serve activity.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            queries: self.shared.queries.load(Ordering::Relaxed),
            appends: self.shared.appends.load(Ordering::Relaxed),
            refreshes: self.shared.refreshes.load(Ordering::Relaxed),
            snapshots_published: self.shared.snapshots_published.load(Ordering::Relaxed),
            stale_answers: self.shared.stale_answers.load(Ordering::Relaxed),
            max_staleness_rows: self.shared.max_staleness_rows.load(Ordering::Relaxed),
            latency: self.shared.latency.summary(),
        }
    }
}

/// A pending query result. Redeem with [`QueryTicket::wait`].
#[derive(Debug)]
pub struct QueryTicket {
    rx: Receiver<Result<Answer, ServeError>>,
}

impl QueryTicket {
    /// Blocks until the query completes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Warehouse`] when the query itself fails;
    /// [`ServeError::ShutDown`] when the server stopped before accepting
    /// it.
    pub fn wait(self) -> Result<Answer, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShutDown))
    }
}

/// A pending write acknowledgement. Redeem with [`WriteTicket::wait`].
#[derive(Debug)]
pub struct WriteTicket {
    rx: Receiver<Result<Applied, ServeError>>,
}

impl WriteTicket {
    /// Blocks until the writer has applied (and published) the write.
    ///
    /// # Errors
    ///
    /// [`ServeError::Warehouse`] when the warehouse rejected the write
    /// (nothing was applied or published); [`ServeError::ShutDown`] when
    /// the server stopped before accepting it.
    pub fn wait(self) -> Result<Applied, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShutDown))
    }
}

/// One reader worker: pop a query, pin the current snapshot, execute,
/// account, reply. Exits when the queue is closed *and* drained — so
/// shutdown answers everything already accepted.
fn reader_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = shared.available.wait(queue).expect("queue lock poisoned");
            }
        };
        let snapshot = shared.current_snapshot();
        let result = match &job.request {
            Request::Sql(sql) => snapshot.query(sql),
            Request::Expr(expr) => snapshot.query_expr(expr),
        };
        let elapsed = job.submitted.elapsed();
        shared.queries.fetch_add(1, Ordering::Relaxed);
        shared
            .latency
            .record(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
        if snapshot.is_stale() {
            shared.stale_answers.fetch_add(1, Ordering::Relaxed);
        }
        shared
            .max_staleness_rows
            .fetch_max(snapshot.pending_rows() as u64, Ordering::Relaxed);
        let answer = result.map(|table| Answer {
            table,
            version: snapshot.version(),
            stale_views: snapshot.stale_views(),
            pending_rows: snapshot.pending_rows(),
            elapsed,
        });
        // A dropped ticket just means the client lost interest.
        let _ = job.reply.send(answer.map_err(ServeError::from));
    }
}

/// The writer task: applies writes in channel order on the warehouse it
/// owns, publishing one snapshot per applied write. Returns the warehouse
/// on Stop.
fn writer_loop(mut warehouse: Warehouse, rx: &Receiver<WriteOp>, shared: &Shared) -> Warehouse {
    let mut version = 0u64;
    while let Ok(op) = rx.recv() {
        match op {
            WriteOp::Stop => break,
            WriteOp::Append {
                relation,
                rows,
                submitted,
                reply,
            } => {
                let outcome = warehouse.append(relation, rows).map(|()| {
                    version += 1;
                    shared.publish(warehouse.snapshot().with_version(version));
                    shared.appends.fetch_add(1, Ordering::Relaxed);
                    Applied {
                        version,
                        refresh: None,
                        elapsed: submitted.elapsed(),
                    }
                });
                let _ = reply.send(outcome.map_err(ServeError::from));
            }
            WriteOp::Refresh { submitted, reply } => {
                let outcome = warehouse.refresh().map(|report| {
                    version += 1;
                    shared.publish(warehouse.snapshot().with_version(version));
                    shared.refreshes.fetch_add(1, Ordering::Relaxed);
                    Applied {
                        version,
                        refresh: Some(report),
                        elapsed: submitted.elapsed(),
                    }
                });
                let _ = reply.send(outcome.map_err(ServeError::from));
            }
        }
    }
    warehouse
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign::engine::{Generator, GeneratorConfig};
    use mvdesign::prelude::Designer;
    use mvdesign::workload::paper_example;

    fn small_warehouse() -> Warehouse {
        let scenario = paper_example();
        let design = Designer::new()
            .design(&scenario.catalog, &scenario.workload)
            .expect("designs");
        let db = Generator::with_config(GeneratorConfig {
            seed: 77,
            scale: 0.003,
            max_rows: 250,
        })
        .database(&scenario.catalog);
        Warehouse::new(scenario.catalog, db, &design).expect("builds")
    }

    #[test]
    fn queries_answer_and_versions_advance_with_writes() {
        let server = Server::start(small_warehouse(), ServeConfig { readers: 2 });
        let h = server.handle();
        let sql = "SELECT name FROM Customer";
        let before = h.query(sql).wait().expect("answers");
        assert_eq!(before.version, 0);
        assert_eq!(before.pending_rows, 0);

        // A fresh Customer row matching the generated schema.
        let row: Vec<Value> = h
            .snapshot()
            .database()
            .table("Customer")
            .expect("customer exists")
            .attrs()
            .iter()
            .map(|a| match a.attr.as_str() {
                "Cid" => Value::Int(5_000_000),
                _ => Value::text("served"),
            })
            .collect();
        let applied = h.append("Customer", vec![row]).wait().expect("applies");
        assert_eq!(applied.version, 1);
        let after = h.query(sql).wait().expect("answers");
        assert!(after.version >= 1, "query after ack sees the append");
        assert_eq!(after.table.len(), before.table.len() + 1);
        assert!(after.stale_views > 0, "append leaves views stale");
        assert_eq!(after.pending_rows, 1);

        let refreshed = h.refresh().wait().expect("refreshes");
        assert_eq!(refreshed.version, 2);
        assert!(refreshed.refresh.is_some());
        let fresh = h.query(sql).wait().expect("answers");
        assert_eq!(fresh.stale_views, 0);
        assert_eq!(fresh.pending_rows, 0);

        let stats = h.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.appends, 1);
        assert_eq!(stats.refreshes, 1);
        assert_eq!(stats.snapshots_published, 2);
        assert!(stats.stale_answers >= 1);
        assert_eq!(stats.max_staleness_rows, 1);
        assert_eq!(stats.latency.count, 3);
        assert!(stats.latency.max_us > 0.0);

        let warehouse = server.shutdown();
        assert_eq!(warehouse.refreshes(), 2, "initial build + served refresh");
        assert!(!warehouse.is_stale());
    }

    #[test]
    fn rejected_writes_publish_nothing() {
        let server = Server::start(small_warehouse(), ServeConfig { readers: 1 });
        let h = server.handle();
        let err = h
            .append("Ghost", vec![vec![Value::Int(1)]])
            .wait()
            .expect_err("unknown relation");
        assert!(matches!(
            err,
            ServeError::Warehouse(WarehouseError::UnknownRelation(_))
        ));
        let err = h
            .append("Customer", vec![vec![Value::Int(1)]])
            .wait()
            .expect_err("bad arity");
        assert!(matches!(
            err,
            ServeError::Warehouse(WarehouseError::BadRows { .. })
        ));
        assert_eq!(h.stats().snapshots_published, 0);
        assert_eq!(h.snapshot().version(), 0);
        server.shutdown();
    }

    #[test]
    fn bad_sql_comes_back_as_a_parse_error() {
        let server = Server::start(small_warehouse(), ServeConfig { readers: 1 });
        let err = server
            .handle()
            .query("SELEC oops")
            .wait()
            .expect_err("parse fails");
        assert!(matches!(
            err,
            ServeError::Warehouse(WarehouseError::Parse(_))
        ));
        server.shutdown();
    }

    #[test]
    fn work_after_shutdown_is_rejected_but_tickets_survive() {
        let server = Server::start(small_warehouse(), ServeConfig { readers: 1 });
        let h = server.handle();
        let pending = h.query("SELECT name FROM Customer");
        let warehouse = server.shutdown();
        assert!(!warehouse.is_stale());
        // The pre-shutdown ticket was drained and answers.
        assert!(pending.wait().is_ok(), "in-flight query drains");
        // New work is rejected cleanly.
        assert!(matches!(
            h.query("SELECT name FROM Customer").wait(),
            Err(ServeError::ShutDown)
        ));
        assert!(matches!(
            h.append("Customer", vec![]).wait(),
            Err(ServeError::ShutDown)
        ));
        assert!(matches!(h.refresh().wait(), Err(ServeError::ShutDown)));
    }
}
