//! Serve-side accounting: a fixed log-bucket latency histogram safe for
//! concurrent recording, and the [`ServeStats`] snapshot the handle hands
//! out.
//!
//! The histogram is HDR-style: each power of two is cut into
//! `2^SUB_BITS` sub-buckets, so recording is two shifts and one relaxed
//! atomic increment, memory is one fixed array (no allocation, ever), and
//! quantile estimates carry at most `1/2^SUB_BITS` (≈12.5%) relative
//! error — plenty for p50/p95/p99 tail tracking under load.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two range splits into `2^SUB_BITS`
/// buckets.
const SUB_BITS: usize = 3;
const SUB: usize = 1 << SUB_BITS;
/// Enough buckets for the full `u64` nanosecond range.
const BUCKETS: usize = (64 - SUB_BITS) * SUB + SUB;

/// A concurrent fixed-size log-bucket histogram of nanosecond latencies.
#[derive(Debug)]
pub(crate) struct Histogram {
    buckets: Vec<AtomicU64>,
    max_ns: AtomicU64,
}

/// The bucket a nanosecond value lands in. Monotone in `n`: values below
/// `2^SUB_BITS` map to themselves, larger values to
/// (power-of-two group, top `SUB_BITS` mantissa bits).
fn bucket_index(n: u64) -> usize {
    let n = n.max(1);
    let msb = 63 - n.leading_zeros() as usize;
    if msb <= SUB_BITS {
        n as usize
    } else {
        let shift = msb - SUB_BITS;
        let sub = ((n >> shift) as usize) & (SUB - 1);
        shift * SUB + SUB + sub
    }
}

/// The inclusive upper bound of a bucket — the value quantiles report.
fn bucket_upper(index: usize) -> u64 {
    if index < 2 * SUB {
        index as u64
    } else {
        let shift = index / SUB - 1;
        let sub = (index % SUB) as u128;
        // u128 so the top bucket's bound saturates instead of overflowing.
        let upper = ((SUB as u128 + sub + 1) << shift) - 1;
        upper.min(u64::MAX as u128) as u64
    }
}

impl Histogram {
    pub(crate) fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one latency observation (relaxed; counters are summed only
    /// at reporting time).
    pub(crate) fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(nanos, Ordering::Relaxed);
    }

    /// A point-in-time summary with approximate quantiles.
    pub(crate) fn summary(&self) -> LatencySummary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let quantile = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return bucket_upper(i) as f64 / 1e3;
                }
            }
            bucket_upper(BUCKETS - 1) as f64 / 1e3
        };
        LatencySummary {
            count,
            p50_us: quantile(0.50),
            p95_us: quantile(0.95),
            p99_us: quantile(0.99),
            max_us: self.max_ns.load(Ordering::Relaxed) as f64 / 1e3,
        }
    }
}

/// Quantiles of the request latencies served so far (queue wait included —
/// latency is measured from submission to completion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Requests recorded.
    pub count: u64,
    /// Median latency in microseconds (log-bucket upper bound, ≤12.5% high).
    pub p50_us: f64,
    /// 95th-percentile latency in microseconds.
    pub p95_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// Largest latency observed, exact, in microseconds.
    pub max_us: f64,
}

/// A point-in-time picture of what the serving layer has done.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeStats {
    /// Queries answered (successfully or not).
    pub queries: u64,
    /// Append operations applied by the writer.
    pub appends: u64,
    /// Refresh passes run by the writer.
    pub refreshes: u64,
    /// Snapshots published (one per applied write; the current snapshot's
    /// version equals this count).
    pub snapshots_published: u64,
    /// Queries answered from a snapshot with at least one stale view —
    /// answers that predate some appended rows (the paper's
    /// once-per-period staleness, observed at serve time).
    pub stale_answers: u64,
    /// Largest number of appended-but-unfolded base rows any answer was
    /// served over (staleness-at-answer high-water mark).
    pub max_staleness_rows: u64,
    /// Query latency quantiles (submission → completion).
    pub latency: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut values: Vec<u64> = (0u32..64)
            .flat_map(|shift| {
                let base = 1u64 << shift;
                [
                    base,
                    base.saturating_add(base / 16),
                    base.saturating_add(base / 2),
                ]
            })
            .chain(0..=256)
            .collect();
        values.sort_unstable();
        values.dedup();
        let mut last = 0usize;
        for n in values {
            let i = bucket_index(n);
            assert!(i >= last, "bucket index regressed at {n}");
            assert!(i < BUCKETS);
            last = i;
        }
    }

    #[test]
    fn bucket_upper_bounds_cover_their_bucket() {
        for n in (0..20_000u64).chain([1 << 20, 1 << 33, u64::MAX]) {
            let i = bucket_index(n);
            let upper = bucket_upper(i);
            assert!(
                upper >= n.max(1) || i == BUCKETS - 1,
                "{n} above its bound {upper}"
            );
            // The bound is tight: at most one sub-bucket's width above.
            if n >= SUB as u64 {
                assert!(upper as f64 <= n as f64 * (1.0 + 1.0 / SUB as f64) + 1.0);
            }
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(us * 1_000);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        // Log-bucket estimates sit within 12.5% above the exact value.
        assert!((500.0..=563.0).contains(&s.p50_us), "p50 {}", s.p50_us);
        assert!((950.0..=1070.0).contains(&s.p95_us), "p95 {}", s.p95_us);
        assert!((990.0..=1120.0).contains(&s.p99_us), "p99 {}", s.p99_us);
        assert_eq!(s.max_us, 1000.0);
    }

    #[test]
    fn empty_histogram_summarizes_to_zero() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_us, 0.0);
        assert_eq!(s.max_us, 0.0);
    }
}
