//! Statistics collection: derive a [`Catalog`] from actual data, for users
//! who have tables but no Table-1-style statistics sheet.

use std::collections::{BTreeMap, HashMap, HashSet};

use mvdesign_algebra::Value;
use mvdesign_catalog::{AttrRef, AttrType, Catalog, CatalogError};

use crate::table::{Database, Table};

/// Configuration for [`profile_database`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileConfig {
    /// Records per block assumed when converting row counts to block counts.
    pub blocking_factor: f64,
    /// Update frequency assigned to every profiled relation (refine with
    /// [`Catalog::set_update_frequency`] afterwards).
    pub update_frequency: f64,
    /// Detect join selectivities between same-named integer columns of
    /// different relations by actually counting matches.
    pub detect_joins: bool,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self {
            blocking_factor: 10.0,
            update_frequency: 1.0,
            detect_joins: true,
        }
    }
}

/// Builds a catalog whose statistics describe the given database:
///
/// * attribute types are inferred from the data (empty columns type as
///   integers);
/// * record counts are exact; block counts use the configured blocking
///   factor;
/// * each attribute's equality selectivity is `1 / distinct_count`;
/// * when [`ProfileConfig::detect_joins`] is set, same-named columns of
///   different relations get their *measured* join selectivity
///   `matches / (|L|·|R|)`.
///
/// # Errors
///
/// Propagates [`CatalogError`] — in practice only for duplicate relation
/// names, which a [`Database`] cannot contain, so errors indicate a bug.
pub fn profile_database(db: &Database, config: &ProfileConfig) -> Result<Catalog, CatalogError> {
    let mut catalog = Catalog::new();
    for (name, table) in db.iter() {
        let mut builder = catalog.relation(name.clone());
        for (idx, attr) in table.attrs().iter().enumerate() {
            builder = builder.attr(attr.attr.clone(), column_type(table, idx));
        }
        let records = table.len() as f64;
        builder = builder
            .records(records)
            .blocks((records / config.blocking_factor.max(1.0)).ceil())
            .update_frequency(config.update_frequency);
        for (idx, attr) in table.attrs().iter().enumerate() {
            let distinct = distinct_count(table, idx);
            if distinct > 0 {
                builder = builder.selectivity(attr.attr.clone(), 1.0 / distinct as f64);
            }
        }
        builder.finish()?;
    }

    if config.detect_joins {
        detect_join_selectivities(db, &mut catalog)?;
    }
    Ok(catalog)
}

fn column_type(table: &Table, idx: usize) -> AttrType {
    match table.rows().first().map(|row| &row[idx]) {
        Some(Value::Int(_)) | None => AttrType::Int,
        Some(Value::Text(_)) => AttrType::Text,
        Some(Value::Date(_)) => AttrType::Date,
    }
}

fn distinct_count(table: &Table, idx: usize) -> usize {
    let mut seen: HashSet<&Value> = HashSet::with_capacity(table.len());
    for row in table.rows() {
        seen.insert(&row[idx]);
    }
    seen.len()
}

fn detect_join_selectivities(db: &Database, catalog: &mut Catalog) -> Result<(), CatalogError> {
    // Group integer columns by attribute name.
    let mut by_name: BTreeMap<&str, Vec<(&Table, usize)>> = BTreeMap::new();
    for (_, table) in db.iter() {
        for (idx, attr) in table.attrs().iter().enumerate() {
            if matches!(column_type(table, idx), AttrType::Int) {
                by_name
                    .entry(attr.attr.as_str())
                    .or_default()
                    .push((table, idx));
            }
        }
    }
    for columns in by_name.values() {
        for (i, (lt, li)) in columns.iter().enumerate() {
            for (rt, ri) in &columns[i + 1..] {
                if lt.name() == rt.name() || lt.is_empty() || rt.is_empty() {
                    continue;
                }
                // Count matches with a value-frequency map.
                let mut freq: HashMap<&Value, f64> = HashMap::new();
                for row in lt.rows() {
                    *freq.entry(&row[*li]).or_insert(0.0) += 1.0;
                }
                let matches: f64 = rt
                    .rows()
                    .iter()
                    .map(|row| freq.get(&row[*ri]).copied().unwrap_or(0.0))
                    .sum();
                if matches == 0.0 {
                    continue;
                }
                let js = matches / (lt.len() as f64 * rt.len() as f64);
                let a = AttrRef::new(lt.name().clone(), lt.attrs()[*li].attr.clone());
                let b = AttrRef::new(rt.name().clone(), rt.attrs()[*ri].attr.clone());
                catalog.set_join_selectivity(a, b, js.min(1.0))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::AttrRef;

    fn db() -> Database {
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 10),
                    Value::text(format!("c{}", i % 4)),
                ]
            })
            .collect();
        db.insert_table(Table::new(
            "Fact",
            [
                AttrRef::new("Fact", "id"),
                AttrRef::new("Fact", "dim"),
                AttrRef::new("Fact", "cat"),
            ],
            rows,
        ));
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::Int(i), Value::text(format!("d{i}"))])
            .collect();
        db.insert_table(Table::new(
            "Dim",
            [AttrRef::new("Dim", "dim"), AttrRef::new("Dim", "label")],
            rows,
        ));
        db
    }

    #[test]
    fn profiles_sizes_and_types() {
        let c = profile_database(&db(), &ProfileConfig::default()).expect("profiles");
        assert_eq!(c.stats("Fact").unwrap().records, 100.0);
        assert_eq!(c.stats("Fact").unwrap().blocks, 10.0);
        let schema = c.schema("Fact").unwrap();
        assert_eq!(schema.attribute("cat").unwrap().ty, AttrType::Text);
        assert_eq!(schema.attribute("dim").unwrap().ty, AttrType::Int);
    }

    #[test]
    fn selectivities_are_reciprocal_distinct_counts() {
        let c = profile_database(&db(), &ProfileConfig::default()).expect("profiles");
        assert!((c.selectivity("Fact", "cat") - 0.25).abs() < 1e-12);
        assert!((c.selectivity("Fact", "dim") - 0.1).abs() < 1e-12);
        assert!((c.selectivity("Fact", "id") - 0.01).abs() < 1e-12);
    }

    #[test]
    fn join_selectivity_is_measured_exactly() {
        let c = profile_database(&db(), &ProfileConfig::default()).expect("profiles");
        // Every Fact row matches exactly one Dim row: 100 matches over
        // 100 × 10 pairs.
        let js = c
            .join_selectivity(&AttrRef::new("Fact", "dim"), &AttrRef::new("Dim", "dim"))
            .expect("detected");
        assert!((js - 0.1).abs() < 1e-12);
    }

    #[test]
    fn join_detection_can_be_disabled() {
        let c = profile_database(
            &db(),
            &ProfileConfig {
                detect_joins: false,
                ..ProfileConfig::default()
            },
        )
        .expect("profiles");
        assert!(c
            .join_selectivity(&AttrRef::new("Fact", "dim"), &AttrRef::new("Dim", "dim"))
            .is_none());
    }

    #[test]
    fn profiled_catalog_estimates_match_reality() {
        use mvdesign_algebra::{CompareOp, Expr, Predicate};
        let database = db();
        let c = profile_database(&database, &ProfileConfig::default()).expect("profiles");
        // Estimated selection output vs actual row count.
        let q = Expr::select(
            Expr::base("Fact"),
            Predicate::cmp(AttrRef::new("Fact", "cat"), CompareOp::Eq, "c1"),
        );
        let est = mvdesign_catalog::RelationStats::new(
            c.stats("Fact").unwrap().records * c.selectivity("Fact", "cat"),
            0.0,
        );
        let actual = crate::exec::execute(&q, &database).expect("executes").len() as f64;
        assert!(
            (est.records - actual).abs() <= 1.0,
            "est {} vs actual {actual}",
            est.records
        );
    }

    #[test]
    fn empty_tables_profile_without_panicking() {
        let mut database = Database::new();
        database.insert_table(Table::new("Empty", [AttrRef::new("Empty", "x")], vec![]));
        let c = profile_database(&database, &ProfileConfig::default()).expect("profiles");
        assert_eq!(c.stats("Empty").unwrap().records, 0.0);
        assert_eq!(
            c.schema("Empty").unwrap().attribute("x").unwrap().ty,
            AttrType::Int
        );
    }
}
