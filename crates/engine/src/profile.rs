//! Statistics collection: derive a [`Catalog`] from actual data, for users
//! who have tables but no Table-1-style statistics sheet.
//!
//! All statistics read the columnar storage directly: types come from the
//! column representation, distinct counts hash raw `i64`/`str` slices in one
//! pass per column, and measured join selectivities count matches through
//! typed frequency maps — no row materialisation anywhere.

use std::collections::{BTreeMap, HashMap, HashSet};

use mvdesign_algebra::Value;
use mvdesign_catalog::{AttrRef, AttrType, Catalog, CatalogError};

use crate::batch::Column;
use crate::table::Database;

/// Configuration for [`profile_database`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileConfig {
    /// Records per block assumed when converting row counts to block counts.
    pub blocking_factor: f64,
    /// Update frequency assigned to every profiled relation (refine with
    /// [`Catalog::set_update_frequency`] afterwards).
    pub update_frequency: f64,
    /// Detect join selectivities between same-named integer columns of
    /// different relations by actually counting matches.
    pub detect_joins: bool,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self {
            blocking_factor: 10.0,
            update_frequency: 1.0,
            detect_joins: true,
        }
    }
}

/// Builds a catalog whose statistics describe the given database:
///
/// * attribute types are inferred from the data (empty columns type as
///   integers);
/// * record counts are exact; block counts use the configured blocking
///   factor;
/// * each attribute's equality selectivity is `1 / distinct_count`;
/// * when [`ProfileConfig::detect_joins`] is set, same-named columns of
///   different relations get their *measured* join selectivity
///   `matches / (|L|·|R|)`.
///
/// # Errors
///
/// Propagates [`CatalogError`] — in practice only for duplicate relation
/// names, which a [`Database`] cannot contain, so errors indicate a bug.
pub fn profile_database(db: &Database, config: &ProfileConfig) -> Result<Catalog, CatalogError> {
    let mut catalog = Catalog::new();
    for (name, table) in db.iter() {
        let mut builder = catalog.relation(name.clone());
        for (idx, attr) in table.attrs().iter().enumerate() {
            builder = builder.attr(attr.attr.clone(), column_type(table.batch().column(idx)));
        }
        let records = table.len() as f64;
        builder = builder
            .records(records)
            .blocks((records / config.blocking_factor.max(1.0)).ceil())
            .update_frequency(config.update_frequency);
        for (idx, attr) in table.attrs().iter().enumerate() {
            let distinct = distinct_count(table.batch().column(idx));
            if distinct > 0 {
                builder = builder.selectivity(attr.attr.clone(), 1.0 / distinct as f64);
            }
        }
        builder.finish()?;
    }

    if config.detect_joins {
        detect_join_selectivities(db, &mut catalog)?;
    }
    Ok(catalog)
}

/// Infers a column's catalog type from its storage representation. Typed
/// columns carry their type in the variant; a heterogeneous column falls
/// back to its first value, matching what the row engine inferred.
fn column_type(col: &Column) -> AttrType {
    match col {
        Column::Int(_) => AttrType::Int,
        Column::Text(_) | Column::Dict { .. } => AttrType::Text,
        Column::Date(_) => AttrType::Date,
        Column::Mixed(values) => match values.first() {
            Some(Value::Int(_)) | None => AttrType::Int,
            Some(Value::Text(_)) => AttrType::Text,
            Some(Value::Date(_)) => AttrType::Date,
        },
    }
}

/// Distinct values in one pass over the raw column storage. A dictionary
/// column counts its *used* codes — filtered slices may reference only part
/// of the shared value table.
fn distinct_count(col: &Column) -> usize {
    match col {
        Column::Int(v) | Column::Date(v) => v.iter().collect::<HashSet<_>>().len(),
        Column::Text(v) => v.iter().collect::<HashSet<_>>().len(),
        Column::Dict { codes, .. } => codes.iter().collect::<HashSet<_>>().len(),
        Column::Mixed(v) => v.iter().collect::<HashSet<_>>().len(),
    }
}

fn detect_join_selectivities(db: &Database, catalog: &mut Catalog) -> Result<(), CatalogError> {
    // Group joinable (integer or text) columns by attribute name; keep
    // (relation, attr, column, type) and only pair same-typed columns.
    type KeyColumn<'a> = (
        &'a mvdesign_catalog::RelName,
        &'a AttrRef,
        &'a Column,
        AttrType,
    );
    let mut by_name: BTreeMap<&str, Vec<KeyColumn<'_>>> = BTreeMap::new();
    for (name, table) in db.iter() {
        for (idx, attr) in table.attrs().iter().enumerate() {
            let col = table.batch().column(idx);
            let ty = column_type(col);
            if matches!(ty, AttrType::Int | AttrType::Text) {
                by_name
                    .entry(attr.attr.as_str())
                    .or_default()
                    .push((name, attr, col, ty));
            }
        }
    }
    for columns in by_name.values() {
        for (i, (ln, la, lc, lt)) in columns.iter().enumerate() {
            for (rn, ra, rc, rt) in &columns[i + 1..] {
                if ln == rn || lt != rt || lc.is_empty() || rc.is_empty() {
                    continue;
                }
                let matches = count_matches(lc, rc);
                if matches == 0.0 {
                    continue;
                }
                let js = matches / (lc.len() as f64 * rc.len() as f64);
                let a = AttrRef::new((*ln).clone(), la.attr.clone());
                let b = AttrRef::new((*rn).clone(), ra.attr.clone());
                catalog.set_join_selectivity(a, b, js.min(1.0))?;
            }
        }
    }
    Ok(())
}

/// Σ over right values of the left value's frequency — the number of
/// equi-join matches. Two `Int` columns count through a raw `i64` map; two
/// dictionary columns count through code frequency vectors, translating
/// each right *dictionary entry* (not each row) into the left code space,
/// so the cost is `O(|L| + |R| + |dicts|)` with no per-row string work.
fn count_matches(lc: &Column, rc: &Column) -> f64 {
    match (lc, rc) {
        (Column::Int(a), Column::Int(b)) => {
            let mut freq: HashMap<i64, f64> = HashMap::with_capacity(a.len());
            for &x in a {
                *freq.entry(x).or_insert(0.0) += 1.0;
            }
            b.iter().map(|x| freq.get(x).copied().unwrap_or(0.0)).sum()
        }
        (
            Column::Dict {
                codes: a,
                values: va,
            },
            Column::Dict {
                codes: b,
                values: vb,
            },
        ) => {
            let mut freq = vec![0.0f64; va.len()];
            for &c in a {
                freq[c as usize] += 1.0;
            }
            if std::sync::Arc::ptr_eq(va, vb) {
                return b.iter().map(|&c| freq[c as usize]).sum();
            }
            let by_str: HashMap<&str, usize> =
                va.iter().enumerate().map(|(i, s)| (&**s, i)).collect();
            let translated: Vec<f64> = vb
                .iter()
                .map(|s| by_str.get(&**s).map_or(0.0, |&i| freq[i]))
                .collect();
            b.iter().map(|&c| translated[c as usize]).sum()
        }
        (Column::Text(_) | Column::Dict { .. }, Column::Text(_) | Column::Dict { .. }) => {
            // Mixed text representations: one `&str` frequency map, no
            // `Value` allocation.
            let mut freq: HashMap<&str, f64> = HashMap::with_capacity(lc.len());
            for i in 0..lc.len() {
                if let Some(s) = lc.str_at(i) {
                    *freq.entry(s).or_insert(0.0) += 1.0;
                }
            }
            (0..rc.len())
                .map(|j| {
                    rc.str_at(j)
                        .and_then(|s| freq.get(s).copied())
                        .unwrap_or(0.0)
                })
                .sum()
        }
        _ => {
            let mut freq: HashMap<Value, f64> = HashMap::new();
            for i in 0..lc.len() {
                *freq.entry(lc.value(i)).or_insert(0.0) += 1.0;
            }
            (0..rc.len())
                .map(|j| freq.get(&rc.value(j)).copied().unwrap_or(0.0))
                .sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use mvdesign_algebra::AttrRef;

    fn db() -> Database {
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(i % 10),
                    Value::text(format!("c{}", i % 4)),
                ]
            })
            .collect();
        db.insert_table(Table::new(
            "Fact",
            [
                AttrRef::new("Fact", "id"),
                AttrRef::new("Fact", "dim"),
                AttrRef::new("Fact", "cat"),
            ],
            rows,
        ));
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::Int(i), Value::text(format!("d{i}"))])
            .collect();
        db.insert_table(Table::new(
            "Dim",
            [AttrRef::new("Dim", "dim"), AttrRef::new("Dim", "label")],
            rows,
        ));
        db
    }

    #[test]
    fn profiles_sizes_and_types() {
        let c = profile_database(&db(), &ProfileConfig::default()).expect("profiles");
        assert_eq!(c.stats("Fact").unwrap().records, 100.0);
        assert_eq!(c.stats("Fact").unwrap().blocks, 10.0);
        let schema = c.schema("Fact").unwrap();
        assert_eq!(schema.attribute("cat").unwrap().ty, AttrType::Text);
        assert_eq!(schema.attribute("dim").unwrap().ty, AttrType::Int);
    }

    #[test]
    fn selectivities_are_reciprocal_distinct_counts() {
        let c = profile_database(&db(), &ProfileConfig::default()).expect("profiles");
        assert!((c.selectivity("Fact", "cat") - 0.25).abs() < 1e-12);
        assert!((c.selectivity("Fact", "dim") - 0.1).abs() < 1e-12);
        assert!((c.selectivity("Fact", "id") - 0.01).abs() < 1e-12);
    }

    #[test]
    fn join_selectivity_is_measured_exactly() {
        let c = profile_database(&db(), &ProfileConfig::default()).expect("profiles");
        // Every Fact row matches exactly one Dim row: 100 matches over
        // 100 × 10 pairs.
        let js = c
            .join_selectivity(&AttrRef::new("Fact", "dim"), &AttrRef::new("Dim", "dim"))
            .expect("detected");
        assert!((js - 0.1).abs() < 1e-12);
    }

    #[test]
    fn join_detection_can_be_disabled() {
        let c = profile_database(
            &db(),
            &ProfileConfig {
                detect_joins: false,
                ..ProfileConfig::default()
            },
        )
        .expect("profiles");
        assert!(c
            .join_selectivity(&AttrRef::new("Fact", "dim"), &AttrRef::new("Dim", "dim"))
            .is_none());
    }

    #[test]
    fn profiled_catalog_estimates_match_reality() {
        use mvdesign_algebra::{CompareOp, Expr, Predicate};
        let database = db();
        let c = profile_database(&database, &ProfileConfig::default()).expect("profiles");
        // Estimated selection output vs actual row count.
        let q = Expr::select(
            Expr::base("Fact"),
            Predicate::cmp(AttrRef::new("Fact", "cat"), CompareOp::Eq, "c1"),
        );
        let est = mvdesign_catalog::RelationStats::new(
            c.stats("Fact").unwrap().records * c.selectivity("Fact", "cat"),
            0.0,
        );
        let actual = crate::exec::execute(&q, &database).expect("executes").len() as f64;
        assert!(
            (est.records - actual).abs() <= 1.0,
            "est {} vs actual {actual}",
            est.records
        );
    }

    #[test]
    fn empty_tables_profile_without_panicking() {
        let mut database = Database::new();
        database.insert_table(Table::new("Empty", [AttrRef::new("Empty", "x")], vec![]));
        let c = profile_database(&database, &ProfileConfig::default()).expect("profiles");
        assert_eq!(c.stats("Empty").unwrap().records, 0.0);
        assert_eq!(
            c.schema("Empty").unwrap().attribute("x").unwrap().ty,
            AttrType::Int
        );
    }
}
