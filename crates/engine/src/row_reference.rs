//! The original tuple-at-a-time engine, preserved as a differential oracle.
//!
//! When the execution layer moved to columnar batches ([`crate::execute`]),
//! this module kept the row-at-a-time implementation byte-for-byte: a
//! deliberately independent baseline with no shared operator code, so
//! `mvdesign-verify`'s executable-semantics oracle and the
//! `tests/engine_batch.rs` property suite can assert batch ≡ row as bags
//! without the two sides sharing the bugs they are checking for.
//!
//! Nothing here is optimised — per-row attribute lookups and per-value
//! clones are the point: this is the semantics specification, not the
//! engine.

use std::collections::BTreeMap;
use std::sync::Arc;

use mvdesign_algebra::{AggFunc, Expr, Predicate, Rhs, Value};

use crate::exec::{ExecError, JoinAlgo};
use crate::table::{Database, Table};

/// Evaluates an SPJ expression tuple-at-a-time, producing a result table
/// with bag semantics. The reference implementation behind [`crate::execute`]'s
/// differential tests.
///
/// # Errors
///
/// Returns [`ExecError`] when a base relation is missing from the database
/// or an attribute reference cannot be resolved.
pub fn execute(expr: &Arc<Expr>, db: &Database) -> Result<Table, ExecError> {
    execute_with(expr, db, JoinAlgo::NestedLoop)
}

/// Like [`execute`], with an explicit physical join algorithm.
///
/// # Errors
///
/// Returns [`ExecError`] when a base relation is missing from the database
/// or an attribute reference cannot be resolved.
pub fn execute_with(expr: &Arc<Expr>, db: &Database, algo: JoinAlgo) -> Result<Table, ExecError> {
    match &**expr {
        Expr::Base(name) => db
            .table(name.as_str())
            .cloned()
            .ok_or_else(|| ExecError::UnknownRelation(name.clone())),
        Expr::Select { input, predicate } => {
            let t = execute_with(input, db, algo)?;
            let rows = t
                .rows()
                .iter()
                .filter_map(|row| match eval_predicate(predicate, &t, row) {
                    Ok(true) => Some(Ok(row.clone())),
                    Ok(false) => None,
                    Err(e) => Some(Err(e)),
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Table::new("σ", t.attrs().to_vec(), rows))
        }
        Expr::Project { input, attrs } => {
            let t = execute_with(input, db, algo)?;
            let idx: Vec<usize> = attrs
                .iter()
                .map(|a| {
                    t.index_of(a)
                        .ok_or_else(|| ExecError::MissingAttr(a.clone()))
                })
                .collect::<Result<_, _>>()?;
            let rows = t
                .rows()
                .iter()
                .map(|row| idx.iter().map(|&i| row[i].clone()).collect())
                .collect();
            Ok(Table::new("π", attrs.clone(), rows))
        }
        Expr::Join { left, right, on } => {
            let l = execute_with(left, db, algo)?;
            let r = execute_with(right, db, algo)?;
            // Resolve each condition pair to (left index, right index).
            let mut pairs = Vec::with_capacity(on.pairs().len());
            for (a, b) in on.pairs() {
                let resolved = match (l.index_of(a), r.index_of(b)) {
                    (Some(la), Some(rb)) => (la, rb),
                    _ => match (l.index_of(b), r.index_of(a)) {
                        (Some(lb), Some(ra)) => (lb, ra),
                        _ => return Err(ExecError::MissingAttr(a.clone())),
                    },
                };
                pairs.push(resolved);
            }
            let mut attrs = l.attrs().to_vec();
            attrs.extend(r.attrs().iter().cloned());
            let rows = match algo {
                JoinAlgo::NestedLoop => nested_loop_join(&l, &r, &pairs),
                JoinAlgo::Hash => hash_join(&l, &r, &pairs),
                JoinAlgo::SortMerge => sort_merge_join(&l, &r, &pairs),
            };
            Ok(Table::new("⋈", attrs, rows))
        }
        Expr::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let t = execute_with(input, db, algo)?;
            let gidx: Vec<usize> = group_by
                .iter()
                .map(|a| {
                    t.index_of(a)
                        .ok_or_else(|| ExecError::MissingAttr(a.clone()))
                })
                .collect::<Result<_, _>>()?;
            let aidx: Vec<Option<usize>> = aggs
                .iter()
                .map(|a| match &a.input {
                    Some(attr) => t
                        .index_of(attr)
                        .map(Some)
                        .ok_or_else(|| ExecError::MissingAttr(attr.clone())),
                    None => Ok(None),
                })
                .collect::<Result<_, _>>()?;

            let mut groups: BTreeMap<Vec<Value>, Vec<AggState>> = BTreeMap::new();
            for row in t.rows() {
                let key: Vec<Value> = gidx.iter().map(|&i| row[i].clone()).collect();
                let states = groups
                    .entry(key)
                    .or_insert_with(|| vec![AggState::default(); aggs.len()]);
                for (state, idx) in states.iter_mut().zip(&aidx) {
                    state.feed(idx.map(|i| &row[i]));
                }
            }

            let mut attrs = group_by.clone();
            attrs.extend(aggs.iter().map(|a| a.output_attr()));
            let rows = groups
                .into_iter()
                .map(|(key, states)| {
                    let mut row = key;
                    for (state, agg) in states.iter().zip(aggs) {
                        row.push(state.finish(agg.func));
                    }
                    row
                })
                .collect();
            Ok(Table::new("γ", attrs, rows))
        }
    }
}

fn nested_loop_join(l: &Table, r: &Table, pairs: &[(usize, usize)]) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    for lrow in l.rows() {
        for rrow in r.rows() {
            if pairs.iter().all(|&(li, ri)| lrow[li] == rrow[ri]) {
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                rows.push(row);
            }
        }
    }
    rows
}

fn hash_join(l: &Table, r: &Table, pairs: &[(usize, usize)]) -> Vec<Vec<Value>> {
    use std::collections::HashMap;
    // Build on the right input, probe with the left. A cross join hashes
    // everything under the empty key, degenerating gracefully.
    let mut built: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::new();
    for rrow in r.rows() {
        let key: Vec<Value> = pairs.iter().map(|&(_, ri)| rrow[ri].clone()).collect();
        built.entry(key).or_default().push(rrow);
    }
    let mut rows = Vec::new();
    for lrow in l.rows() {
        let key: Vec<Value> = pairs.iter().map(|&(li, _)| lrow[li].clone()).collect();
        if let Some(matches) = built.get(&key) {
            for rrow in matches {
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                rows.push(row);
            }
        }
    }
    rows
}

fn sort_merge_join(l: &Table, r: &Table, pairs: &[(usize, usize)]) -> Vec<Vec<Value>> {
    if pairs.is_empty() {
        // No key to sort on: fall back to the nested loop (cross product).
        return nested_loop_join(l, r, pairs);
    }
    let key_of = |row: &[Value], idx: &[usize]| -> Vec<Value> {
        idx.iter().map(|&i| row[i].clone()).collect()
    };
    let lkeys: Vec<usize> = pairs.iter().map(|&(li, _)| li).collect();
    let rkeys: Vec<usize> = pairs.iter().map(|&(_, ri)| ri).collect();
    let mut ls: Vec<&Vec<Value>> = l.rows().iter().collect();
    let mut rs: Vec<&Vec<Value>> = r.rows().iter().collect();
    ls.sort_by_key(|row| key_of(row, &lkeys));
    rs.sort_by_key(|row| key_of(row, &rkeys));

    let mut rows = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < ls.len() && j < rs.len() {
        let lk = key_of(ls[i], &lkeys);
        let rk = key_of(rs[j], &rkeys);
        match lk.cmp(&rk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the full group × group block.
                let gi_end = (i..ls.len())
                    .take_while(|&x| key_of(ls[x], &lkeys) == lk)
                    .last()
                    .expect("group is non-empty")
                    + 1;
                let gj_end = (j..rs.len())
                    .take_while(|&x| key_of(rs[x], &rkeys) == rk)
                    .last()
                    .expect("group is non-empty")
                    + 1;
                for lrow in &ls[i..gi_end] {
                    for rrow in &rs[j..gj_end] {
                        let mut row = (*lrow).clone();
                        row.extend(rrow.iter().cloned());
                        rows.push(row);
                    }
                }
                i = gi_end;
                j = gj_end;
            }
        }
    }
    rows
}

/// Running aggregate state for one group and one aggregate.
#[derive(Debug, Clone, Default)]
struct AggState {
    count: i64,
    sum: i64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    /// Folds one row's value in (`None` for `COUNT(*)`).
    fn feed(&mut self, value: Option<&Value>) {
        self.count += 1;
        if let Some(v) = value {
            // Numeric folding treats dates as their day numbers; text
            // contributes only to COUNT/MIN/MAX.
            match v {
                Value::Int(i) | Value::Date(i) => self.sum += i,
                Value::Text(_) => {}
            }
            if self.min.as_ref().is_none_or(|m| v < m) {
                self.min = Some(v.clone());
            }
            if self.max.as_ref().is_none_or(|m| v > m) {
                self.max = Some(v.clone());
            }
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => Value::Int(self.sum),
            AggFunc::Min => self.min.clone().unwrap_or(Value::Int(0)),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Int(0)),
            AggFunc::Avg => Value::Int(if self.count > 0 {
                self.sum / self.count
            } else {
                0
            }),
        }
    }
}

/// Evaluates a predicate on one row.
fn eval_predicate(p: &Predicate, t: &Table, row: &[Value]) -> Result<bool, ExecError> {
    match p {
        Predicate::True => Ok(true),
        Predicate::Cmp(c) => {
            let li = t
                .index_of(&c.attr)
                .ok_or_else(|| ExecError::MissingAttr(c.attr.clone()))?;
            let lhs = &row[li];
            let rhs_value;
            let rhs = match &c.rhs {
                Rhs::Literal(v) => v,
                Rhs::Attr(a) => {
                    let ri = t
                        .index_of(a)
                        .ok_or_else(|| ExecError::MissingAttr(a.clone()))?;
                    rhs_value = row[ri].clone();
                    &rhs_value
                }
            };
            Ok(c.op.eval(lhs, rhs))
        }
        Predicate::And(ps) => {
            for p in ps {
                if !eval_predicate(p, t, row)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Predicate::Or(ps) => {
            for p in ps {
                if eval_predicate(p, t, row)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{AttrRef, CompareOp, JoinCondition};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_table(Table::new(
            "Pd",
            [
                AttrRef::new("Pd", "Pid"),
                AttrRef::new("Pd", "name"),
                AttrRef::new("Pd", "Did"),
            ],
            vec![
                vec![Value::Int(1), Value::text("widget"), Value::Int(10)],
                vec![Value::Int(2), Value::text("gadget"), Value::Int(20)],
                vec![Value::Int(3), Value::text("sprocket"), Value::Int(10)],
            ],
        ));
        db.insert_table(Table::new(
            "Div",
            [
                AttrRef::new("Div", "Did"),
                AttrRef::new("Div", "name"),
                AttrRef::new("Div", "city"),
            ],
            vec![
                vec![Value::Int(10), Value::text("west"), Value::text("LA")],
                vec![Value::Int(20), Value::text("east"), Value::text("NY")],
            ],
        ));
        db
    }

    #[test]
    fn reference_engine_matches_batch_engine_on_fixture() {
        let db = db();
        let exprs: Vec<Arc<Expr>> = vec![
            Expr::select(
                Expr::base("Div"),
                Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
            ),
            Expr::project(Expr::base("Pd"), [AttrRef::new("Pd", "Did")]),
            Expr::join(
                Expr::base("Pd"),
                Expr::base("Div"),
                JoinCondition::on(AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did")),
            ),
        ];
        for e in &exprs {
            for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
                let reference = execute_with(e, &db, algo)
                    .expect("row engine")
                    .canonicalized();
                let batch = crate::exec::execute_with(e, &db, algo)
                    .expect("batch engine")
                    .canonicalized();
                assert_eq!(reference.rows(), batch.rows(), "{e} under {algo:?}");
            }
        }
    }

    #[test]
    fn missing_relation_errors() {
        let e = Expr::base("Ghost");
        assert!(matches!(
            execute(&e, &db()),
            Err(ExecError::UnknownRelation(_))
        ));
    }
}
