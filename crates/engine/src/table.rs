//! In-memory tables and databases.
//!
//! Since the columnar refactor a [`Table`] is a thin façade over a
//! [`Batch`]: data lives in typed columns, and the row-major view that the
//! original API exposed ([`Table::rows`]) is materialised lazily and cached,
//! so legacy callers and tests keep working while the engine itself never
//! touches tuples. Dictionary-encoded text columns rehydrate the same way:
//! strings are only built (one `Arc` bump per cell) when the row façade is
//! actually asked for, never on the batch execution path.
//!
//! Tables are `Sync` and safe to share by reference across the morsel
//! engine's scoped workers: columns are immutable behind `Arc`s, and the
//! lazy row cache is a [`OnceLock`], so concurrent first calls to
//! [`Table::rows`] race only on which thread's (identical) materialisation
//! wins publication.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

use mvdesign_algebra::{AttrRef, Value};
use mvdesign_catalog::RelName;

use crate::batch::Batch;

/// A materialized relation: a header of qualified attributes plus columnar
/// data (bag semantics — duplicates are kept).
#[derive(Debug)]
pub struct Table {
    name: RelName,
    batch: Batch,
    /// Lazily materialised row-major view backing [`Table::rows`].
    row_cache: OnceLock<Vec<Vec<Value>>>,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        // Cloning shares the (Arc'd) columns and drops the row cache — the
        // clone rebuilds it only if someone asks for rows.
        Self {
            name: self.name.clone(),
            batch: self.batch.clone(),
            row_cache: OnceLock::new(),
        }
    }
}

impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.batch == other.batch
    }
}

impl Eq for Table {}

impl Table {
    /// Creates a table from row-major tuples.
    ///
    /// # Panics
    ///
    /// Panics if any row's arity differs from the header's — tables are
    /// built by the engine or by test fixtures, where that is a bug.
    pub fn new(
        name: impl Into<RelName>,
        attrs: impl IntoIterator<Item = AttrRef>,
        rows: Vec<Vec<Value>>,
    ) -> Self {
        let attrs: Vec<AttrRef> = attrs.into_iter().collect();
        Self::from_batch(name, Batch::from_rows(attrs, rows))
    }

    /// Wraps a finished batch as a named table (no data movement).
    pub fn from_batch(name: impl Into<RelName>, batch: Batch) -> Self {
        Self {
            name: name.into(),
            batch,
            row_cache: OnceLock::new(),
        }
    }

    /// The table's name.
    pub fn name(&self) -> &RelName {
        &self.name
    }

    /// The qualified attribute header.
    pub fn attrs(&self) -> &[AttrRef] {
        self.batch.attrs()
    }

    /// The columnar data.
    pub fn batch(&self) -> &Batch {
        &self.batch
    }

    /// Consumes the table and returns its batch.
    pub fn into_batch(self) -> Batch {
        self.batch
    }

    /// The rows, materialised from the columns on first use and cached.
    pub fn rows(&self) -> &[Vec<Value>] {
        self.row_cache.get_or_init(|| self.batch.to_rows())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.batch.rows()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.batch.is_empty()
    }

    /// Index of an attribute in the header.
    pub fn index_of(&self, attr: &AttrRef) -> Option<usize> {
        self.batch.index_of(attr)
    }

    /// Appends row-major tuples to the columns (the warehouse's base-load
    /// path).
    ///
    /// # Panics
    ///
    /// Panics if any row's arity differs from the header's.
    pub fn extend_rows(&mut self, rows: Vec<Vec<Value>>) {
        if rows.is_empty() {
            return;
        }
        for row in rows {
            self.batch.push_row(row);
        }
        self.row_cache = OnceLock::new();
    }

    /// A copy with rows sorted, for order-insensitive comparison in tests:
    /// two tables are bag-equal iff their canonicalized forms are equal.
    #[must_use]
    pub fn canonicalized(&self) -> Self {
        let mut rows = self.rows().to_vec();
        rows.sort();
        Self::new(self.name.clone(), self.attrs().to_vec(), rows)
    }

    /// Consumes the table and returns its rows.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        match self.row_cache.into_inner() {
            Some(rows) => rows,
            None => self.batch.to_rows(),
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self.attrs().iter().map(|a| a.to_string()).collect();
        writeln!(f, "{} [{} rows]", self.name, self.len())?;
        writeln!(f, "  {}", headers.join(" | "))?;
        for i in 0..self.len().min(20) {
            let cells: Vec<String> = self
                .batch
                .columns()
                .iter()
                .map(|c| c.value(i).to_string())
                .collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        if self.len() > 20 {
            writeln!(f, "  … {} more", self.len() - 20)?;
        }
        Ok(())
    }
}

/// A collection of named tables — the "member database" the warehouse reads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    tables: BTreeMap<RelName, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a table under its own name.
    pub fn insert_table(&mut self, table: Table) -> Option<Table> {
        self.tables.insert(table.name().clone(), table)
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Looks up a table for in-place mutation (appends).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Iterates over tables in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &Table)> {
        self.tables.iter()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the database has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(
            "R",
            [AttrRef::new("R", "a"), AttrRef::new("R", "b")],
            vec![
                vec![Value::Int(2), Value::text("y")],
                vec![Value::Int(1), Value::text("x")],
            ],
        )
    }

    #[test]
    fn header_lookup() {
        let t = t();
        assert_eq!(t.index_of(&AttrRef::new("R", "b")), Some(1));
        assert_eq!(t.index_of(&AttrRef::new("R", "z")), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn canonicalized_sorts_rows() {
        let c = t().canonicalized();
        assert_eq!(c.rows()[0][0], Value::Int(1));
    }

    #[test]
    fn bag_equality_via_canonicalization() {
        let a = t();
        let mut rows = a.rows().to_vec();
        rows.reverse();
        let b = Table::new("R", a.attrs().to_vec(), rows);
        assert_ne!(a, b);
        assert_eq!(a.canonicalized(), b.canonicalized());
    }

    #[test]
    fn rows_round_trip_through_columns() {
        let table = t();
        assert_eq!(
            table.rows(),
            [
                vec![Value::Int(2), Value::text("y")],
                vec![Value::Int(1), Value::text("x")],
            ]
        );
        assert_eq!(table.clone().into_rows(), table.rows());
    }

    #[test]
    fn extend_rows_appends_columnar() {
        let mut table = t();
        table.extend_rows(vec![vec![Value::Int(3), Value::text("z")]]);
        assert_eq!(table.len(), 3);
        assert_eq!(table.rows()[2], vec![Value::Int(3), Value::text("z")]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn ragged_rows_panic() {
        let _ = Table::new(
            "R",
            [AttrRef::new("R", "a")],
            vec![vec![Value::Int(1), Value::Int(2)]],
        );
    }

    #[test]
    fn database_round_trip() {
        let mut db = Database::new();
        assert!(db.insert_table(t()).is_none());
        assert!(db.table("R").is_some());
        assert!(db.table("S").is_none());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn display_truncates() {
        let rows = (0..30)
            .map(|i| vec![Value::Int(i), Value::text("v")])
            .collect();
        let t = Table::new("R", [AttrRef::new("R", "a"), AttrRef::new("R", "b")], rows);
        let s = t.to_string();
        assert!(s.contains("… 10 more"));
    }
}
