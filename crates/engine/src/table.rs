//! In-memory tables and databases.

use std::collections::BTreeMap;
use std::fmt;

use mvdesign_algebra::{AttrRef, Value};
use mvdesign_catalog::RelName;

/// A materialized relation: a header of qualified attributes plus rows of
/// values (bag semantics — duplicates are kept).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    name: RelName,
    attrs: Vec<AttrRef>,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates a table.
    ///
    /// # Panics
    ///
    /// Panics if any row's arity differs from the header's — tables are
    /// built by the engine or by test fixtures, where that is a bug.
    pub fn new(
        name: impl Into<RelName>,
        attrs: impl IntoIterator<Item = AttrRef>,
        rows: Vec<Vec<Value>>,
    ) -> Self {
        let attrs: Vec<AttrRef> = attrs.into_iter().collect();
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                attrs.len(),
                "row {i} has arity {} but the header has {}",
                row.len(),
                attrs.len()
            );
        }
        Self {
            name: name.into(),
            attrs,
            rows,
        }
    }

    /// The table's name.
    pub fn name(&self) -> &RelName {
        &self.name
    }

    /// The qualified attribute header.
    pub fn attrs(&self) -> &[AttrRef] {
        &self.attrs
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of an attribute in the header.
    pub fn index_of(&self, attr: &AttrRef) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }

    /// A copy with rows sorted, for order-insensitive comparison in tests:
    /// two tables are bag-equal iff their canonicalized forms are equal.
    #[must_use]
    pub fn canonicalized(&self) -> Self {
        let mut rows = self.rows.clone();
        rows.sort();
        Self {
            name: self.name.clone(),
            attrs: self.attrs.clone(),
            rows,
        }
    }

    /// Consumes the table and returns its rows.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        self.rows
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self.attrs.iter().map(|a| a.to_string()).collect();
        writeln!(f, "{} [{} rows]", self.name, self.rows.len())?;
        writeln!(f, "  {}", headers.join(" | "))?;
        for row in self.rows.iter().take(20) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "  … {} more", self.rows.len() - 20)?;
        }
        Ok(())
    }
}

/// A collection of named tables — the "member database" the warehouse reads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    tables: BTreeMap<RelName, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a table under its own name.
    pub fn insert_table(&mut self, table: Table) -> Option<Table> {
        self.tables.insert(table.name().clone(), table)
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Iterates over tables in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &Table)> {
        self.tables.iter()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the database has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(
            "R",
            [AttrRef::new("R", "a"), AttrRef::new("R", "b")],
            vec![
                vec![Value::Int(2), Value::text("y")],
                vec![Value::Int(1), Value::text("x")],
            ],
        )
    }

    #[test]
    fn header_lookup() {
        let t = t();
        assert_eq!(t.index_of(&AttrRef::new("R", "b")), Some(1));
        assert_eq!(t.index_of(&AttrRef::new("R", "z")), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn canonicalized_sorts_rows() {
        let c = t().canonicalized();
        assert_eq!(c.rows()[0][0], Value::Int(1));
    }

    #[test]
    fn bag_equality_via_canonicalization() {
        let a = t();
        let mut rows = a.rows().to_vec();
        rows.reverse();
        let b = Table::new("R", a.attrs().to_vec(), rows);
        assert_ne!(a, b);
        assert_eq!(a.canonicalized(), b.canonicalized());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn ragged_rows_panic() {
        let _ = Table::new(
            "R",
            [AttrRef::new("R", "a")],
            vec![vec![Value::Int(1), Value::Int(2)]],
        );
    }

    #[test]
    fn database_round_trip() {
        let mut db = Database::new();
        assert!(db.insert_table(t()).is_none());
        assert!(db.table("R").is_some());
        assert!(db.table("S").is_none());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn display_truncates() {
        let rows = (0..30)
            .map(|i| vec![Value::Int(i), Value::text("v")])
            .collect();
        let t = Table::new("R", [AttrRef::new("R", "a"), AttrRef::new("R", "b")], rows);
        let s = t.to_string();
        assert!(s.contains("… 10 more"));
    }
}
