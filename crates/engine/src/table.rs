//! In-memory tables and databases.
//!
//! Since the columnar refactor a [`Table`] is a thin façade over a
//! [`Batch`]: data lives in typed columns, and the row-major view that the
//! original API exposed ([`Table::rows`]) is materialised lazily and cached,
//! so legacy callers and tests keep working while the engine itself never
//! touches tuples. Dictionary-encoded text columns rehydrate the same way:
//! strings are only built (one `Arc` bump per cell) when the row façade is
//! actually asked for, never on the batch execution path.
//!
//! Tables are `Sync` and safe to share by reference across the morsel
//! engine's scoped workers: columns are immutable behind `Arc`s, and the
//! lazy row cache is a [`OnceLock`], so concurrent first calls to
//! [`Table::rows`] race only on which thread's (identical) materialisation
//! wins publication.
//!
//! Since the paged-storage refactor a table's data lives in one of two
//! homes: fully *resident* (the historical layout — one [`Batch`]) or
//! *paged* (a [`PagedBatch`] of fixed-size page handles into a shared
//! [`BufferPool`]). [`Table::page_out`] and [`Table::make_resident`] move
//! between the two; the engine's view-based spine streams paged tables
//! page-at-a-time, while legacy callers of [`Table::batch`] see a lazily
//! materialised (and cached) resident batch either way.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use mvdesign_algebra::{AttrRef, Value};
use mvdesign_catalog::RelName;

use crate::batch::Batch;
use crate::storage::{BufferPool, PagedBatch};

/// Where a table's columns live: resident in one batch, or cut into pages
/// owned by a buffer pool.
#[derive(Debug, Clone)]
enum TableData {
    Resident(Batch),
    Paged(Arc<PagedBatch>),
}

/// A materialized relation: a header of qualified attributes plus columnar
/// data (bag semantics — duplicates are kept).
#[derive(Debug)]
pub struct Table {
    name: RelName,
    data: TableData,
    /// Lazily materialised resident batch backing [`Table::batch`] when the
    /// data is paged (unused — never initialised — while resident).
    batch_cache: OnceLock<Batch>,
    /// Lazily materialised row-major view backing [`Table::rows`].
    row_cache: OnceLock<Vec<Vec<Value>>>,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        // Cloning shares the (Arc'd) columns or page handles and drops the
        // caches — the clone rebuilds them only if someone asks.
        Self {
            name: self.name.clone(),
            data: self.data.clone(),
            batch_cache: OnceLock::new(),
            row_cache: OnceLock::new(),
        }
    }
}

impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        // Paged data compares through materialisation, which is
        // representation-exact — so a table equals its paged-out twin.
        self.name == other.name && self.batch() == other.batch()
    }
}

impl Eq for Table {}

impl Table {
    /// Creates a table from row-major tuples.
    ///
    /// # Panics
    ///
    /// Panics if any row's arity differs from the header's — tables are
    /// built by the engine or by test fixtures, where that is a bug.
    pub fn new(
        name: impl Into<RelName>,
        attrs: impl IntoIterator<Item = AttrRef>,
        rows: Vec<Vec<Value>>,
    ) -> Self {
        let attrs: Vec<AttrRef> = attrs.into_iter().collect();
        Self::from_batch(name, Batch::from_rows(attrs, rows))
    }

    /// Wraps a finished batch as a named table (no data movement).
    pub fn from_batch(name: impl Into<RelName>, batch: Batch) -> Self {
        Self {
            name: name.into(),
            data: TableData::Resident(batch),
            batch_cache: OnceLock::new(),
            row_cache: OnceLock::new(),
        }
    }

    /// Wraps an already-paged batch as a named table (shares the handles).
    pub fn from_paged(name: impl Into<RelName>, paged: Arc<PagedBatch>) -> Self {
        Self {
            name: name.into(),
            data: TableData::Paged(paged),
            batch_cache: OnceLock::new(),
            row_cache: OnceLock::new(),
        }
    }

    /// The table's name.
    pub fn name(&self) -> &RelName {
        &self.name
    }

    /// The qualified attribute header.
    pub fn attrs(&self) -> &[AttrRef] {
        match &self.data {
            TableData::Resident(b) => b.attrs(),
            TableData::Paged(p) => p.attrs(),
        }
    }

    /// The columnar data as one resident batch. For a paged table this
    /// pins and concatenates every page on first use and caches the result
    /// — the engine's execution spine never calls it on paged data (it
    /// streams pages instead); it exists for legacy callers, display, and
    /// the row façade.
    pub fn batch(&self) -> &Batch {
        match &self.data {
            TableData::Resident(b) => b,
            TableData::Paged(p) => self.batch_cache.get_or_init(|| p.to_batch()),
        }
    }

    /// Consumes the table and returns its batch (materialising if paged).
    pub fn into_batch(self) -> Batch {
        match self.data {
            TableData::Resident(b) => b,
            TableData::Paged(p) => match self.batch_cache.into_inner() {
                Some(b) => b,
                None => p.to_batch(),
            },
        }
    }

    /// The page handles, when the table is paged.
    pub(crate) fn paged(&self) -> Option<&Arc<PagedBatch>> {
        match &self.data {
            TableData::Resident(_) => None,
            TableData::Paged(p) => Some(p),
        }
    }

    /// The buffer pool owning this table's pages, when paged.
    pub fn pool(&self) -> Option<&Arc<BufferPool>> {
        self.paged().map(|p| p.pool())
    }

    /// Cuts the table's columns into pages owned by `pool` and drops the
    /// resident copy — subsequent execution streams pages (pin, evict,
    /// reload) instead of holding the data in memory. Results are
    /// bit-identical either way. Re-paging an already-paged table re-cuts
    /// it into the given pool.
    pub fn page_out(&mut self, pool: &Arc<BufferPool>, page_rows: usize) {
        let paged = PagedBatch::from_batch(self.batch(), pool, page_rows);
        self.data = TableData::Paged(Arc::new(paged));
        self.batch_cache = OnceLock::new();
        self.row_cache = OnceLock::new();
    }

    /// Brings a paged table fully back into memory, detaching it from its
    /// pool. A no-op on resident tables.
    pub fn make_resident(&mut self) {
        if matches!(self.data, TableData::Resident(_)) {
            return;
        }
        let batch = match self.batch_cache.take() {
            Some(b) => b,
            None => match &self.data {
                TableData::Paged(p) => p.to_batch(),
                TableData::Resident(_) => unreachable!("checked above"),
            },
        };
        self.data = TableData::Resident(batch);
    }

    /// The rows, materialised from the columns on first use and cached.
    pub fn rows(&self) -> &[Vec<Value>] {
        self.row_cache.get_or_init(|| self.batch().to_rows())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            TableData::Resident(b) => b.rows(),
            TableData::Paged(p) => p.rows(),
        }
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of an attribute in the header.
    pub fn index_of(&self, attr: &AttrRef) -> Option<usize> {
        match &self.data {
            TableData::Resident(b) => b.index_of(attr),
            TableData::Paged(p) => p.index_of(attr),
        }
    }

    /// Appends row-major tuples to the columns (the warehouse's base-load
    /// path). A paged table is brought resident first — appends re-page via
    /// [`Table::page_out`] if the caller wants them paged again.
    ///
    /// # Panics
    ///
    /// Panics if any row's arity differs from the header's.
    pub fn extend_rows(&mut self, rows: Vec<Vec<Value>>) {
        if rows.is_empty() {
            return;
        }
        self.make_resident();
        let TableData::Resident(batch) = &mut self.data else {
            unreachable!("make_resident leaves the table resident");
        };
        for row in rows {
            batch.push_row(row);
        }
        self.row_cache = OnceLock::new();
    }

    /// A copy with rows sorted, for order-insensitive comparison in tests:
    /// two tables are bag-equal iff their canonicalized forms are equal.
    #[must_use]
    pub fn canonicalized(&self) -> Self {
        let mut rows = self.rows().to_vec();
        rows.sort();
        Self::new(self.name.clone(), self.attrs().to_vec(), rows)
    }

    /// Consumes the table and returns its rows.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        if let Some(rows) = self.row_cache.into_inner() {
            return rows;
        }
        match self.data {
            TableData::Resident(b) => b.to_rows(),
            TableData::Paged(p) => match self.batch_cache.into_inner() {
                Some(b) => b.to_rows(),
                None => p.to_batch().to_rows(),
            },
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self.attrs().iter().map(|a| a.to_string()).collect();
        writeln!(f, "{} [{} rows]", self.name, self.len())?;
        writeln!(f, "  {}", headers.join(" | "))?;
        for i in 0..self.len().min(20) {
            let cells: Vec<String> = self
                .batch()
                .columns()
                .iter()
                .map(|c| c.value(i).to_string())
                .collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        if self.len() > 20 {
            writeln!(f, "  … {} more", self.len() - 20)?;
        }
        Ok(())
    }
}

/// A collection of named tables — the "member database" the warehouse reads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    tables: BTreeMap<RelName, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a table under its own name.
    pub fn insert_table(&mut self, table: Table) -> Option<Table> {
        self.tables.insert(table.name().clone(), table)
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Looks up a table for in-place mutation (appends).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Iterates over tables in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &Table)> {
        self.tables.iter()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the database has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Pages every table's columns out into `pool` (see [`Table::page_out`]).
    /// Queries over the database then stream pages through the pool —
    /// results stay bit-identical at any pool budget.
    pub fn page_out(&mut self, pool: &Arc<BufferPool>, page_rows: usize) {
        for table in self.tables.values_mut() {
            table.page_out(pool, page_rows);
        }
    }

    /// Pages out only the tables that are currently resident —
    /// already-paged tables keep their existing pages (and the pool keeps
    /// its statistics). The warehouse uses this to re-page freshly
    /// materialized views after a refresh without rebuilding untouched
    /// base-table pages.
    pub fn page_out_resident(&mut self, pool: &Arc<BufferPool>, page_rows: usize) {
        for table in self.tables.values_mut() {
            if table.pool().is_none() {
                table.page_out(pool, page_rows);
            }
        }
    }

    /// Brings every paged table fully back into memory (see
    /// [`Table::make_resident`]).
    pub fn make_resident(&mut self) {
        for table in self.tables.values_mut() {
            table.make_resident();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(
            "R",
            [AttrRef::new("R", "a"), AttrRef::new("R", "b")],
            vec![
                vec![Value::Int(2), Value::text("y")],
                vec![Value::Int(1), Value::text("x")],
            ],
        )
    }

    #[test]
    fn header_lookup() {
        let t = t();
        assert_eq!(t.index_of(&AttrRef::new("R", "b")), Some(1));
        assert_eq!(t.index_of(&AttrRef::new("R", "z")), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn canonicalized_sorts_rows() {
        let c = t().canonicalized();
        assert_eq!(c.rows()[0][0], Value::Int(1));
    }

    #[test]
    fn bag_equality_via_canonicalization() {
        let a = t();
        let mut rows = a.rows().to_vec();
        rows.reverse();
        let b = Table::new("R", a.attrs().to_vec(), rows);
        assert_ne!(a, b);
        assert_eq!(a.canonicalized(), b.canonicalized());
    }

    #[test]
    fn rows_round_trip_through_columns() {
        let table = t();
        assert_eq!(
            table.rows(),
            [
                vec![Value::Int(2), Value::text("y")],
                vec![Value::Int(1), Value::text("x")],
            ]
        );
        assert_eq!(table.clone().into_rows(), table.rows());
    }

    #[test]
    fn extend_rows_appends_columnar() {
        let mut table = t();
        table.extend_rows(vec![vec![Value::Int(3), Value::text("z")]]);
        assert_eq!(table.len(), 3);
        assert_eq!(table.rows()[2], vec![Value::Int(3), Value::text("z")]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn ragged_rows_panic() {
        let _ = Table::new(
            "R",
            [AttrRef::new("R", "a")],
            vec![vec![Value::Int(1), Value::Int(2)]],
        );
    }

    #[test]
    fn database_round_trip() {
        let mut db = Database::new();
        assert!(db.insert_table(t()).is_none());
        assert!(db.table("R").is_some());
        assert!(db.table("S").is_none());
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn paged_table_round_trips_and_equals_its_resident_twin() {
        let resident = t();
        let mut paged = resident.clone();
        let pool = BufferPool::new(Some(64));
        paged.page_out(&pool, 1);
        assert!(paged.pool().is_some());
        assert_eq!(paged.len(), 2);
        assert_eq!(paged, resident, "materialisation is representation-exact");
        assert_eq!(paged.rows(), resident.rows());
        paged.make_resident();
        assert!(paged.pool().is_none());
        assert_eq!(paged, resident);
    }

    #[test]
    fn extend_rows_on_a_paged_table_goes_through_resident() {
        let mut table = t();
        let pool = BufferPool::unbounded();
        table.page_out(&pool, 1);
        table.extend_rows(vec![vec![Value::Int(3), Value::text("z")]]);
        assert_eq!(table.len(), 3);
        assert!(table.pool().is_none(), "appends land in a resident table");
        assert_eq!(table.rows()[2], vec![Value::Int(3), Value::text("z")]);
    }

    #[test]
    fn database_page_out_pages_every_table() {
        let mut db = Database::new();
        db.insert_table(t());
        let pool = BufferPool::new(Some(128));
        db.page_out(&pool, 1);
        assert!(db.table("R").expect("table exists").pool().is_some());
        db.make_resident();
        assert!(db.table("R").expect("table exists").pool().is_none());
    }

    #[test]
    fn display_truncates() {
        let rows = (0..30)
            .map(|i| vec![Value::Int(i), Value::text("v")])
            .collect();
        let t = Table::new("R", [AttrRef::new("R", "a"), AttrRef::new("R", "b")], rows);
        let s = t.to_string();
        assert!(s.contains("… 10 more"));
    }
}
