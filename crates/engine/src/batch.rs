//! Columnar storage: typed value vectors ([`Column`]) and record batches
//! ([`Batch`]).
//!
//! The batch engine executes every operator over whole columns instead of
//! one tuple at a time: attribute offsets are resolved once per operator,
//! predicates and join keys run as tight loops over `&[i64]`/`&[Arc<str>]`
//! slices, and row movement happens through a single typed `gather` kernel.
//! Columns are held behind [`Arc`], so operators that keep a column intact
//! (projection, base-table scans) share it instead of copying.
//!
//! Columns keep a *canonical* representation: a column is a typed vector
//! ([`Column::Int`], [`Column::Text`], [`Column::Date`]) exactly when all of
//! its values share one [`Value`] variant, and degrades to the heterogeneous
//! [`Column::Mixed`] fallback otherwise. Two columns built from the same
//! value sequence are therefore representation-equal, which keeps the
//! derived `PartialEq` meaningful.

use std::cmp::Ordering;
use std::sync::Arc;

use mvdesign_algebra::{AttrRef, CompareOp, Value};

/// A typed vector of values — one attribute of a [`Batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Column {
    /// All values are [`Value::Int`].
    Int(Vec<i64>),
    /// All values are [`Value::Text`].
    Text(Vec<Arc<str>>),
    /// All values are [`Value::Date`].
    Date(Vec<i64>),
    /// Heterogeneous fallback: the variants genuinely differ.
    Mixed(Vec<Value>),
}

impl Column {
    /// An empty integer column (the canonical empty column — profiling
    /// types empty columns as integers too).
    pub fn empty() -> Self {
        Column::Int(Vec::new())
    }

    /// Builds a column from a value sequence, choosing the canonical
    /// representation: typed when homogeneous, [`Column::Mixed`] otherwise.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Self {
        let mut col = Column::empty();
        for (i, v) in values.into_iter().enumerate() {
            if i == 0 {
                col = match v {
                    Value::Int(x) => Column::Int(vec![x]),
                    Value::Text(s) => Column::Text(vec![s]),
                    Value::Date(d) => Column::Date(vec![d]),
                };
            } else {
                col.push(v);
            }
        }
        col
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) | Column::Date(v) => v.len(),
            Column::Text(v) => v.len(),
            Column::Mixed(v) => v.len(),
        }
    }

    /// Whether the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `i` (cheap: integers copy, text bumps an [`Arc`]).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Text(v) => Value::Text(Arc::clone(&v[i])),
            Column::Date(v) => Value::Date(v[i]),
            Column::Mixed(v) => v[i].clone(),
        }
    }

    /// Appends one value, keeping the canonical representation: an empty
    /// typed column re-types itself, a non-empty typed column degrades to
    /// [`Column::Mixed`] on a variant mismatch.
    pub fn push(&mut self, v: Value) {
        if self.is_empty() {
            *self = Column::from_values([v]);
            return;
        }
        match (&mut *self, v) {
            (Column::Int(vec), Value::Int(x)) => vec.push(x),
            (Column::Text(vec), Value::Text(s)) => vec.push(s),
            (Column::Date(vec), Value::Date(d)) => vec.push(d),
            (Column::Mixed(vec), v) => vec.push(v),
            (_, v) => {
                let mut values: Vec<Value> = (0..self.len()).map(|i| self.value(i)).collect();
                values.push(v);
                *self = Column::Mixed(values);
            }
        }
    }

    /// A new column holding `self[idx[0]], self[idx[1]], …` — the shared
    /// row-movement kernel of every batch operator.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    #[must_use]
    pub fn gather(&self, idx: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(idx.iter().map(|&i| v[i]).collect()),
            Column::Text(v) => Column::Text(idx.iter().map(|&i| Arc::clone(&v[i])).collect()),
            Column::Date(v) => Column::Date(idx.iter().map(|&i| v[i]).collect()),
            Column::Mixed(v) => {
                // Re-canonicalise: a gather can drop the values that made
                // the column heterogeneous.
                Column::from_values(idx.iter().map(|&i| v[i].clone()))
            }
        }
    }

    /// Compares `self[i]` with `other[j]` under [`Value`]'s total order
    /// (typed fast path; cross-variant comparisons order by variant tag).
    pub fn cmp_at(&self, i: usize, other: &Column, j: usize) -> Ordering {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a[i].cmp(&b[j]),
            (Column::Text(a), Column::Text(b)) => a[i].cmp(&b[j]),
            (Column::Date(a), Column::Date(b)) => a[i].cmp(&b[j]),
            _ => self.value(i).cmp(&other.value(j)),
        }
    }

    /// Whether `self[i] == other[j]` (typed fast path).
    pub fn eq_at(&self, i: usize, other: &Column, j: usize) -> bool {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a[i] == b[j],
            (Column::Text(a), Column::Text(b)) => a[i] == b[j],
            (Column::Date(a), Column::Date(b)) => a[i] == b[j],
            (Column::Int(_) | Column::Text(_) | Column::Date(_), Column::Mixed(_))
            | (Column::Mixed(_), _) => self.value(i) == other.value(j),
            // Distinct typed variants can never hold equal values.
            _ => false,
        }
    }

    /// ANDs `op(self[row], literal)` into `mask` for every still-set row —
    /// the vectorised comparison kernel behind selection predicates.
    pub fn compare_literal_and(&self, op: CompareOp, lit: &Value, mask: &mut [bool]) {
        debug_assert_eq!(mask.len(), self.len());
        match (self, lit) {
            (Column::Int(v), Value::Int(x)) | (Column::Date(v), Value::Date(x)) => {
                for (m, a) in mask.iter_mut().zip(v) {
                    *m = *m && op.eval(a, x);
                }
            }
            (Column::Text(v), Value::Text(x)) => {
                for (m, a) in mask.iter_mut().zip(v) {
                    *m = *m && op.eval(a, x);
                }
            }
            (Column::Mixed(v), _) => {
                for (m, a) in mask.iter_mut().zip(v) {
                    *m = *m && op.eval(a, lit);
                }
            }
            // Variant mismatch on a typed column: every value compares to
            // the literal by variant tag alone, so the outcome is constant.
            _ => {
                if !self.is_empty() && !op.eval(&self.value(0), lit) {
                    mask.fill(false);
                }
            }
        }
    }

    /// ANDs `op(self[row], other[row])` into `mask` — the attribute-versus-
    /// attribute comparison kernel.
    pub fn compare_column_and(&self, op: CompareOp, other: &Column, mask: &mut [bool]) {
        debug_assert_eq!(self.len(), other.len());
        debug_assert_eq!(mask.len(), self.len());
        match (self, other) {
            (Column::Int(a), Column::Int(b)) | (Column::Date(a), Column::Date(b)) => {
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m && op.eval(&a[i], &b[i]);
                }
            }
            (Column::Text(a), Column::Text(b)) => {
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m && op.eval(&a[i], &b[i]);
                }
            }
            _ => {
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m && op.eval(&self.value(i), &other.value(i));
                }
            }
        }
    }
}

/// A header plus one column per attribute — the unit every batch operator
/// consumes and produces.
///
/// The row count is stored explicitly so zero-column batches (which cannot
/// arise from well-formed plans, but keep the type total) stay meaningful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    attrs: Vec<AttrRef>,
    columns: Vec<Arc<Column>>,
    rows: usize,
}

impl Batch {
    /// Creates a batch from a header and matching columns.
    ///
    /// # Panics
    ///
    /// Panics when the column count differs from the header's arity or the
    /// columns disagree on length.
    pub fn new(attrs: Vec<AttrRef>, columns: Vec<Arc<Column>>) -> Self {
        assert_eq!(
            attrs.len(),
            columns.len(),
            "batch has {} column(s) but the header has {} attribute(s)",
            columns.len(),
            attrs.len()
        );
        let rows = columns.first().map_or(0, |c| c.len());
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(
                c.len(),
                rows,
                "column {i} has {} value(s) but column 0 has {rows}",
                c.len()
            );
        }
        Self {
            attrs,
            columns,
            rows,
        }
    }

    /// An empty batch with the given header.
    pub fn empty(attrs: Vec<AttrRef>) -> Self {
        let columns = attrs.iter().map(|_| Arc::new(Column::empty())).collect();
        Self::new(attrs, columns)
    }

    /// Builds a batch by transposing row-major tuples.
    ///
    /// # Panics
    ///
    /// Panics if any row's arity differs from the header's.
    pub fn from_rows(attrs: Vec<AttrRef>, rows: Vec<Vec<Value>>) -> Self {
        let mut columns: Vec<Column> = attrs.iter().map(|_| Column::empty()).collect();
        let n = rows.len();
        for (i, row) in rows.into_iter().enumerate() {
            assert_eq!(
                row.len(),
                attrs.len(),
                "row {i} has arity {} but the header has {}",
                row.len(),
                attrs.len()
            );
            for (col, v) in columns.iter_mut().zip(row) {
                col.push(v);
            }
        }
        Self {
            attrs,
            columns: columns.into_iter().map(Arc::new).collect(),
            rows: n,
        }
    }

    /// Appends one row-major tuple, pushing each value onto its column
    /// (copy-on-write: shared columns are cloned once, then extended in
    /// place).
    ///
    /// # Panics
    ///
    /// Panics when the row's arity differs from the header's.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.attrs.len(),
            "row has arity {} but the header has {}",
            row.len(),
            self.attrs.len()
        );
        for (col, v) in self.columns.iter_mut().zip(row) {
            Arc::make_mut(col).push(v);
        }
        self.rows += 1;
    }

    /// Materialises row-major tuples (for display, legacy callers and the
    /// row-reference differential).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.rows)
            .map(|i| self.columns.iter().map(|c| c.value(i)).collect())
            .collect()
    }

    /// The qualified attribute header.
    pub fn attrs(&self) -> &[AttrRef] {
        &self.attrs
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The columns, in header order.
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// The column at `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Index of an attribute in the header.
    pub fn index_of(&self, attr: &AttrRef) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }

    /// Keeps the rows whose mask entry is `true` (the selection kernel).
    ///
    /// # Panics
    ///
    /// Panics when the mask length differs from the row count.
    #[must_use]
    pub fn filter(&self, mask: &[bool]) -> Batch {
        assert_eq!(mask.len(), self.rows, "mask length mismatch");
        let idx: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, keep)| keep.then_some(i))
            .collect();
        self.gather(&idx)
    }

    /// A batch holding the rows `idx`, in order (duplicates allowed — bag
    /// semantics).
    #[must_use]
    pub fn gather(&self, idx: &[usize]) -> Batch {
        let columns = self
            .columns
            .iter()
            .map(|c| Arc::new(c.gather(idx)))
            .collect();
        Batch {
            attrs: self.attrs.clone(),
            columns,
            rows: idx.len(),
        }
    }

    /// Reorders the header to `idx` without touching the data — projection
    /// is O(#attrs), never O(#rows).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    #[must_use]
    pub fn select_columns(&self, idx: &[usize]) -> Batch {
        Batch {
            attrs: idx.iter().map(|&i| self.attrs[i].clone()).collect(),
            columns: idx.iter().map(|&i| Arc::clone(&self.columns[i])).collect(),
            rows: self.rows,
        }
    }

    /// Glues two equal-length batches side by side (the join output shape).
    ///
    /// # Panics
    ///
    /// Panics when the row counts differ.
    #[must_use]
    pub fn hstack(left: &Batch, right: &Batch) -> Batch {
        assert_eq!(left.rows, right.rows, "hstack row count mismatch");
        let mut attrs = left.attrs.clone();
        attrs.extend(right.attrs.iter().cloned());
        let mut columns = left.columns.clone();
        columns.extend(right.columns.iter().cloned());
        Batch {
            attrs,
            columns,
            rows: left.rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(vals: &[i64]) -> Column {
        Column::Int(vals.to_vec())
    }

    #[test]
    fn from_values_is_canonical() {
        let homo = Column::from_values([Value::Int(1), Value::Int(2)]);
        assert_eq!(homo, Column::Int(vec![1, 2]));
        let hetero = Column::from_values([Value::Int(1), Value::text("x")]);
        assert!(matches!(hetero, Column::Mixed(_)));
        assert_eq!(Column::from_values([]), Column::Int(vec![]));
    }

    #[test]
    fn push_retypes_empty_and_degrades_on_mismatch() {
        let mut c = Column::empty();
        c.push(Value::text("a"));
        assert!(matches!(c, Column::Text(_)));
        c.push(Value::Int(1));
        assert!(matches!(c, Column::Mixed(_)));
        assert_eq!(c.value(0), Value::text("a"));
        assert_eq!(c.value(1), Value::Int(1));
    }

    #[test]
    fn gather_recanonicalises_mixed() {
        let c = Column::from_values([Value::Int(1), Value::text("x"), Value::Int(3)]);
        let g = c.gather(&[0, 2]);
        assert_eq!(g, Column::Int(vec![1, 3]));
    }

    #[test]
    fn compare_literal_matches_value_semantics() {
        let c = int_col(&[1, 5, 9]);
        let mut mask = vec![true; 3];
        c.compare_literal_and(CompareOp::Ge, &Value::Int(5), &mut mask);
        assert_eq!(mask, [false, true, true]);
        // Cross-variant: Int column vs Text literal orders by tag (Int < Text).
        let mut mask = vec![true; 3];
        c.compare_literal_and(CompareOp::Lt, &Value::text("z"), &mut mask);
        assert_eq!(mask, [true, true, true]);
    }

    #[test]
    fn eq_at_across_representations() {
        let typed = int_col(&[7]);
        let mixed = Column::from_values([Value::Int(7), Value::text("x")]);
        assert!(typed.eq_at(0, &mixed, 0));
        assert!(!typed.eq_at(0, &mixed, 1));
        let text = Column::from_values([Value::text("x")]);
        assert!(!typed.eq_at(0, &text, 0));
    }

    #[test]
    fn batch_round_trips_rows() {
        let attrs = vec![AttrRef::new("R", "a"), AttrRef::new("R", "b")];
        let rows = vec![
            vec![Value::Int(1), Value::text("x")],
            vec![Value::Int(2), Value::text("y")],
        ];
        let b = Batch::from_rows(attrs, rows.clone());
        assert_eq!(b.rows(), 2);
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn select_columns_shares_data() {
        let attrs = vec![AttrRef::new("R", "a"), AttrRef::new("R", "b")];
        let b = Batch::from_rows(attrs, vec![vec![Value::Int(1), Value::Int(2)]]);
        let p = b.select_columns(&[1]);
        assert!(Arc::ptr_eq(&b.columns()[1], &p.columns()[0]));
        assert_eq!(p.attrs(), [AttrRef::new("R", "b")]);
    }

    #[test]
    fn filter_and_hstack() {
        let attrs = vec![AttrRef::new("R", "a")];
        let b = Batch::from_rows(
            attrs,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)],
            ],
        );
        let f = b.filter(&[true, false, true]);
        assert_eq!(f.rows(), 2);
        let h = Batch::hstack(&f, &f);
        assert_eq!(h.attrs().len(), 2);
        assert_eq!(h.rows(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn ragged_rows_panic() {
        let _ = Batch::from_rows(
            vec![AttrRef::new("R", "a")],
            vec![vec![Value::Int(1), Value::Int(2)]],
        );
    }
}
