//! Columnar storage: typed value vectors ([`Column`]) and record batches
//! ([`Batch`]).
//!
//! The batch engine executes every operator over whole columns instead of
//! one tuple at a time: attribute offsets are resolved once per operator,
//! predicates and join keys run as tight loops over `&[i64]`/`&[Arc<str>]`
//! slices, and row movement happens through a single typed `gather` kernel.
//! Columns are held behind [`Arc`], so operators that keep a column intact
//! (projection, base-table scans) share it instead of copying.
//!
//! Columns keep a *canonical* representation: a column is a typed vector
//! ([`Column::Int`], [`Column::Text`], [`Column::Date`]) exactly when all of
//! its values share one [`Value`] variant, and degrades to the heterogeneous
//! [`Column::Mixed`] fallback otherwise. Two columns built from the same
//! value sequence are therefore representation-equal, which keeps the
//! derived `PartialEq` meaningful.
//!
//! Text columns have a second, dictionary-encoded representation:
//! [`Column::Dict`] stores one `u32` code per row plus an `Arc`-shared value
//! table. [`Column::from_values`] never produces it — dictionaries enter
//! through the data generator and through builders that know their domain is
//! small — but every kernel preserves it: `gather`/`filter` move codes and
//! share the value table, equality predicates resolve the constant against
//! the dictionary once per batch, and joins/aggregates on dictionary keys run
//! over raw `u32` codes. The value table must hold *distinct* strings; code
//! equality is value equality exactly because of that invariant.

use std::cmp::Ordering;
use std::sync::Arc;

use mvdesign_algebra::{AttrRef, CompareOp, Value};

/// A typed vector of values — one attribute of a [`Batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Column {
    /// All values are [`Value::Int`].
    Int(Vec<i64>),
    /// All values are [`Value::Text`].
    Text(Vec<Arc<str>>),
    /// All values are [`Value::Date`].
    Date(Vec<i64>),
    /// All values are [`Value::Text`], dictionary-encoded: row `i` holds
    /// `values[codes[i]]`. The value table is `Arc`-shared, so gathers,
    /// filters and materialized views copy codes but never strings, and its
    /// entries are distinct, so two equal codes always mean equal values.
    Dict {
        /// One dictionary code per row.
        codes: Vec<u32>,
        /// The shared value table the codes index into.
        values: Arc<[Arc<str>]>,
    },
    /// Heterogeneous fallback: the variants genuinely differ.
    Mixed(Vec<Value>),
}

impl Column {
    /// An empty integer column (the canonical empty column — profiling
    /// types empty columns as integers too).
    pub fn empty() -> Self {
        Column::Int(Vec::new())
    }

    /// Builds a column from a value sequence, choosing the canonical
    /// representation: typed when homogeneous, [`Column::Mixed`] otherwise.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Self {
        let mut col = Column::empty();
        for (i, v) in values.into_iter().enumerate() {
            if i == 0 {
                col = match v {
                    Value::Int(x) => Column::Int(vec![x]),
                    Value::Text(s) => Column::Text(vec![s]),
                    Value::Date(d) => Column::Date(vec![d]),
                };
            } else {
                col.push(v);
            }
        }
        col
    }

    /// Builds a dictionary-encoded text column.
    ///
    /// # Panics
    ///
    /// Panics when a code indexes past the value table (in debug builds the
    /// distinctness of the value table is checked too).
    pub fn dict(codes: Vec<u32>, values: Arc<[Arc<str>]>) -> Self {
        assert!(
            codes.iter().all(|&c| (c as usize) < values.len()),
            "dictionary code out of range"
        );
        debug_assert!(
            {
                let mut seen: Vec<&str> = values.iter().map(|v| &**v).collect();
                seen.sort_unstable();
                seen.windows(2).all(|w| w[0] != w[1])
            },
            "dictionary value table holds duplicates"
        );
        Column::Dict { codes, values }
    }

    /// The shared value table of a dictionary-encoded column, if this is
    /// one — lets callers check (and tests assert) value-table sharing.
    pub fn dict_values(&self) -> Option<&Arc<[Arc<str>]>> {
        match self {
            Column::Dict { values, .. } => Some(values),
            _ => None,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) | Column::Date(v) => v.len(),
            Column::Text(v) => v.len(),
            Column::Dict { codes, .. } => codes.len(),
            Column::Mixed(v) => v.len(),
        }
    }

    /// Whether the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `i` (cheap: integers copy, text bumps an [`Arc`]).
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[i]),
            Column::Text(v) => Value::Text(Arc::clone(&v[i])),
            Column::Date(v) => Value::Date(v[i]),
            Column::Dict { codes, values } => Value::Text(Arc::clone(&values[codes[i] as usize])),
            Column::Mixed(v) => v[i].clone(),
        }
    }

    /// The string at `i` when this column is text-backed (plain or
    /// dictionary-encoded) — the shared scalar accessor of every dict-aware
    /// kernel, with no `Arc` traffic.
    pub(crate) fn str_at(&self, i: usize) -> Option<&str> {
        match self {
            Column::Text(v) => Some(&v[i]),
            Column::Dict { codes, values } => Some(&values[codes[i] as usize]),
            _ => None,
        }
    }

    /// Appends one value, keeping the canonical representation: an empty
    /// typed column re-types itself, a non-empty typed column degrades to
    /// [`Column::Mixed`] on a variant mismatch. A dictionary-encoded column
    /// stays dictionary-encoded: a known string pushes its code, a new one
    /// extends the value table copy-on-write (readers sharing the old table
    /// are unaffected).
    pub fn push(&mut self, v: Value) {
        match (&mut *self, v) {
            (Column::Dict { codes, values }, Value::Text(s)) => {
                if let Some(c) = values.iter().position(|x| **x == *s) {
                    codes.push(c as u32);
                } else {
                    let mut table: Vec<Arc<str>> = values.to_vec();
                    table.push(s);
                    *values = table.into();
                    codes.push((values.len() - 1) as u32);
                }
            }
            (col, v) if col.is_empty() => *col = Column::from_values([v]),
            (Column::Int(vec), Value::Int(x)) => vec.push(x),
            (Column::Text(vec), Value::Text(s)) => vec.push(s),
            (Column::Date(vec), Value::Date(d)) => vec.push(d),
            (Column::Mixed(vec), v) => vec.push(v),
            (_, v) => {
                let mut values: Vec<Value> = (0..self.len()).map(|i| self.value(i)).collect();
                values.push(v);
                *self = Column::Mixed(values);
            }
        }
    }

    /// A new column holding `self[idx[0]], self[idx[1]], …` — the shared
    /// row-movement kernel of every batch operator.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    #[must_use]
    pub fn gather(&self, idx: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(idx.iter().map(|&i| v[i]).collect()),
            Column::Text(v) => Column::Text(idx.iter().map(|&i| Arc::clone(&v[i])).collect()),
            Column::Date(v) => Column::Date(idx.iter().map(|&i| v[i]).collect()),
            Column::Dict { codes, values } => Column::Dict {
                codes: idx.iter().map(|&i| codes[i]).collect(),
                values: Arc::clone(values),
            },
            Column::Mixed(v) => {
                // Re-canonicalise: a gather can drop the values that made
                // the column heterogeneous.
                Column::from_values(idx.iter().map(|&i| v[i].clone()))
            }
        }
    }

    /// Compares `self[i]` with `other[j]` under [`Value`]'s total order
    /// (typed fast path; cross-variant comparisons order by variant tag).
    pub fn cmp_at(&self, i: usize, other: &Column, j: usize) -> Ordering {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a[i].cmp(&b[j]),
            (Column::Date(a), Column::Date(b)) => a[i].cmp(&b[j]),
            _ => match (self.str_at(i), other.str_at(j)) {
                // Text-backed on both sides (plain or dictionary-encoded):
                // compare the strings without building Values. Dictionary
                // codes are assigned in appearance order, not string order,
                // so codes are never compared for ordering.
                (Some(a), Some(b)) => a.cmp(b),
                _ => self.value(i).cmp(&other.value(j)),
            },
        }
    }

    /// Whether `self[i] == other[j]` (typed fast path).
    pub fn eq_at(&self, i: usize, other: &Column, j: usize) -> bool {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a[i] == b[j],
            (Column::Date(a), Column::Date(b)) => a[i] == b[j],
            // Same value table ⇒ code equality is value equality.
            (
                Column::Dict {
                    codes: a,
                    values: va,
                },
                Column::Dict {
                    codes: b,
                    values: vb,
                },
            ) if Arc::ptr_eq(va, vb) => a[i] == b[j],
            (Column::Mixed(_), _) | (_, Column::Mixed(_)) => self.value(i) == other.value(j),
            _ => match (self.str_at(i), other.str_at(j)) {
                (Some(a), Some(b)) => a == b,
                // Distinct typed variants can never hold equal values.
                _ => false,
            },
        }
    }

    /// ANDs `op(self[row], literal)` into `mask` for every still-set row —
    /// the vectorised comparison kernel behind selection predicates.
    pub fn compare_literal_and(&self, op: CompareOp, lit: &Value, mask: &mut [bool]) {
        debug_assert_eq!(mask.len(), self.len());
        self.compare_literal_and_from(op, lit, 0, mask);
    }

    /// Range variant of [`Column::compare_literal_and`]: `mask[k]` covers
    /// row `start + k`, so morsel workers can evaluate disjoint mask slices
    /// of one column. Bit-identical to running the full-width kernel and
    /// slicing its result.
    pub(crate) fn compare_literal_and_from(
        &self,
        op: CompareOp,
        lit: &Value,
        start: usize,
        mask: &mut [bool],
    ) {
        debug_assert!(start + mask.len() <= self.len());
        match (self, lit) {
            (Column::Int(v), Value::Int(x)) | (Column::Date(v), Value::Date(x)) => {
                for (m, a) in mask.iter_mut().zip(&v[start..]) {
                    *m = *m && op.eval(a, x);
                }
            }
            (Column::Text(v), Value::Text(x)) => {
                for (m, a) in mask.iter_mut().zip(&v[start..]) {
                    *m = *m && op.eval(a, x);
                }
            }
            (Column::Dict { codes, values }, Value::Text(x)) => {
                // Resolve the constant against the dictionary once per
                // call: one string comparison per *distinct* value, then a
                // table lookup per row. An equality constant missing from
                // the dictionary zeroes the mask without touching rows.
                let keep: Vec<bool> = values.iter().map(|v| op.eval(&&**v, &&**x)).collect();
                if keep.iter().all(|&k| !k) {
                    mask.fill(false);
                } else if !keep.iter().all(|&k| k) {
                    for (m, c) in mask.iter_mut().zip(&codes[start..]) {
                        *m = *m && keep[*c as usize];
                    }
                }
            }
            (Column::Mixed(v), _) => {
                for (m, a) in mask.iter_mut().zip(&v[start..]) {
                    *m = *m && op.eval(a, lit);
                }
            }
            // Variant mismatch on a typed column: every value compares to
            // the literal by variant tag alone, so the outcome is constant
            // (any in-range row stands in for the whole column).
            _ => {
                if !mask.is_empty() && !op.eval(&self.value(start), lit) {
                    mask.fill(false);
                }
            }
        }
    }

    /// `op(self[i], lit)` — the scalar twin of [`Column::compare_literal_and`],
    /// used by the selection-vector path to evaluate only surviving rows.
    /// Must agree bit-for-bit with the vectorised kernel.
    pub fn literal_holds_at(&self, op: CompareOp, lit: &Value, i: usize) -> bool {
        match (self, lit) {
            (Column::Int(v), Value::Int(x)) | (Column::Date(v), Value::Date(x)) => {
                op.eval(&v[i], x)
            }
            (Column::Mixed(v), _) => op.eval(&v[i], lit),
            (_, Value::Text(x)) => match self.str_at(i) {
                Some(s) => op.eval(&s, &&**x),
                None => op.eval(&self.value(i), lit),
            },
            _ => op.eval(&self.value(i), lit),
        }
    }

    /// ANDs `op(self[row], other[row])` into `mask` — the attribute-versus-
    /// attribute comparison kernel.
    pub fn compare_column_and(&self, op: CompareOp, other: &Column, mask: &mut [bool]) {
        debug_assert_eq!(mask.len(), self.len());
        self.compare_column_and_from(op, other, 0, mask);
    }

    /// Range variant of [`Column::compare_column_and`]: `mask[k]` covers
    /// row `start + k` of both columns (see
    /// [`Column::compare_literal_and_from`]).
    pub(crate) fn compare_column_and_from(
        &self,
        op: CompareOp,
        other: &Column,
        start: usize,
        mask: &mut [bool],
    ) {
        debug_assert_eq!(self.len(), other.len());
        debug_assert!(start + mask.len() <= self.len());
        match (self, other) {
            (Column::Int(a), Column::Int(b)) | (Column::Date(a), Column::Date(b)) => {
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m && op.eval(&a[start + i], &b[start + i]);
                }
            }
            (Column::Text(a), Column::Text(b)) => {
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m && op.eval(&a[start + i], &b[start + i]);
                }
            }
            // Shared value table + (in)equality: compare raw codes.
            (
                Column::Dict {
                    codes: a,
                    values: va,
                },
                Column::Dict {
                    codes: b,
                    values: vb,
                },
            ) if Arc::ptr_eq(va, vb) && matches!(op, CompareOp::Eq | CompareOp::Ne) => {
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m && op.eval(&a[start + i], &b[start + i]);
                }
            }
            _ if self.is_text_backed() && other.is_text_backed() => {
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m
                        && op.eval(
                            &self.str_at(start + i).expect("text-backed"),
                            &other.str_at(start + i).expect("text-backed"),
                        );
                }
            }
            _ => {
                for (i, m) in mask.iter_mut().enumerate() {
                    *m = *m && op.eval(&self.value(start + i), &other.value(start + i));
                }
            }
        }
    }

    /// `op(self[i], other[i])` — the scalar twin of
    /// [`Column::compare_column_and`] for the selection-vector path. Must
    /// agree bit-for-bit with the vectorised kernel.
    pub fn column_holds_at(&self, op: CompareOp, other: &Column, i: usize) -> bool {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) | (Column::Date(a), Column::Date(b)) => {
                op.eval(&a[i], &b[i])
            }
            _ => match (self.str_at(i), other.str_at(i)) {
                (Some(a), Some(b)) => op.eval(&a, &b),
                _ => op.eval(&self.value(i), &other.value(i)),
            },
        }
    }

    /// Whether every value is text (plain or dictionary-encoded).
    fn is_text_backed(&self) -> bool {
        matches!(self, Column::Text(_) | Column::Dict { .. })
    }

    /// A copy of the rows `range`, **variant-preserving**: an `Int` slice
    /// stays `Int`, a `Dict` slice shares the value table, and a `Mixed`
    /// slice stays `Mixed` even when the sliced values happen to be
    /// homogeneous. The paged storage layer relies on this: pages must
    /// reassemble into exactly the representation they were cut from, or
    /// the derived `PartialEq` on [`Batch`] would see a difference.
    ///
    /// # Panics
    ///
    /// Panics when `range` is out of bounds.
    pub(crate) fn slice(&self, range: std::ops::Range<usize>) -> Column {
        match self {
            Column::Int(v) => Column::Int(v[range].to_vec()),
            Column::Text(v) => Column::Text(v[range].to_vec()),
            Column::Date(v) => Column::Date(v[range].to_vec()),
            Column::Dict { codes, values } => Column::Dict {
                codes: codes[range].to_vec(),
                values: Arc::clone(values),
            },
            Column::Mixed(v) => Column::Mixed(v[range].to_vec()),
        }
    }

    /// Concatenates column pieces back into one column, reproducing the
    /// representation the resident engine would have produced:
    ///
    /// * pieces of one typed variant concatenate into that variant,
    /// * `Dict` pieces sharing one value table concatenate codes and keep
    ///   the shared table,
    /// * anything else re-canonicalises through [`Column::from_values`],
    ///   exactly like a whole-column `gather` over heterogeneous values.
    ///
    /// The mixed-variant case arises when per-page gathers of a `Mixed`
    /// column each re-canonicalise to different variants; `from_values`
    /// over the concatenated values is then identical to the single
    /// full-width gather.
    pub(crate) fn concat(parts: &[&Column]) -> Column {
        match parts {
            [] => Column::empty(),
            [only] => (*only).clone(),
            _ => {
                if parts.iter().all(|c| matches!(c, Column::Int(_))) {
                    return Column::Int(
                        parts
                            .iter()
                            .flat_map(|c| match c {
                                Column::Int(v) => v.iter().copied(),
                                _ => unreachable!(),
                            })
                            .collect(),
                    );
                }
                if parts.iter().all(|c| matches!(c, Column::Date(_))) {
                    return Column::Date(
                        parts
                            .iter()
                            .flat_map(|c| match c {
                                Column::Date(v) => v.iter().copied(),
                                _ => unreachable!(),
                            })
                            .collect(),
                    );
                }
                if parts.iter().all(|c| matches!(c, Column::Text(_))) {
                    return Column::Text(
                        parts
                            .iter()
                            .flat_map(|c| match c {
                                Column::Text(v) => v.iter().map(Arc::clone),
                                _ => unreachable!(),
                            })
                            .collect(),
                    );
                }
                if let Some(table) = parts[0].dict_values() {
                    if parts
                        .iter()
                        .all(|c| c.dict_values().is_some_and(|t| Arc::ptr_eq(t, table)))
                    {
                        return Column::Dict {
                            codes: parts
                                .iter()
                                .flat_map(|c| match c {
                                    Column::Dict { codes, .. } => codes.iter().copied(),
                                    _ => unreachable!(),
                                })
                                .collect(),
                            values: Arc::clone(table),
                        };
                    }
                }
                Column::from_values(
                    parts
                        .iter()
                        .flat_map(|c| (0..c.len()).map(move |i| c.value(i))),
                )
            }
        }
    }
}

/// A header plus one column per attribute — the unit every batch operator
/// consumes and produces.
///
/// The row count is stored explicitly so zero-column batches (which cannot
/// arise from well-formed plans, but keep the type total) stay meaningful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    attrs: Vec<AttrRef>,
    columns: Vec<Arc<Column>>,
    rows: usize,
}

impl Batch {
    /// Creates a batch from a header and matching columns.
    ///
    /// # Panics
    ///
    /// Panics when the column count differs from the header's arity or the
    /// columns disagree on length.
    pub fn new(attrs: Vec<AttrRef>, columns: Vec<Arc<Column>>) -> Self {
        assert_eq!(
            attrs.len(),
            columns.len(),
            "batch has {} column(s) but the header has {} attribute(s)",
            columns.len(),
            attrs.len()
        );
        let rows = columns.first().map_or(0, |c| c.len());
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(
                c.len(),
                rows,
                "column {i} has {} value(s) but column 0 has {rows}",
                c.len()
            );
        }
        Self {
            attrs,
            columns,
            rows,
        }
    }

    /// An empty batch with the given header.
    pub fn empty(attrs: Vec<AttrRef>) -> Self {
        let columns = attrs.iter().map(|_| Arc::new(Column::empty())).collect();
        Self::new(attrs, columns)
    }

    /// Builds a batch by transposing row-major tuples.
    ///
    /// # Panics
    ///
    /// Panics if any row's arity differs from the header's.
    pub fn from_rows(attrs: Vec<AttrRef>, rows: Vec<Vec<Value>>) -> Self {
        let mut columns: Vec<Column> = attrs.iter().map(|_| Column::empty()).collect();
        let n = rows.len();
        for (i, row) in rows.into_iter().enumerate() {
            assert_eq!(
                row.len(),
                attrs.len(),
                "row {i} has arity {} but the header has {}",
                row.len(),
                attrs.len()
            );
            for (col, v) in columns.iter_mut().zip(row) {
                col.push(v);
            }
        }
        Self {
            attrs,
            columns: columns.into_iter().map(Arc::new).collect(),
            rows: n,
        }
    }

    /// Appends one row-major tuple, pushing each value onto its column
    /// (copy-on-write: shared columns are cloned once, then extended in
    /// place).
    ///
    /// # Panics
    ///
    /// Panics when the row's arity differs from the header's.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.attrs.len(),
            "row has arity {} but the header has {}",
            row.len(),
            self.attrs.len()
        );
        for (col, v) in self.columns.iter_mut().zip(row) {
            Arc::make_mut(col).push(v);
        }
        self.rows += 1;
    }

    /// Materialises row-major tuples (for display, legacy callers and the
    /// row-reference differential).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.rows)
            .map(|i| self.columns.iter().map(|c| c.value(i)).collect())
            .collect()
    }

    /// The qualified attribute header.
    pub fn attrs(&self) -> &[AttrRef] {
        &self.attrs
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The columns, in header order.
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// The column at `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Index of an attribute in the header.
    pub fn index_of(&self, attr: &AttrRef) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }

    /// Keeps the rows whose mask entry is `true` (the selection kernel).
    ///
    /// # Panics
    ///
    /// Panics when the mask length differs from the row count.
    #[must_use]
    pub fn filter(&self, mask: &[bool]) -> Batch {
        assert_eq!(mask.len(), self.rows, "mask length mismatch");
        let keep = mask.iter().filter(|&&k| k).count();
        if keep == self.rows {
            // All-true: share every column by `Arc` clone instead of copying.
            return self.clone();
        }
        if keep == 0 {
            // All-false: an empty gather is O(#cols) and keeps each column's
            // typed (and dictionary) representation.
            return self.gather(&[]);
        }
        let idx: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, keep)| keep.then_some(i))
            .collect();
        self.gather(&idx)
    }

    /// A batch holding the rows `idx`, in order (duplicates allowed — bag
    /// semantics).
    #[must_use]
    pub fn gather(&self, idx: &[usize]) -> Batch {
        let columns = self
            .columns
            .iter()
            .map(|c| Arc::new(c.gather(idx)))
            .collect();
        Batch {
            attrs: self.attrs.clone(),
            columns,
            rows: idx.len(),
        }
    }

    /// Reorders the header to `idx` without touching the data — projection
    /// is O(#attrs), never O(#rows).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    #[must_use]
    pub fn select_columns(&self, idx: &[usize]) -> Batch {
        Batch {
            attrs: idx.iter().map(|&i| self.attrs[i].clone()).collect(),
            columns: idx.iter().map(|&i| Arc::clone(&self.columns[i])).collect(),
            rows: self.rows,
        }
    }

    /// Glues two equal-length batches side by side (the join output shape).
    ///
    /// # Panics
    ///
    /// Panics when the row counts differ.
    #[must_use]
    pub fn hstack(left: &Batch, right: &Batch) -> Batch {
        assert_eq!(left.rows, right.rows, "hstack row count mismatch");
        let mut attrs = left.attrs.clone();
        attrs.extend(right.attrs.iter().cloned());
        let mut columns = left.columns.clone();
        columns.extend(right.columns.iter().cloned());
        Batch {
            attrs,
            columns,
            rows: left.rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(vals: &[i64]) -> Column {
        Column::Int(vals.to_vec())
    }

    #[test]
    fn from_values_is_canonical() {
        let homo = Column::from_values([Value::Int(1), Value::Int(2)]);
        assert_eq!(homo, Column::Int(vec![1, 2]));
        let hetero = Column::from_values([Value::Int(1), Value::text("x")]);
        assert!(matches!(hetero, Column::Mixed(_)));
        assert_eq!(Column::from_values([]), Column::Int(vec![]));
    }

    #[test]
    fn push_retypes_empty_and_degrades_on_mismatch() {
        let mut c = Column::empty();
        c.push(Value::text("a"));
        assert!(matches!(c, Column::Text(_)));
        c.push(Value::Int(1));
        assert!(matches!(c, Column::Mixed(_)));
        assert_eq!(c.value(0), Value::text("a"));
        assert_eq!(c.value(1), Value::Int(1));
    }

    #[test]
    fn gather_recanonicalises_mixed() {
        let c = Column::from_values([Value::Int(1), Value::text("x"), Value::Int(3)]);
        let g = c.gather(&[0, 2]);
        assert_eq!(g, Column::Int(vec![1, 3]));
    }

    #[test]
    fn compare_literal_matches_value_semantics() {
        let c = int_col(&[1, 5, 9]);
        let mut mask = vec![true; 3];
        c.compare_literal_and(CompareOp::Ge, &Value::Int(5), &mut mask);
        assert_eq!(mask, [false, true, true]);
        // Cross-variant: Int column vs Text literal orders by tag (Int < Text).
        let mut mask = vec![true; 3];
        c.compare_literal_and(CompareOp::Lt, &Value::text("z"), &mut mask);
        assert_eq!(mask, [true, true, true]);
    }

    #[test]
    fn eq_at_across_representations() {
        let typed = int_col(&[7]);
        let mixed = Column::from_values([Value::Int(7), Value::text("x")]);
        assert!(typed.eq_at(0, &mixed, 0));
        assert!(!typed.eq_at(0, &mixed, 1));
        let text = Column::from_values([Value::text("x")]);
        assert!(!typed.eq_at(0, &text, 0));
    }

    #[test]
    fn batch_round_trips_rows() {
        let attrs = vec![AttrRef::new("R", "a"), AttrRef::new("R", "b")];
        let rows = vec![
            vec![Value::Int(1), Value::text("x")],
            vec![Value::Int(2), Value::text("y")],
        ];
        let b = Batch::from_rows(attrs, rows.clone());
        assert_eq!(b.rows(), 2);
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn select_columns_shares_data() {
        let attrs = vec![AttrRef::new("R", "a"), AttrRef::new("R", "b")];
        let b = Batch::from_rows(attrs, vec![vec![Value::Int(1), Value::Int(2)]]);
        let p = b.select_columns(&[1]);
        assert!(Arc::ptr_eq(&b.columns()[1], &p.columns()[0]));
        assert_eq!(p.attrs(), [AttrRef::new("R", "b")]);
    }

    #[test]
    fn filter_and_hstack() {
        let attrs = vec![AttrRef::new("R", "a")];
        let b = Batch::from_rows(
            attrs,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)],
            ],
        );
        let f = b.filter(&[true, false, true]);
        assert_eq!(f.rows(), 2);
        let h = Batch::hstack(&f, &f);
        assert_eq!(h.attrs().len(), 2);
        assert_eq!(h.rows(), 2);
    }

    fn dict_col(codes: &[u32], values: &[&str]) -> Column {
        let table: Vec<Arc<str>> = values.iter().map(|s| Arc::from(*s)).collect();
        Column::dict(codes.to_vec(), table.into())
    }

    #[test]
    fn dict_values_and_gather_share_table() {
        let c = dict_col(&[0, 1, 0, 2], &["a", "b", "c"]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.value(2), Value::text("a"));
        let g = c.gather(&[3, 0]);
        assert_eq!(g.value(0), Value::text("c"));
        assert!(Arc::ptr_eq(
            c.dict_values().unwrap(),
            g.dict_values().unwrap()
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dict_code_out_of_range_panics() {
        let _ = dict_col(&[3], &["a", "b"]);
    }

    #[test]
    fn dict_push_keeps_encoding_and_extends_cow() {
        let mut c = dict_col(&[0, 1], &["a", "b"]);
        let shared = Arc::clone(c.dict_values().unwrap());
        c.push(Value::text("a"));
        assert!(Arc::ptr_eq(c.dict_values().unwrap(), &shared));
        c.push(Value::text("z"));
        assert_eq!(c.value(3), Value::text("z"));
        assert!(!Arc::ptr_eq(c.dict_values().unwrap(), &shared));
        assert_eq!(shared.len(), 2, "readers of the old table are unaffected");
        c.push(Value::Int(1));
        assert!(matches!(c, Column::Mixed(_)));
        assert_eq!(c.value(0), Value::text("a"));
        assert_eq!(c.value(4), Value::Int(1));
    }

    #[test]
    fn dict_compare_and_eq_match_text_semantics() {
        let d = dict_col(&[0, 1, 2, 1], &["v10", "v2", "v7"]);
        let t = Column::from_values((0..4).map(|i| d.value(i)));
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            for lit in [Value::text("v2"), Value::text("missing"), Value::Int(3)] {
                let mut dm = vec![true; 4];
                let mut tm = vec![true; 4];
                d.compare_literal_and(op, &lit, &mut dm);
                t.compare_literal_and(op, &lit, &mut tm);
                assert_eq!(dm, tm, "op {op:?} lit {lit:?}");
                let scalar: Vec<bool> = (0..4).map(|i| d.literal_holds_at(op, &lit, i)).collect();
                assert_eq!(scalar, tm, "scalar op {op:?} lit {lit:?}");
            }
            let mut dm = vec![true; 4];
            let mut tm = vec![true; 4];
            d.compare_column_and(op, &d.gather(&[3, 2, 1, 0]), &mut dm);
            t.compare_column_and(op, &t.gather(&[3, 2, 1, 0]), &mut tm);
            assert_eq!(dm, tm, "column op {op:?}");
            let scalar: Vec<bool> = (0..4)
                .map(|i| d.column_holds_at(op, &d.gather(&[3, 2, 1, 0]), i))
                .collect();
            assert_eq!(scalar, tm, "scalar column op {op:?}");
        }
        // Cross-representation equality and ordering agree with plain text.
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(d.eq_at(i, &t, j), t.eq_at(i, &t, j));
                assert_eq!(d.cmp_at(i, &t, j), t.cmp_at(i, &t, j));
                assert_eq!(d.eq_at(i, &d, j), t.eq_at(i, &t, j));
                assert_eq!(d.cmp_at(i, &d, j), t.cmp_at(i, &t, j));
            }
        }
    }

    #[test]
    fn filter_all_true_shares_columns() {
        let attrs = vec![AttrRef::new("R", "a")];
        let b = Batch::from_rows(attrs, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let f = b.filter(&[true, true]);
        assert!(Arc::ptr_eq(&b.columns()[0], &f.columns()[0]));
        let e = b.filter(&[false, false]);
        assert_eq!(e.rows(), 0);
        assert_eq!(e.column(0), &Column::Int(vec![]));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn ragged_rows_panic() {
        let _ = Batch::from_rows(
            vec![AttrRef::new("R", "a")],
            vec![vec![Value::Int(1), Value::Int(2)]],
        );
    }
}
