//! The page codec: exact binary round-trips for column chunks.
//!
//! A page is one [`Column`] holding up to a fixed number of consecutive
//! rows of one attribute. The codec here is what makes eviction safe: for
//! every representation, `decode(encode(page)) == page` — same variant,
//! same values — so a page that leaves the pool and comes back is
//! indistinguishable from one that never left. Dictionary pages encode
//! **codes only**; the shared value table stays resident in the pool's
//! frame metadata and is re-attached on decode, which both keeps spilled
//! dictionary pages small and preserves the `Arc` pointer identity that
//! the dict-aware kernels (and the warehouse's table-sharing tests) rely
//! on.

use std::sync::Arc;

use mvdesign_algebra::Value;

use crate::batch::{Batch, Column};

/// Default rows per page. Matches the default morsel size
/// ([`crate::DEFAULT_MORSEL_ROWS`]): the morsel scheduler is the natural
/// pin/unpin granularity, so one morsel touches one page per column.
pub const DEFAULT_PAGE_ROWS: usize = 4096;

const TAG_INT: u8 = 0;
const TAG_TEXT: u8 = 1;
const TAG_DATE: u8 = 2;
const TAG_DICT: u8 = 3;
const TAG_MIXED: u8 = 4;

const VTAG_INT: u8 = 0;
const VTAG_TEXT: u8 = 1;
const VTAG_DATE: u8 = 2;

/// Estimated resident bytes of a column chunk — the budget currency of the
/// buffer pool. Deterministic (a pure function of the data), so pool
/// behaviour is reproducible for a given budget.
pub(crate) fn column_bytes(col: &Column) -> usize {
    match col {
        Column::Int(v) | Column::Date(v) => v.len() * 8,
        Column::Text(v) => v.iter().map(|s| s.len() + 16).sum(),
        // Codes only: the value table is shared, not owned by the page.
        Column::Dict { codes, .. } => codes.len() * 4,
        Column::Mixed(v) => v.iter().map(value_bytes).sum(),
    }
}

fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Int(_) | Value::Date(_) => 9,
        Value::Text(s) => s.len() + 17,
    }
}

/// Estimated resident bytes of a whole batch (every column summed) — the
/// helper callers use to size pool budgets relative to their data
/// ("half-data", "data/8", …).
pub fn batch_bytes(batch: &Batch) -> usize {
    batch.columns().iter().map(|c| column_bytes(c)).sum()
}

/// Serialises a page. The inverse of [`decode_page`].
pub(crate) fn encode_page(col: &Column) -> Vec<u8> {
    let mut buf = Vec::with_capacity(column_bytes(col) + 16);
    match col {
        Column::Int(v) | Column::Date(v) => {
            buf.push(if matches!(col, Column::Int(_)) {
                TAG_INT
            } else {
                TAG_DATE
            });
            put_u64(&mut buf, v.len() as u64);
            for x in v {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        Column::Text(v) => {
            buf.push(TAG_TEXT);
            put_u64(&mut buf, v.len() as u64);
            for s in v {
                put_str(&mut buf, s);
            }
        }
        Column::Dict { codes, .. } => {
            buf.push(TAG_DICT);
            put_u64(&mut buf, codes.len() as u64);
            for c in codes {
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
        Column::Mixed(v) => {
            buf.push(TAG_MIXED);
            put_u64(&mut buf, v.len() as u64);
            for val in v {
                match val {
                    Value::Int(x) => {
                        buf.push(VTAG_INT);
                        buf.extend_from_slice(&x.to_le_bytes());
                    }
                    Value::Date(x) => {
                        buf.push(VTAG_DATE);
                        buf.extend_from_slice(&x.to_le_bytes());
                    }
                    Value::Text(s) => {
                        buf.push(VTAG_TEXT);
                        put_str(&mut buf, s);
                    }
                }
            }
        }
    }
    buf
}

/// Deserialises a page encoded by [`encode_page`], re-attaching `dict` as
/// the value table of a dictionary page.
///
/// # Panics
///
/// Panics on malformed bytes or a missing dictionary — spill pages are
/// written and read only by the pool, so corruption is an internal bug.
pub(crate) fn decode_page(bytes: &[u8], dict: Option<&Arc<[Arc<str>]>>) -> Column {
    let mut r = Reader { bytes, pos: 0 };
    let tag = r.u8();
    let n = r.u64() as usize;
    let col = match tag {
        TAG_INT => Column::Int((0..n).map(|_| r.i64()).collect()),
        TAG_DATE => Column::Date((0..n).map(|_| r.i64()).collect()),
        TAG_TEXT => Column::Text((0..n).map(|_| r.str()).collect()),
        TAG_DICT => Column::Dict {
            codes: (0..n).map(|_| r.u32()).collect(),
            values: Arc::clone(dict.expect("dictionary page decoded without its value table")),
        },
        TAG_MIXED => Column::Mixed(
            (0..n)
                .map(|_| match r.u8() {
                    VTAG_INT => Value::Int(r.i64()),
                    VTAG_DATE => Value::Date(r.i64()),
                    VTAG_TEXT => Value::Text(r.str()),
                    t => panic!("unknown value tag {t} in spilled page"),
                })
                .collect(),
        ),
        t => panic!("unknown page tag {t} in spilled page"),
    };
    assert_eq!(r.pos, bytes.len(), "trailing bytes in spilled page");
    col
}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> &[u8] {
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        out
    }

    fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn i64(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn str(&mut self) -> Arc<str> {
        let n = self.u32() as usize;
        let s = std::str::from_utf8(self.take(n)).expect("spilled strings are UTF-8");
        Arc::from(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(col: &Column, dict: Option<&Arc<[Arc<str>]>>) {
        let bytes = encode_page(col);
        let back = decode_page(&bytes, dict);
        assert_eq!(&back, col, "page codec must round-trip exactly");
    }

    #[test]
    fn every_representation_round_trips_exactly() {
        round_trip(&Column::Int(vec![1, -7, i64::MAX, i64::MIN]), None);
        round_trip(&Column::Date(vec![0, 20260807]), None);
        round_trip(
            &Column::Text(vec![Arc::from("a"), Arc::from(""), Arc::from("héllo")]),
            None,
        );
        round_trip(&Column::Int(vec![]), None);
        round_trip(
            &Column::Mixed(vec![
                Value::Int(3),
                Value::text("x"),
                Value::Date(11),
                Value::text(""),
            ]),
            None,
        );
    }

    #[test]
    fn dict_pages_reattach_the_shared_table() {
        let table: Arc<[Arc<str>]> = vec![Arc::from("a"), Arc::from("b")].into();
        let col = Column::dict(vec![0, 1, 1, 0], Arc::clone(&table));
        let bytes = encode_page(&col);
        // Codes only: 1 tag + 8 len + 4 codes * 4 bytes.
        assert_eq!(bytes.len(), 1 + 8 + 16);
        let back = decode_page(&bytes, Some(&table));
        assert_eq!(back, col);
        assert!(
            Arc::ptr_eq(back.dict_values().unwrap(), &table),
            "decoded dictionary pages must share the original value table"
        );
    }

    #[test]
    fn byte_estimates_are_deterministic_and_nonzero_for_data() {
        let c = Column::Int(vec![1, 2, 3]);
        assert_eq!(column_bytes(&c), 24);
        assert_eq!(column_bytes(&Column::Text(vec![Arc::from("abc")])), 3 + 16);
        let b = Batch::new(
            vec![mvdesign_algebra::AttrRef::new("R", "a")],
            vec![Arc::new(c)],
        );
        assert_eq!(batch_bytes(&b), 24);
    }
}
