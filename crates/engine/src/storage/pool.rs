//! The buffer pool: a byte-budgeted page cache with clock eviction.
//!
//! Pages are registered once (immutable thereafter) and pinned on demand.
//! A pin of a resident page bumps its reference bit and hands out the
//! shared `Arc`; a pin of an evicted page reads it back from the
//! [`SpillStore`] and decodes it (a **miss** — the measured counterpart of
//! the paper's simulated block accesses). When resident bytes exceed the
//! budget, a clock hand sweeps the frames giving each a second chance:
//! referenced frames lose their bit, unreferenced ones are spilled (first
//! eviction only — pages are immutable, so re-eviction reuses the spill
//! location) and dropped. A frame whose page `Arc` is still held outside
//! the pool is pinned by definition and never evicted.
//!
//! Eviction changes residency, never content — see the module docs of
//! [`crate::storage`] for the determinism argument.

use std::sync::{Arc, Mutex};

use crate::batch::Column;

use super::page::{column_bytes, decode_page, encode_page};
use super::spill::SpillStore;

/// Handle to a page registered in a [`BufferPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId(pub(crate) usize);

/// Counters describing pool traffic, snapshotted by [`BufferPool::stats`].
///
/// `misses` is the measured analogue of the paper's per-operator block
/// charges: each miss is one real page fetched from spill (or, for a cold
/// pool, decoded on first touch after eviction). Note that miss counts are
/// *measurements*, not outputs — under parallel execution the eviction
/// order depends on thread interleaving, so counts may vary run to run
/// even though query results never do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pins satisfied by a resident page.
    pub hits: u64,
    /// Pins that had to read the page back from spill.
    pub misses: u64,
    /// Pages evicted by the clock sweep.
    pub evictions: u64,
    /// Bytes written to the spill file (first evictions only).
    pub spill_bytes: u64,
    /// Estimated bytes currently resident.
    pub resident_bytes: usize,
    /// Pages registered in the pool.
    pub pages: usize,
}

#[derive(Debug)]
struct Frame {
    /// The decoded page while resident.
    data: Option<Arc<Column>>,
    /// Value table of a dictionary page, kept resident so decode
    /// re-attaches the *same* shared `Arc`.
    dict: Option<Arc<[Arc<str>]>>,
    /// Spill location once the page has been evicted at least once.
    spilled: Option<(u64, u64)>,
    /// Estimated resident bytes (stable across evict/reload cycles).
    bytes: usize,
    /// Clock second-chance bit.
    referenced: bool,
}

#[derive(Debug)]
struct PoolInner {
    frames: Vec<Frame>,
    hand: usize,
    resident: usize,
    store: Option<SpillStore>,
    hits: u64,
    misses: u64,
    evictions: u64,
    spill_bytes: u64,
}

/// A byte-budgeted cache of immutable column pages (see the module docs).
///
/// The pool is shared behind an `Arc` and internally synchronised, so the
/// morsel engine's scoped workers pin and release pages concurrently.
#[derive(Debug)]
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    budget: Option<usize>,
}

impl BufferPool {
    /// A pool with a byte budget (`None` = unbounded, never evicts).
    pub fn new(budget: Option<usize>) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(PoolInner {
                frames: Vec::new(),
                hand: 0,
                resident: 0,
                store: None,
                hits: 0,
                misses: 0,
                evictions: 0,
                spill_bytes: 0,
            }),
            budget,
        })
    }

    /// A pool that keeps every page resident.
    pub fn unbounded() -> Arc<Self> {
        Self::new(None)
    }

    /// The configured byte budget (`None` = unbounded).
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Registers an immutable page and returns its handle. May trigger an
    /// eviction sweep if the pool is over budget.
    ///
    /// # Panics
    ///
    /// Panics when the spill file cannot be created or written.
    pub(crate) fn register(&self, page: Column) -> PageId {
        let bytes = column_bytes(&page);
        let dict = page.dict_values().cloned();
        let mut inner = self.inner.lock().expect("buffer pool poisoned");
        inner.frames.push(Frame {
            data: Some(Arc::new(page)),
            dict,
            spilled: None,
            bytes,
            referenced: false,
        });
        let id = PageId(inner.frames.len() - 1);
        inner.resident += bytes;
        Self::enforce_budget(&mut inner, self.budget);
        id
    }

    /// Pins a page, loading it back from spill on a miss, and returns the
    /// shared decoded column. The page stays resident at least as long as
    /// the returned `Arc` is held.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id or a spill I/O failure.
    pub(crate) fn pin(&self, id: PageId) -> Arc<Column> {
        let mut inner = self.inner.lock().expect("buffer pool poisoned");
        let frame = &mut inner.frames[id.0];
        if let Some(data) = &frame.data {
            frame.referenced = true;
            let out = Arc::clone(data);
            inner.hits += 1;
            return out;
        }
        let (offset, len) = frame
            .spilled
            .expect("non-resident page must have a spill location");
        let dict = frame.dict.clone();
        let store = inner.store.as_ref().expect("spilled page without a store");
        let bytes = store.read(offset, len).expect("spill read failed");
        let page = Arc::new(decode_page(&bytes, dict.as_ref()));
        let frame = &mut inner.frames[id.0];
        frame.data = Some(Arc::clone(&page));
        frame.referenced = true;
        let fbytes = frame.bytes;
        inner.resident += fbytes;
        inner.misses += 1;
        // The freshly pinned page holds an outside Arc, so the sweep
        // naturally skips it.
        Self::enforce_budget(&mut inner, self.budget);
        page
    }

    /// Clock sweep: while over budget, give referenced frames a second
    /// chance and evict unreferenced, unpinned ones. Bounded at two full
    /// revolutions per call so a fully pinned pool terminates (staying
    /// over budget is allowed — the budget is a target, pins are
    /// correctness).
    fn enforce_budget(inner: &mut PoolInner, budget: Option<usize>) {
        let Some(budget) = budget else {
            return;
        };
        let n = inner.frames.len();
        if n == 0 {
            return;
        }
        let mut steps = 0;
        while inner.resident > budget && steps < 2 * n {
            let at = inner.hand % n;
            inner.hand = (inner.hand + 1) % n;
            steps += 1;
            let frame = &mut inner.frames[at];
            let evictable = match &frame.data {
                // An Arc held outside the pool means the page is pinned.
                Some(data) => Arc::strong_count(data) == 1,
                None => false,
            };
            if !evictable {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            let needs_spill = frame.spilled.is_none();
            if needs_spill {
                if inner.store.is_none() {
                    inner.store = Some(SpillStore::create().expect("create spill file"));
                }
                let frame = &inner.frames[at];
                let bytes = encode_page(frame.data.as_ref().expect("resident"));
                let store = inner.store.as_ref().expect("just created");
                let loc = store.write(&bytes).expect("spill write failed");
                inner.spill_bytes += bytes.len() as u64;
                inner.frames[at].spilled = Some(loc);
            }
            let frame = &mut inner.frames[at];
            frame.data = None;
            let fbytes = frame.bytes;
            inner.resident -= fbytes;
            inner.evictions += 1;
        }
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock().expect("buffer pool poisoned");
        PoolStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            spill_bytes: inner.spill_bytes,
            resident_bytes: inner.resident,
            pages: inner.frames.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_page(vals: std::ops::Range<i64>) -> Column {
        Column::Int(vals.collect())
    }

    #[test]
    fn unbounded_pool_never_evicts() {
        let pool = BufferPool::unbounded();
        let ids: Vec<PageId> = (0..10).map(|i| pool.register(int_page(0..i + 1))).collect();
        for id in &ids {
            let _ = pool.pin(*id);
        }
        let s = pool.stats();
        assert_eq!(s.misses, 0);
        assert_eq!(s.evictions, 0);
        assert_eq!(s.hits, 10);
        assert_eq!(s.pages, 10);
    }

    #[test]
    fn over_budget_registration_spills_and_pins_reload_exactly() {
        // Each page: 64 rows * 8 bytes = 512 bytes; budget fits ~2 pages.
        let pool = BufferPool::new(Some(1100));
        let pages: Vec<(PageId, Column)> = (0..8)
            .map(|i| {
                let col = int_page(i * 64..(i + 1) * 64);
                (pool.register(col.clone()), col)
            })
            .collect();
        let s = pool.stats();
        assert!(s.evictions > 0, "tiny budget must evict");
        assert!(s.resident_bytes <= 1100);
        // Every page reads back bit-identically, in any order.
        for (id, original) in pages.iter().rev() {
            assert_eq!(&*pool.pin(*id), original);
        }
        for (id, original) in &pages {
            assert_eq!(&*pool.pin(*id), original);
        }
        let s = pool.stats();
        assert!(s.misses > 0, "reloads must be counted as misses");
        assert!(s.spill_bytes > 0);
    }

    #[test]
    fn outstanding_pins_are_never_evicted() {
        let pool = BufferPool::new(Some(600));
        let first = pool.register(int_page(0..64));
        let pinned = pool.pin(first);
        // Flood the pool; `first` is pinned and must survive resident.
        for i in 1..10 {
            let _ = pool.register(int_page(i * 64..(i + 1) * 64));
        }
        let before = pool.stats().misses;
        let again = pool.pin(first);
        assert!(Arc::ptr_eq(&pinned, &again), "pinned page stayed resident");
        assert_eq!(pool.stats().misses, before, "no miss for a pinned page");
    }

    #[test]
    fn immutable_pages_are_spilled_once() {
        let pool = BufferPool::new(Some(600));
        let id = pool.register(int_page(0..64));
        // Evict, reload, evict again by registering pressure.
        for i in 1..4 {
            let _ = pool.register(int_page(i * 64..(i + 1) * 64));
        }
        let after_first = pool.stats().spill_bytes;
        let _ = pool.pin(id);
        for i in 4..8 {
            let _ = pool.register(int_page(i * 64..(i + 1) * 64));
        }
        let s = pool.stats();
        assert!(s.evictions >= 2);
        // Re-evicting `id` reused its spill run: spill bytes grew only by
        // the *other* pages' first evictions (4 pages * 521 bytes each).
        assert!(
            s.spill_bytes <= after_first + 4 * (512 + 9),
            "re-eviction must not rewrite an already spilled page"
        );
    }
}
