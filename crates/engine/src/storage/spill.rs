//! Append-only spill files for evicted pages and operator state.
//!
//! A [`SpillStore`] is one temporary file plus a cursor: writers append a
//! byte run and get back its `(offset, len)` location, readers fetch a run
//! by location. Both sides share one mutex — spill traffic is page-sized,
//! so lock hold times are dominated by the I/O itself. The file is deleted
//! when the store is dropped.
//!
//! The spill directory is `MVDESIGN_SPILL_DIR` when set, otherwise the
//! workspace's `target/mvdesign-spill/` — spill never writes outside the
//! repository checkout by default.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Distinguishes spill files of concurrent stores within one process.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// The directory spill files are created in: `MVDESIGN_SPILL_DIR` when
/// set, otherwise `target/mvdesign-spill/` under the workspace root.
pub(crate) fn spill_dir() -> PathBuf {
    match std::env::var_os("MVDESIGN_SPILL_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/mvdesign-spill"
        )),
    }
}

/// An append-only temporary file holding spilled byte runs.
///
/// Runs are addressed by the `(offset, len)` pair returned from
/// [`SpillStore::write`]; they are immutable once written. The backing
/// file is removed on drop.
#[derive(Debug)]
pub struct SpillStore {
    file: Mutex<Cursor>,
    path: PathBuf,
}

#[derive(Debug)]
struct Cursor {
    file: File,
    len: u64,
}

impl SpillStore {
    /// Creates a fresh spill file (see the module docs for where).
    pub fn create() -> io::Result<Self> {
        let dir = spill_dir();
        fs::create_dir_all(&dir)?;
        let name = format!(
            "spill-{}-{}.bin",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let path = dir.join(name);
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)?;
        Ok(Self {
            file: Mutex::new(Cursor { file, len: 0 }),
            path,
        })
    }

    /// Appends `bytes` and returns their `(offset, len)` location.
    pub fn write(&self, bytes: &[u8]) -> io::Result<(u64, u64)> {
        let mut cur = self.file.lock().expect("spill store poisoned");
        let offset = cur.len;
        cur.file.seek(SeekFrom::Start(offset))?;
        cur.file.write_all(bytes)?;
        cur.len = offset + bytes.len() as u64;
        Ok((offset, bytes.len() as u64))
    }

    /// Reads the `len` bytes starting at `offset` (a location previously
    /// returned by [`SpillStore::write`]).
    pub fn read(&self, offset: u64, len: u64) -> io::Result<Vec<u8>> {
        let mut cur = self.file.lock().expect("spill store poisoned");
        cur.file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len as usize];
        cur.file.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.file.lock().expect("spill store poisoned").len
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_round_trip_and_file_is_removed_on_drop() {
        let store = SpillStore::create().expect("create spill store");
        let path = store.path().to_path_buf();
        let a = store.write(b"hello").expect("write");
        let b = store.write(b"paged world").expect("write");
        assert_eq!(a, (0, 5));
        assert_eq!(b, (5, 11));
        assert_eq!(store.read(a.0, a.1).expect("read"), b"hello");
        assert_eq!(store.read(b.0, b.1).expect("read"), b"paged world");
        assert_eq!(store.bytes_written(), 16);
        assert!(path.exists());
        drop(store);
        assert!(!path.exists(), "spill file must be deleted on drop");
    }

    #[test]
    fn interleaved_reads_do_not_corrupt_appends() {
        let store = SpillStore::create().expect("create spill store");
        let first = store.write(&[1, 2, 3]).expect("write");
        let _ = store.read(first.0, first.1).expect("read");
        // The next write must land *after* the first run even though the
        // read moved the file cursor.
        let second = store.write(&[9, 9]).expect("write");
        assert_eq!(second.0, 3);
        assert_eq!(store.read(first.0, first.1).expect("read"), [1, 2, 3]);
        assert_eq!(store.read(second.0, second.1).expect("read"), [9, 9]);
    }
}
