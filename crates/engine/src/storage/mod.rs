//! Paged columnar storage: fixed-size pages, a buffer pool with clock
//! eviction, and spill-to-disk.
//!
//! Until this layer existed every [`crate::Batch`] was fully resident and
//! `iosim` could only *simulate* block accesses from row counts. Here
//! blocks become real: a column is cut into fixed-size pages
//! ([`DEFAULT_PAGE_ROWS`] rows each), pages live in a [`BufferPool`] with a
//! configurable byte budget, and when the pool is over budget a clock
//! sweep evicts unpinned pages to an append-only [`SpillStore`] file. A
//! later pin decodes the page back — the page codec round-trips
//! every column representation exactly, and dictionary value tables stay
//! resident in frame metadata so decoded pages share the *same* `Arc`'d
//! table as their siblings.
//!
//! **Determinism under eviction.** Eviction only changes *residency*,
//! never content: a page read back from spill is representation-identical
//! (same variant, same values, same shared dictionary pointer) to the page
//! that was evicted. Every kernel is a pure function of column content, so
//! query results are bit-identical at any pool size, eviction order, or
//! thread count — pinned by the differential battery in
//! `tests/engine_paged.rs`.

mod page;
mod paged;
mod pool;
mod spill;

pub use page::{batch_bytes, DEFAULT_PAGE_ROWS};
pub use paged::PagedBatch;
pub use pool::{BufferPool, PageId, PoolStats};
pub use spill::SpillStore;
