//! Page-backed batches: the out-of-core counterpart of [`Batch`].
//!
//! A [`PagedBatch`] keeps the header and per-column page handles resident;
//! the data itself lives in a shared [`BufferPool`]. Execution streams it
//! page by page: [`PagedBatch::page_chunk`] pins one page per column and
//! wraps the shared `Arc`s as a zero-copy resident [`Batch`] — the page is
//! droppable again the moment the chunk is — while [`PagedBatch::gather`]
//! and [`PagedBatch::value_at`] pin pages on demand for index-driven row
//! movement (join payloads, aggregate representatives).
//!
//! Reconstruction is representation-exact: pages are cut with the
//! variant-preserving [`Column::slice`] and reassembled with
//! [`Column::concat`], so `to_batch()` equals the original batch under the
//! derived (representation-sensitive) `PartialEq`, dictionary value tables
//! included — they stay resident and every page of a dictionary column
//! shares the one original `Arc` table.

use std::sync::Arc;

use mvdesign_algebra::{AttrRef, Value};

use crate::batch::{Batch, Column};

use super::page::{column_bytes, DEFAULT_PAGE_ROWS};
use super::pool::{BufferPool, PageId};

/// The representation of a paged column, kept resident so empty results
/// and empty tables rebuild the exact original column variant without
/// touching a page.
#[derive(Debug, Clone)]
pub(crate) enum ColKind {
    /// Pages are [`Column::Int`].
    Int,
    /// Pages are [`Column::Text`].
    Text,
    /// Pages are [`Column::Date`].
    Date,
    /// Pages are [`Column::Dict`] sharing this value table.
    Dict(Arc<[Arc<str>]>),
    /// Pages are [`Column::Mixed`].
    Mixed,
}

impl ColKind {
    fn of(col: &Column) -> Self {
        match col {
            Column::Int(_) => ColKind::Int,
            Column::Text(_) => ColKind::Text,
            Column::Date(_) => ColKind::Date,
            Column::Dict { values, .. } => ColKind::Dict(Arc::clone(values)),
            Column::Mixed(_) => ColKind::Mixed,
        }
    }

    fn empty_column(&self) -> Column {
        match self {
            ColKind::Int => Column::Int(Vec::new()),
            ColKind::Text => Column::Text(Vec::new()),
            ColKind::Date => Column::Date(Vec::new()),
            ColKind::Dict(values) => Column::Dict {
                codes: Vec::new(),
                values: Arc::clone(values),
            },
            ColKind::Mixed => Column::Mixed(Vec::new()),
        }
    }
}

/// One page-backed column: handles into the pool plus resident metadata.
#[derive(Debug, Clone)]
pub(crate) struct PagedColumn {
    pages: Vec<PageId>,
    kind: ColKind,
}

/// A header plus page-backed columns — see the module docs.
#[derive(Debug, Clone)]
pub struct PagedBatch {
    attrs: Vec<AttrRef>,
    cols: Vec<PagedColumn>,
    rows: usize,
    page_rows: usize,
    bytes: usize,
    pool: Arc<BufferPool>,
}

impl PagedBatch {
    /// Pages `batch` into `pool`, cutting every column into
    /// `page_rows`-row pages (clamped to at least 1;
    /// [`DEFAULT_PAGE_ROWS`] is the usual choice). Registration may
    /// already evict under a tight budget.
    pub fn from_batch(batch: &Batch, pool: &Arc<BufferPool>, page_rows: usize) -> Self {
        let page_rows = page_rows.max(1);
        let rows = batch.rows();
        let mut bytes = 0;
        let cols = batch
            .columns()
            .iter()
            .map(|c| {
                bytes += column_bytes(c);
                let kind = ColKind::of(c);
                let pages = (0..rows.div_ceil(page_rows))
                    .map(|p| {
                        let lo = p * page_rows;
                        pool.register(c.slice(lo..rows.min(lo + page_rows)))
                    })
                    .collect();
                PagedColumn { pages, kind }
            })
            .collect();
        Self {
            attrs: batch.attrs().to_vec(),
            cols,
            rows,
            page_rows,
            bytes,
            pool: Arc::clone(pool),
        }
    }

    /// Pages `batch` with the default page size.
    pub fn from_batch_default(batch: &Batch, pool: &Arc<BufferPool>) -> Self {
        Self::from_batch(batch, pool, DEFAULT_PAGE_ROWS)
    }

    /// The qualified attribute header.
    pub fn attrs(&self) -> &[AttrRef] {
        &self.attrs
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Rows per page.
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// Pages per column (the block count of one full column scan).
    pub fn page_count(&self) -> usize {
        self.rows.div_ceil(self.page_rows)
    }

    /// Estimated data bytes across all columns (the number pool budgets
    /// are sized against).
    pub fn data_bytes(&self) -> usize {
        self.bytes
    }

    /// The pool holding this batch's pages.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Index of an attribute in the header.
    pub fn index_of(&self, attr: &AttrRef) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }

    /// Pins page `p` of every column and wraps the shared page `Arc`s as a
    /// resident [`Batch`] — zero-copy: the chunk holds the pages pinned
    /// and releases them when dropped.
    pub(crate) fn page_chunk(&self, p: usize) -> Batch {
        let columns = self
            .cols
            .iter()
            .map(|c| self.pool.pin(c.pages[p]))
            .collect();
        Batch::new(self.attrs.clone(), columns)
    }

    /// Fully materialises column `i` (pins its pages in order and
    /// concatenates) — used for join keys and aggregate inputs, which the
    /// index kernels need contiguous.
    pub(crate) fn materialize_column(&self, i: usize) -> Arc<Column> {
        let col = &self.cols[i];
        match col.pages.len() {
            0 => Arc::new(col.kind.empty_column()),
            1 => self.pool.pin(col.pages[0]),
            _ => {
                let pages: Vec<Arc<Column>> =
                    col.pages.iter().map(|&id| self.pool.pin(id)).collect();
                let refs: Vec<&Column> = pages.iter().map(Arc::as_ref).collect();
                Arc::new(Column::concat(&refs))
            }
        }
    }

    /// Materialises the whole batch. Representation-exact: equals the
    /// batch this one was paged from.
    pub fn to_batch(&self) -> Batch {
        let columns = (0..self.cols.len())
            .map(|i| self.materialize_column(i))
            .collect();
        Batch::new(self.attrs.clone(), columns)
    }

    /// Selects columns by header index, sharing page handles (zero-copy —
    /// the paged analogue of [`Batch::select_columns`]).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    #[must_use]
    pub(crate) fn select_columns(&self, idx: &[usize]) -> PagedBatch {
        PagedBatch {
            attrs: idx.iter().map(|&i| self.attrs[i].clone()).collect(),
            cols: idx.iter().map(|&i| self.cols[i].clone()).collect(),
            rows: self.rows,
            page_rows: self.page_rows,
            bytes: self.bytes,
            pool: Arc::clone(&self.pool),
        }
    }

    /// A resident batch holding the rows `idx`, in order — the paged twin
    /// of [`Batch::gather`], pinning pages on demand (consecutive indexes
    /// into one page pin it once).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    #[must_use]
    pub(crate) fn gather(&self, idx: &[usize]) -> Batch {
        let columns = self
            .cols
            .iter()
            .map(|c| Arc::new(self.gather_column(c, idx)))
            .collect();
        Batch::new(self.attrs.clone(), columns)
    }

    fn gather_column(&self, col: &PagedColumn, idx: &[usize]) -> Column {
        let mut pinned: Option<(usize, Arc<Column>)> = None;
        let page_at = |i: usize, pinned: &mut Option<(usize, Arc<Column>)>| {
            let p = i / self.page_rows;
            match pinned {
                Some((cur, page)) if *cur == p => Arc::clone(page),
                _ => {
                    let page = self.pool.pin(col.pages[p]);
                    *pinned = Some((p, Arc::clone(&page)));
                    page
                }
            }
        };
        match &col.kind {
            ColKind::Int => Column::Int(
                idx.iter()
                    .map(|&i| {
                        let page = page_at(i, &mut pinned);
                        match &*page {
                            Column::Int(v) => v[i % self.page_rows],
                            _ => unreachable!("Int column holds Int pages"),
                        }
                    })
                    .collect(),
            ),
            ColKind::Date => Column::Date(
                idx.iter()
                    .map(|&i| {
                        let page = page_at(i, &mut pinned);
                        match &*page {
                            Column::Date(v) => v[i % self.page_rows],
                            _ => unreachable!("Date column holds Date pages"),
                        }
                    })
                    .collect(),
            ),
            ColKind::Text => Column::Text(
                idx.iter()
                    .map(|&i| {
                        let page = page_at(i, &mut pinned);
                        match &*page {
                            Column::Text(v) => Arc::clone(&v[i % self.page_rows]),
                            _ => unreachable!("Text column holds Text pages"),
                        }
                    })
                    .collect(),
            ),
            ColKind::Dict(values) => Column::Dict {
                codes: idx
                    .iter()
                    .map(|&i| {
                        let page = page_at(i, &mut pinned);
                        match &*page {
                            Column::Dict { codes, .. } => codes[i % self.page_rows],
                            _ => unreachable!("Dict column holds Dict pages"),
                        }
                    })
                    .collect(),
                values: Arc::clone(values),
            },
            // Re-canonicalise exactly like the resident `Column::gather`
            // on a Mixed column.
            ColKind::Mixed => Column::from_values(idx.iter().map(|&i| {
                let page = page_at(i, &mut pinned);
                page.value(i % self.page_rows)
            })),
        }
    }

    /// The value at row `i` of column `col` (pins the covering page).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn value_at(&self, col: usize, i: usize) -> Value {
        let page = self.pool.pin(self.cols[col].pages[i / self.page_rows]);
        page.value(i % self.page_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::Value;

    fn sample_batch() -> Batch {
        let table: Arc<[Arc<str>]> = vec![Arc::from("a"), Arc::from("b"), Arc::from("c")].into();
        let n = 23usize;
        Batch::new(
            vec![
                AttrRef::new("R", "i"),
                AttrRef::new("R", "t"),
                AttrRef::new("R", "d"),
                AttrRef::new("R", "m"),
            ],
            vec![
                Arc::new(Column::Int((0..n as i64).collect())),
                Arc::new(Column::dict(
                    (0..n).map(|i| (i % 3) as u32).collect(),
                    table,
                )),
                Arc::new(Column::Date((0..n as i64).map(|i| i * 10).collect())),
                Arc::new(Column::Mixed(
                    (0..n)
                        .map(|i| {
                            if i % 2 == 0 {
                                Value::Int(i as i64)
                            } else {
                                Value::text(format!("s{i}"))
                            }
                        })
                        .collect(),
                )),
            ],
        )
    }

    #[test]
    fn to_batch_is_representation_exact_at_any_budget() {
        let batch = sample_batch();
        for budget in [None, Some(10_000), Some(64)] {
            let pool = BufferPool::new(budget);
            let paged = PagedBatch::from_batch(&batch, &pool, 4);
            assert_eq!(paged.rows(), 23);
            assert_eq!(paged.page_count(), 6);
            let back = paged.to_batch();
            assert_eq!(back, batch, "budget {budget:?}");
            // Dictionary pages share the original value table pointer.
            assert!(Arc::ptr_eq(
                back.column(1).dict_values().unwrap(),
                batch.column(1).dict_values().unwrap()
            ));
        }
    }

    #[test]
    fn gather_matches_resident_gather_across_page_boundaries() {
        let batch = sample_batch();
        let pool = BufferPool::new(Some(64));
        let paged = PagedBatch::from_batch(&batch, &pool, 4);
        let idx = [3usize, 4, 5, 22, 0, 7, 7, 8, 15];
        assert_eq!(paged.gather(&idx), batch.gather(&idx));
        assert_eq!(paged.gather(&[]), batch.gather(&[]));
    }

    #[test]
    fn page_chunks_are_zero_copy_views_of_pool_pages() {
        let batch = sample_batch();
        let pool = BufferPool::unbounded();
        let paged = PagedBatch::from_batch(&batch, &pool, 8);
        let chunk = paged.page_chunk(1);
        assert_eq!(chunk.rows(), 8);
        assert_eq!(chunk.column(0), &batch.column(0).slice(8..16));
        // Pinning the same page again returns the same Arc.
        let again = paged.page_chunk(1);
        assert!(Arc::ptr_eq(&chunk.columns()[0], &again.columns()[0]));
    }

    #[test]
    fn empty_batches_round_trip_with_their_column_kinds() {
        let empty = Batch::new(
            vec![AttrRef::new("R", "a"), AttrRef::new("R", "b")],
            vec![
                Arc::new(Column::Text(Vec::new())),
                Arc::new(Column::Int(Vec::new())),
            ],
        );
        let pool = BufferPool::unbounded();
        let paged = PagedBatch::from_batch(&empty, &pool, 4);
        assert_eq!(paged.page_count(), 0);
        assert_eq!(paged.to_batch(), empty);
    }

    #[test]
    fn value_at_reads_through_the_pool() {
        let batch = sample_batch();
        let pool = BufferPool::new(Some(64));
        let paged = PagedBatch::from_batch(&batch, &pool, 4);
        for i in [0usize, 5, 13, 22] {
            for c in 0..4 {
                assert_eq!(paged.value_at(c, i), batch.column(c).value(i));
            }
        }
    }
}
