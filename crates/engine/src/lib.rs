//! An in-memory SPJ execution engine.
//!
//! The paper evaluates its design against a hypothetical relational DBMS
//! whose operators are linear-search selection and nested-loop join. This
//! crate implements that DBMS in miniature so the rest of the workspace can
//! be *validated*, not just estimated:
//!
//! * [`execute`] runs any [`Expr`](mvdesign_algebra::Expr) against a
//!   [`Database`] with bag semantics — rewrites (push-down, join reordering,
//!   MVPP merging) are property-tested to preserve results exactly;
//! * [`Generator`] synthesises databases whose value distributions match a
//!   catalog's selectivities, so estimated and observed cardinalities can be
//!   compared;
//! * [`measure`] executes while counting simulated block accesses with the
//!   same disciplines the cost model assumes, grounding `Ca(v)` in observed
//!   behaviour.
//!
//! Execution is *columnar*: operators evaluate over [`Batch`]es of typed
//! [`Column`]s, resolving attribute offsets once per operator rather than
//! once per row. [`Table`] is a thin façade over a batch that still exposes
//! the original row-major API. The retired tuple-at-a-time engine lives on
//! in [`row_reference`] as a differential oracle: `mvdesign-verify` and the
//! `engine_batch` property suite check the two engines produce identical
//! bags on every plan they run.
//!
//! Execution can additionally fan out across cores: an [`ExecContext`]
//! (default: single-threaded, so every existing call site is untouched)
//! splits batches into fixed-size morsels and runs the hot kernels —
//! selection masks, the raw-key hash join, compact hash aggregation — on
//! scoped worker threads. Per-morsel partial results always merge in
//! morsel order, so results are bit-identical at every thread count; the
//! `engine_morsel` differential battery pins that property.
//!
//! Storage can be *out-of-core*: [`storage`] cuts columns into fixed-size
//! pages held in a [`BufferPool`] with a byte budget and clock eviction to
//! a spill file, the executor streams paged tables page-by-page, and hash
//! joins/aggregations whose state outgrows [`ExecContext::mem_budget`]
//! take Grace-style partitioned spill paths. Eviction changes residency,
//! never content, so results stay bit-identical at any pool size — and
//! [`measure_paged`] reports each operator's *measured* pool misses next
//! to the modelled block charges, grounding the paper's cost model in
//! actual page traffic.
//!
//! # Example
//!
//! ```
//! use mvdesign_algebra::parse_query;
//! use mvdesign_engine::{Database, Table};
//! use mvdesign_algebra::{AttrRef, Value};
//!
//! let mut db = Database::new();
//! db.insert_table(Table::new(
//!     "Cust",
//!     [AttrRef::new("Cust", "name"), AttrRef::new("Cust", "city")],
//!     vec![
//!         vec![Value::text("ann"), Value::text("LA")],
//!         vec![Value::text("bob"), Value::text("SF")],
//!     ],
//! ));
//! let q = parse_query("SELECT name FROM Cust WHERE city = 'LA'").unwrap();
//! let result = mvdesign_engine::execute(&q, &db)?;
//! assert_eq!(result.rows().len(), 1);
//! # Ok::<(), mvdesign_engine::ExecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod datagen;
mod exec;
mod iosim;
mod profile;
pub mod row_reference;
pub mod storage;
mod table;

pub use crate::batch::{Batch, Column};
pub use crate::datagen::{Generator, GeneratorConfig};
pub use crate::exec::delta::{execute_delta, refresh_view_delta, split_appends, DeltaMap};
pub use crate::exec::{
    execute, execute_with, execute_with_context, materialize_view, materialize_view_with,
    selection_mask, selection_mask_full, selection_mask_with, ExecContext, ExecError, JoinAlgo,
    DEFAULT_MORSEL_ROWS,
};
pub use crate::iosim::{measure, measure_paged, measure_with, IoReport, OpCharge};
pub use crate::profile::{profile_database, ProfileConfig};
pub use crate::storage::{batch_bytes, BufferPool, PagedBatch, PoolStats, DEFAULT_PAGE_ROWS};
pub use crate::table::{Database, Table};
