//! Morsel-driven parallel scheduling with deterministic merge order.
//!
//! A *morsel* is a fixed-size run of consecutive batch rows. Parallel
//! kernels split their input into morsels, let a pool of scoped workers
//! ([`std::thread::scope`] — no runtime dependency) pull morsel ids off a
//! shared atomic counter, and then reassemble the per-morsel partial
//! results **in morsel order**, never in completion order. Scheduling is
//! dynamic (whichever worker is free takes the next morsel) but the merge
//! is positional, so the output of every parallel kernel is bit-identical
//! to its single-threaded twin no matter how the OS interleaves the
//! workers — the same parallel-with-deterministic-merge pattern the view
//! search uses.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Default rows per morsel: large enough that per-morsel scheduling and
/// bookkeeping vanish against kernel work, small enough to load-balance
/// skewed operators across cores.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Execution-time knobs for the batch engine: how many worker threads the
/// hot kernels may fan out to and how many rows each morsel holds.
///
/// The default is **single-threaded**, so every existing call site, seeded
/// fixture and published artifact is untouched unless a caller opts in.
/// Results never depend on either knob: parallel kernels merge per-morsel
/// partials in morsel order and are bit-identical to the single-threaded
/// kernels (pinned by the differential battery in `tests/engine_morsel.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecContext {
    /// Worker threads the kernels may use; `0` means all available cores.
    pub threads: usize,
    /// Rows per morsel (clamped to at least 1).
    pub morsel_rows: usize,
    /// Operator memory budget in bytes (`None` = unbounded). When set,
    /// the hash join and hash aggregation switch to spill-partitioned
    /// (Grace) variants once their estimated state exceeds a share of the
    /// budget — results are bit-identical either way (pinned by
    /// `tests/engine_paged.rs`), only the memory high-water changes.
    pub mem_budget: Option<usize>,
}

impl Default for ExecContext {
    fn default() -> Self {
        Self {
            threads: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            mem_budget: None,
        }
    }
}

impl ExecContext {
    /// A context running on `threads` workers (0 = all available cores)
    /// with the default morsel size.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// The resolved worker count: `threads`, or the machine's available
    /// parallelism when `threads` is 0.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }

    /// Rows per morsel, clamped to at least 1.
    pub(crate) fn morsel(&self) -> usize {
        self.morsel_rows.max(1)
    }

    /// Whether a kernel over `rows` rows should fan out: more than one
    /// worker available and more than one morsel of work to share.
    pub(crate) fn is_parallel(&self, rows: usize) -> bool {
        self.effective_threads() > 1 && rows > self.morsel()
    }
}

/// Runs `work(0..n)` across up to `workers` scoped threads and returns the
/// results **in task order** (index `t` of the result is `work(t)`).
///
/// Tasks are scheduled dynamically — each worker pulls the next unclaimed
/// task id from an atomic counter — so stragglers don't serialise the pool,
/// but the merge is positional, which is what makes every caller's output
/// independent of thread interleaving. With one worker (or one task) it
/// degenerates to a plain sequential loop on the calling thread.
pub(crate) fn run_tasks<T, F>(n: usize, workers: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return (0..n).map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, T)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let id = next.fetch_add(1, Ordering::Relaxed);
                        if id >= n {
                            break;
                        }
                        done.push((id, work(id)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for done in per_worker {
        for (id, value) in done {
            slots[id] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task id below n is claimed exactly once"))
        .collect()
}

/// Splits `rows` into the context's morsels and runs `work` on each row
/// range, returning the per-morsel results in morsel (= row) order.
pub(crate) fn run_morsels<T, F>(rows: usize, ctx: &ExecContext, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let morsel = ctx.morsel();
    let n = rows.div_ceil(morsel);
    run_tasks(n, ctx.effective_threads(), |id| {
        let lo = id * morsel;
        work(lo..rows.min(lo + morsel))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_threaded() {
        let ctx = ExecContext::default();
        assert_eq!(ctx.effective_threads(), 1);
        assert!(!ctx.is_parallel(1_000_000));
    }

    #[test]
    fn zero_threads_resolves_to_available_cores() {
        let ctx = ExecContext::with_threads(0);
        assert!(ctx.effective_threads() >= 1);
    }

    #[test]
    fn results_are_in_task_order_regardless_of_workers() {
        for workers in [1, 2, 3, 8] {
            let out = run_tasks(17, workers, |i| i * i);
            let expected: Vec<usize> = (0..17).map(|i| i * i).collect();
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn morsels_cover_rows_exactly_once_in_order() {
        let ctx = ExecContext {
            threads: 4,
            morsel_rows: 7,
            mem_budget: None,
        };
        let ranges = run_morsels(23, &ctx, |r| r);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..7);
        assert_eq!(ranges[3], 21..23);
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 23);
    }

    #[test]
    fn empty_input_schedules_nothing() {
        let ctx = ExecContext::with_threads(4);
        let out = run_morsels(0, &ctx, |r| r.len());
        assert!(out.is_empty());
    }

    #[test]
    fn single_row_morsels_still_merge_in_order() {
        let ctx = ExecContext {
            threads: 4,
            morsel_rows: 1,
            mem_budget: None,
        };
        let out = run_morsels(100, &ctx, |r| r.start);
        let expected: Vec<usize> = (0..100).collect();
        assert_eq!(out, expected);
    }
}
