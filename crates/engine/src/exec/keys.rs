//! Raw integer join/group keys shared by the hash join and hash-aggregation
//! kernels (single-threaded and partitioned/morsel variants alike).
//!
//! `Int`/`Date` columns borrow their `i64` storage directly. Dictionary
//! columns contribute their codes: code equality is value equality within
//! one dictionary, and across dictionaries the right side's *entries* are
//! translated into the left code space once per batch, so text-keyed joins
//! never hash a string. Group keys pack up to [`COMPACT_GROUP_KEY_COLS`]
//! column values into a fixed-width `[i64; 4]`, padded with `i64::MIN` —
//! every key in one aggregation shares a width, so padding never collides.

use std::sync::Arc;

use crate::batch::Column;

/// Widest group-by the compact fixed-width aggregate key covers.
pub(crate) const COMPACT_GROUP_KEY_COLS: usize = 4;

/// A fixed-width packed group key (see [`pack_key`]).
pub(crate) type CompactKey = [i64; COMPACT_GROUP_KEY_COLS];

/// Raw `i64` join keys — borrowed straight from `Int`/`Date` storage, or
/// materialised once per batch for dictionary codes.
pub(crate) enum RawKeys<'a> {
    Borrowed(&'a [i64]),
    Owned(Vec<i64>),
}

impl RawKeys<'_> {
    pub(crate) fn as_slice(&self) -> &[i64] {
        match self {
            RawKeys::Borrowed(s) => s,
            RawKeys::Owned(v) => v,
        }
    }
}

/// Raw keys for one equi-join pair, if the pair is integer-representable.
///
/// `Int`/`Int` and `Date`/`Date` borrow their storage. `Dict`/`Dict` joins
/// compare codes instead of strings: the right side's *dictionary entries*
/// (not its rows) are translated into the left code space once, and a right
/// value missing from the left dictionary maps to `-1`, which can never
/// equal a (non-negative) left code — so the translated keys join exactly
/// like the strings they stand for.
pub(crate) fn raw_key_pair<'a>(
    lc: &'a Column,
    rc: &'a Column,
) -> Option<(RawKeys<'a>, RawKeys<'a>)> {
    match (lc, rc) {
        (Column::Int(a), Column::Int(b)) | (Column::Date(a), Column::Date(b)) => {
            Some((RawKeys::Borrowed(a), RawKeys::Borrowed(b)))
        }
        (
            Column::Dict {
                codes: a,
                values: va,
            },
            Column::Dict {
                codes: b,
                values: vb,
            },
        ) => {
            let left = RawKeys::Owned(a.iter().map(|&c| i64::from(c)).collect());
            let right = if Arc::ptr_eq(va, vb) {
                RawKeys::Owned(b.iter().map(|&c| i64::from(c)).collect())
            } else {
                let by_str: std::collections::HashMap<&str, i64> = va
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (&**s, i as i64))
                    .collect();
                let translated: Vec<i64> = vb
                    .iter()
                    .map(|s| by_str.get(&**s).copied().unwrap_or(-1))
                    .collect();
                RawKeys::Owned(b.iter().map(|&c| translated[c as usize]).collect())
            };
            Some((left, right))
        }
        _ => None,
    }
}

/// When every key pair is integer-representable (`Int`/`Int`, `Date`/`Date`
/// or `Dict`/`Dict`), returns the raw keys; empty otherwise. Kernels use
/// the single-pair case as their fast path.
pub(crate) fn raw_keys<'a>(
    lcols: &[&'a Column],
    rcols: &[&'a Column],
) -> Vec<(RawKeys<'a>, RawKeys<'a>)> {
    lcols
        .iter()
        .zip(rcols)
        .map(|(lc, rc)| raw_key_pair(lc, rc))
        .collect::<Option<Vec<_>>>()
        .unwrap_or_default()
}

/// The column's values as raw `i64`s: borrowed for `Int`/`Date`, owned
/// codes for dictionary columns (code equality is value equality, which is
/// all grouping needs).
pub(crate) fn raw_ints(col: &Column) -> Option<RawKeys<'_>> {
    match col {
        Column::Int(v) | Column::Date(v) => Some(RawKeys::Borrowed(v)),
        Column::Dict { codes, .. } => Some(RawKeys::Owned(
            codes.iter().map(|&c| i64::from(c)).collect(),
        )),
        _ => None,
    }
}

/// Packs row `i` of the group-key columns into a fixed-width key, padding
/// unused lanes with `i64::MIN`. Within one aggregation every key uses the
/// same number of lanes, so two packed keys are equal iff the underlying
/// key tuples are equal — the round-trip property the unit tests pin.
pub(crate) fn pack_key(key_slices: &[&[i64]], i: usize) -> CompactKey {
    debug_assert!(key_slices.len() <= COMPACT_GROUP_KEY_COLS);
    let mut key = [i64::MIN; COMPACT_GROUP_KEY_COLS];
    for (k, s) in key_slices.iter().enumerate() {
        key[k] = s[i];
    }
    key
}

/// Unpacks the first `width` lanes of a packed key — the inverse of
/// [`pack_key`] for an aggregation with `width` group columns.
#[cfg(test)]
pub(crate) fn unpack_key(key: &CompactKey, width: usize) -> &[i64] {
    &key[..width]
}

/// Upper-bound hint for the group count: dictionary columns bound their
/// distinct count by the value-table size, other columns only by the row
/// count. Pre-sizing the map from `min(rows, Π per-column hints)` avoids
/// rehashing during the build.
pub(crate) fn group_cardinality_hint(gcols: &[&Column], rows: usize) -> usize {
    let mut hint = 1usize;
    for c in gcols {
        let d = match c {
            Column::Dict { values, .. } => values.len().max(1),
            _ => rows,
        };
        hint = hint.saturating_mul(d);
        if hint >= rows {
            return rows;
        }
    }
    hint
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips_every_width() {
        let c0 = vec![1i64, 2, 3];
        let c1 = vec![-7i64, 0, i64::MAX];
        let c2 = vec![i64::MIN, 5, 9];
        let cols: Vec<&[i64]> = vec![&c0, &c1, &c2];
        for width in 1..=cols.len() {
            let slices = &cols[..width];
            for i in 0..3 {
                let packed = pack_key(slices, i);
                let unpacked = unpack_key(&packed, width);
                let expected: Vec<i64> = slices.iter().map(|s| s[i]).collect();
                assert_eq!(unpacked, expected.as_slice(), "width {width}, row {i}");
                // Padding lanes are inert.
                assert!(packed[width..].iter().all(|&p| p == i64::MIN));
            }
        }
    }

    #[test]
    fn packed_equality_is_tuple_equality() {
        // Distinct tuples (even ones containing the padding sentinel) pack
        // to distinct keys, and equal tuples pack to equal keys.
        let a = vec![1i64, 1, i64::MIN];
        let b = vec![2i64, 2, 2];
        let slices: Vec<&[i64]> = vec![&a, &b];
        let keys: Vec<CompactKey> = (0..3).map(|i| pack_key(&slices, i)).collect();
        assert_ne!(keys[0], keys[2]); // (1,2) ≠ (MIN,2)
        assert_eq!(keys[0], keys[1]); // (1,2) = (1,2)
    }

    #[test]
    fn int_and_date_keys_borrow_storage() {
        let l = Column::Int(vec![1, 2, 3]);
        let r = Column::Int(vec![3, 4]);
        let (lk, rk) = raw_key_pair(&l, &r).expect("int pair");
        assert!(matches!(lk, RawKeys::Borrowed(_)));
        assert_eq!(lk.as_slice(), &[1, 2, 3]);
        assert_eq!(rk.as_slice(), &[3, 4]);
        assert!(raw_key_pair(&l, &Column::Text(vec![])).is_none());
    }

    #[test]
    fn dict_translation_round_trips_through_strings() {
        // Right codes translate into the left code space: equal strings get
        // equal raw keys, strings absent on the left get the -1 sentinel.
        let lv: Arc<[Arc<str>]> = vec!["a".into(), "b".into()].into();
        let rv: Arc<[Arc<str>]> = vec!["b".into(), "zz".into()].into();
        let l = Column::Dict {
            codes: vec![0, 1, 0],
            values: lv,
        };
        let r = Column::Dict {
            codes: vec![0, 1],
            values: rv,
        };
        let (lk, rk) = raw_key_pair(&l, &r).expect("dict pair");
        assert_eq!(lk.as_slice(), &[0, 1, 0]);
        // "b" → left code 1, "zz" → -1 (never equals a left code).
        assert_eq!(rk.as_slice(), &[1, -1]);
    }

    #[test]
    fn cardinality_hint_bounded_by_rows_and_dictionaries() {
        let dict = Column::Dict {
            codes: vec![0; 100],
            values: vec!["x".into(), "y".into(), "z".into()].into(),
        };
        let ints = Column::Int((0..100).collect());
        assert_eq!(group_cardinality_hint(&[&dict], 100), 3);
        assert_eq!(group_cardinality_hint(&[&ints], 100), 100);
        assert_eq!(group_cardinality_hint(&[&dict, &dict], 100), 9);
        assert_eq!(group_cardinality_hint(&[&dict, &ints], 100), 100);
    }
}
