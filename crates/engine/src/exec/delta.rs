//! Delta-propagation execution: the engine half of incremental view
//! maintenance.
//!
//! The symbolic rules live in [`mvdesign_algebra::delta`]; this module runs
//! them over the batch kernels. [`execute_delta`] pushes per-relation
//! [`Delta<Batch>`]s through σ/π/⋈ (selections and projections apply to both
//! delta sides, joins expand via `ΔL⋈R ∪ L⋈ΔR ∪ ΔL⋈ΔR` against the *old*
//! database), and [`refresh_view_delta`] turns one stored view plus the
//! deltas into the view's new contents — appending SPJ inserts, cancelling
//! SPJ deletes, and folding per-group aggregate partials. Everything reuses
//! the resident kernels under the caller's [`ExecContext`], so delta
//! refresh is deterministic at any thread count, morsel size or memory
//! budget, exactly like full execution.
//!
//! Unsupported shapes (per the algebra rules) return `Ok(None)`: the caller
//! recomputes. That fallback is the contract — delta maintenance is an
//! optimization, never a semantics change.

use std::collections::BTreeMap;
use std::sync::Arc;

use mvdesign_algebra::delta::{maintenance_plan, Delta, DeltaMode, MaintenancePlan};
use mvdesign_algebra::{AggExpr, AggFunc, AttrRef, Expr, ExprArena, RelName, Value};

use super::{
    aggregate_batch, execute_with_context, join_batch, project_batch, select_batch, ExecContext,
    ExecError, JoinAlgo,
};
use crate::batch::{Batch, Column};
use crate::table::{Database, Table};

/// Per-relation deltas feeding one refresh pass.
pub type DeltaMap = BTreeMap<RelName, Delta<Batch>>;

/// Splits a database that has only *grown* since `snapshot` (per-relation
/// row counts taken at the last refresh) into the old state and the insert
/// deltas — the warehouse's append-only change capture.
///
/// Relations absent from `snapshot` (freshly materialized views, say) are
/// left as they are in the old state and produce no delta. Appended suffixes
/// become insert-only deltas; the old state holds the prefix via column
/// slices, so dictionary value tables stay shared with the live database.
pub fn split_appends(db: &Database, snapshot: &BTreeMap<RelName, usize>) -> (Database, DeltaMap) {
    let mut old = db.clone();
    let mut deltas = DeltaMap::new();
    for (rel, &snap) in snapshot {
        let Some(table) = db.table(rel.as_str()) else {
            continue;
        };
        // `len` is cheap on paged tables; only changed tables materialize.
        let rows = table.len();
        if rows <= snap {
            continue;
        }
        let batch = table.batch();
        let insert = slice_rows(batch, snap..rows);
        let empty = Batch::empty(batch.attrs().to_vec());
        old.insert_table(Table::from_batch(rel.clone(), slice_rows(batch, 0..snap)));
        deltas.insert(rel.clone(), Delta::new(insert, empty));
    }
    (old, deltas)
}

/// A row range of a batch, variant-preserving (dictionary slices keep the
/// shared value table).
fn slice_rows(batch: &Batch, range: std::ops::Range<usize>) -> Batch {
    let columns = batch
        .columns()
        .iter()
        .map(|c| Arc::new(c.slice(range.clone())))
        .collect();
    Batch::new(batch.attrs().to_vec(), columns)
}

/// Vertical concatenation in argument order; empty parts are skipped and a
/// single surviving part is returned by clone (sharing its columns).
fn vstack(attrs: &[AttrRef], parts: &[&Batch]) -> Batch {
    let live: Vec<&Batch> = parts.iter().copied().filter(|b| b.rows() > 0).collect();
    match live.len() {
        0 => Batch::empty(attrs.to_vec()),
        1 => live[0].clone(),
        _ => {
            let columns = (0..attrs.len())
                .map(|i| {
                    let cols: Vec<&Column> = live.iter().map(|b| b.column(i)).collect();
                    Arc::new(Column::concat(&cols))
                })
                .collect();
            Batch::new(attrs.to_vec(), columns)
        }
    }
}

/// Evaluates the delta of `expr` given the old database and per-relation
/// deltas. Returns `Ok(None)` when the expression cannot propagate the
/// deltas (deletions through a join, any aggregate — those fold only at a
/// view root via [`refresh_view_delta`]).
pub fn execute_delta(
    expr: &Arc<Expr>,
    old: &Database,
    deltas: &DeltaMap,
    algo: JoinAlgo,
    ctx: &ExecContext,
) -> Result<Option<Delta<Batch>>, ExecError> {
    match &**expr {
        Expr::Base(name) => {
            if let Some(d) = deltas.get(name) {
                return Ok(Some(d.clone()));
            }
            let table = old
                .table(name.as_str())
                .ok_or_else(|| ExecError::UnknownRelation(name.clone()))?;
            let attrs = table.batch().attrs().to_vec();
            Ok(Some(Delta::new(
                Batch::empty(attrs.clone()),
                Batch::empty(attrs),
            )))
        }
        Expr::Select { input, predicate } => {
            let Some(d) = execute_delta(input, old, deltas, algo, ctx)? else {
                return Ok(None);
            };
            Ok(Some(Delta::new(
                select_batch(&d.insert, predicate, ctx)?,
                select_batch(&d.delete, predicate, ctx)?,
            )))
        }
        Expr::Project { input, attrs } => {
            let Some(d) = execute_delta(input, old, deltas, algo, ctx)? else {
                return Ok(None);
            };
            Ok(Some(Delta::new(
                project_batch(&d.insert, attrs)?,
                project_batch(&d.delete, attrs)?,
            )))
        }
        Expr::Join { left, right, on } => {
            let Some(dl) = execute_delta(left, old, deltas, algo, ctx)? else {
                return Ok(None);
            };
            let Some(dr) = execute_delta(right, old, deltas, algo, ctx)? else {
                return Ok(None);
            };
            // Deletions through a join need the counting algorithm; the
            // algebra layer routes such views to recomputation, and this
            // guard keeps direct callers honest too.
            if dl.delete.rows() > 0 || dr.delete.rows() > 0 {
                return Ok(None);
            }
            // ΔL⋈ΔR also fixes the joined schema for the empty fallback.
            let both = join_batch(&dl.insert, &dr.insert, on, algo, ctx)?;
            let mut terms: Vec<Batch> = Vec::with_capacity(3);
            if dl.insert.rows() > 0 {
                let old_right = execute_with_context(right, old, algo, ctx)?.into_batch();
                terms.push(join_batch(&dl.insert, &old_right, on, algo, ctx)?);
            }
            if dr.insert.rows() > 0 {
                let old_left = execute_with_context(left, old, algo, ctx)?.into_batch();
                terms.push(join_batch(&old_left, &dr.insert, on, algo, ctx)?);
            }
            terms.push(both);
            let attrs = terms[terms.len() - 1].attrs().to_vec();
            let refs: Vec<&Batch> = terms.iter().collect();
            let insert = vstack(&attrs, &refs);
            let delete = Batch::empty(attrs);
            Ok(Some(Delta::new(insert, delete)))
        }
        Expr::Aggregate { .. } => Ok(None),
    }
}

/// Maintains one stored view incrementally: given its current contents, its
/// definition, the old base state and the per-relation deltas, returns the
/// view's new contents — or `Ok(None)` when the algebra rules (or a value
/// shape the fold cannot absorb) demand recomputation.
///
/// The caller is responsible for the deltas being consistent with `old`
/// (deletes must name existing tuples); inconsistent inputs fall back to
/// `None` rather than producing a wrong view.
pub fn refresh_view_delta(
    old_view: &Batch,
    definition: &Arc<Expr>,
    old: &Database,
    deltas: &DeltaMap,
    algo: JoinAlgo,
    ctx: &ExecContext,
) -> Result<Option<Batch>, ExecError> {
    let mut changed: BTreeMap<RelName, DeltaMode> = BTreeMap::new();
    for (rel, d) in deltas {
        let mode = match (d.insert.rows() > 0, d.delete.rows() > 0) {
            (false, false) => continue,
            (_, true) => DeltaMode::InsertDelete,
            (true, false) => DeltaMode::InsertOnly,
        };
        changed.insert(rel.clone(), mode);
    }
    if changed.is_empty() {
        return Ok(Some(old_view.clone()));
    }
    match maintenance_plan(&mut ExprArena::new(), definition, &changed) {
        MaintenancePlan::Noop => Ok(Some(old_view.clone())),
        MaintenancePlan::Recompute(_) => Ok(None),
        MaintenancePlan::Apply(_) => {
            let Some(d) = execute_delta(definition, old, deltas, algo, ctx)? else {
                return Ok(None);
            };
            Ok(apply_spj(old_view, &d))
        }
        MaintenancePlan::FoldAggregate(_) => {
            let Expr::Aggregate {
                input,
                group_by,
                aggs,
            } = &**definition
            else {
                return Ok(None);
            };
            let Some(d) = execute_delta(input, old, deltas, algo, ctx)? else {
                return Ok(None);
            };
            let ins = aggregate_batch(&d.insert, group_by, aggs, ctx)?;
            let del = aggregate_batch(&d.delete, group_by, aggs, ctx)?;
            Ok(fold_aggregate(old_view, &ins, &del, group_by, aggs))
        }
    }
}

/// Applies an SPJ view delta: appends the inserts and cancels the deletes
/// (one stored occurrence per deleted tuple — bag semantics).
fn apply_spj(old_view: &Batch, d: &Delta<Batch>) -> Option<Batch> {
    if d.delete.rows() == 0 {
        return Some(vstack(old_view.attrs(), &[old_view, &d.insert]));
    }
    let mut cancel: BTreeMap<Vec<Value>, usize> = BTreeMap::new();
    for row in d.delete.to_rows() {
        *cancel.entry(row).or_insert(0) += 1;
    }
    let mut rows = Vec::with_capacity(old_view.rows());
    for row in old_view.to_rows() {
        match cancel.get_mut(&row) {
            Some(n) if *n > 0 => *n -= 1,
            _ => rows.push(row),
        }
    }
    // Every delete must have cancelled a stored tuple; a miss means the
    // deltas disagree with the stored view.
    if cancel.values().any(|n| *n > 0) {
        return None;
    }
    rows.extend(d.insert.to_rows());
    Some(rows_to_batch(old_view.attrs(), rows))
}

/// Folds finalized per-group delta partials into the stored groups.
///
/// `COUNT`/`SUM` add (inserts) and subtract (deletes); `MIN`/`MAX` take the
/// extremum of the stored value and the insert partial — valid because the
/// algebra rules route deletions away from them. Groups whose `COUNT`
/// reaches zero are dropped; groups first seen in the delta are appended in
/// partial order. Row order is old-view order then appendees — deterministic
/// for a deterministic kernel, like everything else in the engine.
fn fold_aggregate(
    old_view: &Batch,
    ins: &Batch,
    del: &Batch,
    group_by: &[AttrRef],
    aggs: &[AggExpr],
) -> Option<Batch> {
    let attrs = old_view.attrs();
    let key_idx: Vec<usize> = group_by
        .iter()
        .map(|a| old_view.index_of(a))
        .collect::<Option<_>>()?;
    let agg_idx: Vec<usize> = aggs
        .iter()
        .map(|a| old_view.index_of(&a.output_attr()))
        .collect::<Option<_>>()?;
    // The partials come out of the same kernel with the same column layout.
    if ins.attrs() != attrs || del.attrs() != attrs {
        return None;
    }
    let count_col = aggs
        .iter()
        .position(|a| a.func == AggFunc::Count)
        .map(|i| agg_idx[i]);

    let key_of =
        |row: &[Value]| -> Vec<Value> { key_idx.iter().map(|&i| row[i].clone()).collect() };
    let mut rows: Vec<Vec<Value>> = old_view.to_rows();
    let mut index: BTreeMap<Vec<Value>, usize> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| (key_of(r), i))
        .collect();

    for partial in ins.to_rows() {
        match index.get(&key_of(&partial)) {
            Some(&i) => {
                for (a, &j) in aggs.iter().zip(&agg_idx) {
                    rows[i][j] = combine(a.func, &rows[i][j], &partial[j], 1)?;
                }
            }
            None => {
                index.insert(key_of(&partial), rows.len());
                rows.push(partial);
            }
        }
    }
    let mut dropped = vec![false; rows.len()];
    for partial in del.to_rows() {
        // A deleted tuple's group must already be stored (or have just been
        // inserted); otherwise the deltas disagree with the old state.
        let &i = index.get(&key_of(&partial))?;
        for (a, &j) in aggs.iter().zip(&agg_idx) {
            rows[i][j] = combine(a.func, &rows[i][j], &partial[j], -1)?;
        }
        if let Some(c) = count_col {
            match rows[i][c] {
                Value::Int(n) if n <= 0 => dropped[i] = true,
                _ => {}
            }
        }
    }
    let rows: Vec<Vec<Value>> = rows
        .into_iter()
        .zip(dropped)
        .filter(|(_, d)| !*d)
        .map(|(r, _)| r)
        .collect();
    Some(rows_to_batch(attrs, rows))
}

/// Combines one stored aggregate value with one delta partial. `sign` is
/// `+1` for inserts, `-1` for deletes.
fn combine(func: AggFunc, stored: &Value, partial: &Value, sign: i64) -> Option<Value> {
    match func {
        AggFunc::Count | AggFunc::Sum => match (stored, partial) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a + sign * b)),
            _ => None,
        },
        AggFunc::Min if sign > 0 => Some(stored.clone().min(partial.clone())),
        AggFunc::Max if sign > 0 => Some(stored.clone().max(partial.clone())),
        // MIN/MAX deletes and AVG are routed to recomputation upstream.
        _ => None,
    }
}

/// Builds a batch from rows, keeping the empty case well-typed.
fn rows_to_batch(attrs: &[AttrRef], rows: Vec<Vec<Value>>) -> Batch {
    if rows.is_empty() {
        Batch::empty(attrs.to_vec())
    } else {
        Batch::from_rows(attrs.to_vec(), rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{CompareOp, JoinCondition, Predicate};

    fn attr(rel: &str, a: &str) -> AttrRef {
        AttrRef::new(rel, a)
    }

    fn table(name: &str, attrs: &[AttrRef], rows: Vec<Vec<Value>>) -> Table {
        Table::from_batch(name, rows_to_batch(attrs, rows))
    }

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|v| Value::Int(*v)).collect()
    }

    /// R(k, v) with 3 old rows; S(k, w) with 2 old rows.
    fn fixture() -> (Database, Vec<AttrRef>, Vec<AttrRef>) {
        let r_attrs = vec![attr("R", "k"), attr("R", "v")];
        let s_attrs = vec![attr("S", "k"), attr("S", "w")];
        let mut db = Database::new();
        db.insert_table(table(
            "R",
            &r_attrs,
            vec![ints(&[1, 10]), ints(&[2, 20]), ints(&[1, 30])],
        ));
        db.insert_table(table("S", &s_attrs, vec![ints(&[1, 7]), ints(&[3, 8])]));
        (db, r_attrs, s_attrs)
    }

    fn insert_only(attrs: &[AttrRef], rows: Vec<Vec<Value>>) -> Delta<Batch> {
        Delta::new(rows_to_batch(attrs, rows), Batch::empty(attrs.to_vec()))
    }

    #[test]
    fn join_delta_matches_recompute_difference() {
        let (old, r_attrs, s_attrs) = fixture();
        let expr = Expr::join(
            Expr::base("R"),
            Expr::base("S"),
            JoinCondition::on(attr("R", "k"), attr("S", "k")),
        );
        let mut deltas = DeltaMap::new();
        deltas.insert(
            RelName::new("R"),
            insert_only(&r_attrs, vec![ints(&[3, 40])]),
        );
        deltas.insert(
            RelName::new("S"),
            insert_only(&s_attrs, vec![ints(&[1, 9]), ints(&[3, 6])]),
        );
        // New state for the recompute oracle.
        let mut new = old.clone();
        new.table_mut("R")
            .unwrap()
            .extend_rows(vec![ints(&[3, 40])]);
        new.table_mut("S")
            .unwrap()
            .extend_rows(vec![ints(&[1, 9]), ints(&[3, 6])]);

        let ctx = ExecContext::default();
        let d = execute_delta(&expr, &old, &deltas, JoinAlgo::Hash, &ctx)
            .unwrap()
            .expect("insert deltas propagate through joins");
        assert_eq!(d.delete.rows(), 0);

        let old_out = execute_with_context(&expr, &old, JoinAlgo::Hash, &ctx).unwrap();
        let new_out = execute_with_context(&expr, &new, JoinAlgo::Hash, &ctx).unwrap();
        let mut folded: Vec<Vec<Value>> = old_out.batch().to_rows();
        folded.extend(d.insert.to_rows());
        folded.sort();
        let mut want = new_out.batch().to_rows();
        want.sort();
        assert_eq!(folded, want, "old ∪ Δ must equal the recomputed join");
    }

    #[test]
    fn select_distributes_over_deletes() {
        let (old, r_attrs, _) = fixture();
        let expr = Expr::select(
            Expr::base("R"),
            Predicate::cmp(attr("R", "v"), CompareOp::Lt, 25),
        );
        let mut deltas = DeltaMap::new();
        deltas.insert(
            RelName::new("R"),
            Delta::new(
                rows_to_batch(&r_attrs, vec![ints(&[4, 5]), ints(&[4, 99])]),
                rows_to_batch(&r_attrs, vec![ints(&[2, 20])]),
            ),
        );
        let d = execute_delta(
            &expr,
            &old,
            &deltas,
            JoinAlgo::NestedLoop,
            &ExecContext::default(),
        )
        .unwrap()
        .expect("σ passes deltas through");
        assert_eq!(d.insert.to_rows(), vec![ints(&[4, 5])]);
        assert_eq!(d.delete.to_rows(), vec![ints(&[2, 20])]);
    }

    #[test]
    fn join_refuses_deletes() {
        let (old, r_attrs, _) = fixture();
        let expr = Expr::join(
            Expr::base("R"),
            Expr::base("S"),
            JoinCondition::on(attr("R", "k"), attr("S", "k")),
        );
        let mut deltas = DeltaMap::new();
        deltas.insert(
            RelName::new("R"),
            Delta::new(
                Batch::empty(r_attrs.clone()),
                rows_to_batch(&r_attrs, vec![ints(&[1, 10])]),
            ),
        );
        let out = execute_delta(
            &expr,
            &old,
            &deltas,
            JoinAlgo::Hash,
            &ExecContext::default(),
        )
        .unwrap();
        assert!(out.is_none(), "join deltas with deletions must fall back");
    }

    #[test]
    fn spj_apply_cancels_deleted_rows() {
        let (old, r_attrs, _) = fixture();
        let expr = Expr::select(
            Expr::base("R"),
            Predicate::cmp(attr("R", "v"), CompareOp::Lt, 100),
        );
        let ctx = ExecContext::default();
        let view = execute_with_context(&expr, &old, JoinAlgo::NestedLoop, &ctx)
            .unwrap()
            .into_batch();
        let mut deltas = DeltaMap::new();
        deltas.insert(
            RelName::new("R"),
            Delta::new(
                rows_to_batch(&r_attrs, vec![ints(&[9, 90])]),
                rows_to_batch(&r_attrs, vec![ints(&[2, 20])]),
            ),
        );
        let new_view = refresh_view_delta(&view, &expr, &old, &deltas, JoinAlgo::NestedLoop, &ctx)
            .unwrap()
            .expect("σ view maintains deletes");
        assert_eq!(
            new_view.to_rows(),
            vec![ints(&[1, 10]), ints(&[1, 30]), ints(&[9, 90])]
        );
    }

    #[test]
    fn aggregate_fold_matches_recompute() {
        let (old, r_attrs, _) = fixture();
        let expr = Expr::aggregate(
            Expr::base("R"),
            [attr("R", "k")],
            [
                AggExpr::count_star("n"),
                AggExpr::new(AggFunc::Sum, attr("R", "v"), "total"),
                AggExpr::new(AggFunc::Max, attr("R", "v"), "top"),
            ],
        );
        let ctx = ExecContext::default();
        let view = execute_with_context(&expr, &old, JoinAlgo::NestedLoop, &ctx)
            .unwrap()
            .into_batch();
        let appended = vec![ints(&[1, 99]), ints(&[5, 1])];
        let mut deltas = DeltaMap::new();
        deltas.insert(RelName::new("R"), insert_only(&r_attrs, appended.clone()));
        let folded = refresh_view_delta(&view, &expr, &old, &deltas, JoinAlgo::NestedLoop, &ctx)
            .unwrap()
            .expect("count/sum/max fold inserts");

        let mut new = old.clone();
        new.table_mut("R").unwrap().extend_rows(appended);
        let want = execute_with_context(&expr, &new, JoinAlgo::NestedLoop, &ctx)
            .unwrap()
            .into_batch();
        let mut got_rows = folded.to_rows();
        got_rows.sort();
        let mut want_rows = want.to_rows();
        want_rows.sort();
        assert_eq!(got_rows, want_rows);
    }

    #[test]
    fn aggregate_fold_drops_emptied_groups_on_delete() {
        let (old, r_attrs, _) = fixture();
        let expr = Expr::aggregate(
            Expr::base("R"),
            [attr("R", "k")],
            [
                AggExpr::count_star("n"),
                AggExpr::new(AggFunc::Sum, attr("R", "v"), "total"),
            ],
        );
        let ctx = ExecContext::default();
        let view = execute_with_context(&expr, &old, JoinAlgo::NestedLoop, &ctx)
            .unwrap()
            .into_batch();
        // Delete the only row of group k=2: the group must vanish.
        let mut deltas = DeltaMap::new();
        deltas.insert(
            RelName::new("R"),
            Delta::new(
                Batch::empty(r_attrs.clone()),
                rows_to_batch(&r_attrs, vec![ints(&[2, 20])]),
            ),
        );
        let folded = refresh_view_delta(&view, &expr, &old, &deltas, JoinAlgo::NestedLoop, &ctx)
            .unwrap()
            .expect("count/sum fold deletes");
        assert_eq!(folded.to_rows(), vec![ints(&[1, 2, 40])]);
    }

    #[test]
    fn split_appends_slices_suffixes() {
        let (db, _, _) = fixture();
        let mut snapshot = BTreeMap::new();
        snapshot.insert(RelName::new("R"), 1usize);
        snapshot.insert(RelName::new("S"), 2usize);
        let (old, deltas) = split_appends(&db, &snapshot);
        assert_eq!(old.table("R").unwrap().len(), 1);
        assert_eq!(
            old.table("S").unwrap().len(),
            2,
            "unchanged S keeps all rows"
        );
        assert_eq!(deltas.len(), 1);
        let d = &deltas[&RelName::new("R")];
        assert_eq!(d.insert.to_rows(), vec![ints(&[2, 20]), ints(&[1, 30])]);
        assert_eq!(d.delete.rows(), 0);
    }
}
