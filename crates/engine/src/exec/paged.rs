//! View-based execution: one spine over resident and paged inputs.
//!
//! A [`View`] is either a fully resident [`Batch`] or a handle to a
//! [`PagedBatch`] whose pages live in a [`crate::storage::BufferPool`].
//! [`exec_view`] recurses over the plan exactly like the historical batch
//! spine did; every operator kernel matches on its input's residency:
//!
//! * **Resident** inputs delegate verbatim to the existing batch kernels
//!   ([`select_batch`], [`project_batch`], [`join_batch`],
//!   [`aggregate_batch`]) — resident execution is byte-for-byte the code
//!   that ran before this layer existed.
//! * **Paged** inputs stream. Selection pins one page per column at a
//!   time, masks and filters the chunk, and concatenates the per-page
//!   survivors with the representation-reproducing [`Column::concat`].
//!   Projection re-shares page handles without touching a page. Joins
//!   materialise only the key columns, reuse the shared index kernels, and
//!   gather payloads page-on-demand. Aggregation materialises only the
//!   grouping and aggregate-input columns.
//!
//! Because eviction never changes page *content* (see [`crate::storage`])
//! and the streaming kernels reproduce the resident kernels' output
//! representation exactly (pinned by `tests/engine_paged.rs`), results are
//! bit-identical at any pool budget, eviction order, or thread count.

use std::sync::Arc;

use mvdesign_algebra::{AggExpr, AttrRef, Expr, JoinCondition, Predicate};

use crate::batch::{Batch, Column};
use crate::storage::PagedBatch;
use crate::table::{Database, Table};

use super::morsel::run_tasks;
use super::{
    aggregate_batch, join_batch, join_indices, project_batch, select_batch, selection_mask_with,
    ExecContext, ExecError, JoinAlgo,
};

/// An operator input or output: resident columns or pool-backed pages.
#[derive(Debug, Clone)]
pub(crate) enum View {
    /// Fully in-memory columns.
    Resident(Batch),
    /// Page handles into a buffer pool.
    Paged(Arc<PagedBatch>),
}

impl View {
    /// The view of a base table: paged tables are shared by handle
    /// (zero-copy — no page is touched), resident tables by `Arc`'d
    /// columns.
    pub(crate) fn of_table(table: &Table) -> View {
        match table.paged() {
            Some(p) => View::Paged(Arc::clone(p)),
            None => View::Resident(table.batch().clone()),
        }
    }

    /// Number of rows.
    pub(crate) fn rows(&self) -> usize {
        match self {
            View::Resident(b) => b.rows(),
            View::Paged(p) => p.rows(),
        }
    }

    /// Index of an attribute in the header.
    pub(crate) fn index_of(&self, attr: &AttrRef) -> Option<usize> {
        match self {
            View::Resident(b) => b.index_of(attr),
            View::Paged(p) => p.index_of(attr),
        }
    }

    /// Materialises the view as one resident batch (representation-exact
    /// for paged data).
    pub(crate) fn into_batch(self) -> Batch {
        match self {
            View::Resident(b) => b,
            View::Paged(p) => p.to_batch(),
        }
    }

    /// Fully materialises one column — the index kernels (join keys,
    /// aggregation inputs) need contiguous slices.
    pub(crate) fn materialize_column(&self, i: usize) -> Arc<Column> {
        match self {
            View::Resident(b) => Arc::clone(&b.columns()[i]),
            View::Paged(p) => p.materialize_column(i),
        }
    }

    /// The rows `idx`, in order, as a resident batch — [`Batch::gather`]
    /// or its page-on-demand twin.
    pub(crate) fn gather(&self, idx: &[usize]) -> Batch {
        match self {
            View::Resident(b) => b.gather(idx),
            View::Paged(p) => p.gather(idx),
        }
    }
}

/// Recursive view evaluation — the engine's spine since the paged-storage
/// refactor.
pub(crate) fn exec_view(
    expr: &Arc<Expr>,
    db: &Database,
    algo: JoinAlgo,
    ctx: &ExecContext,
) -> Result<View, ExecError> {
    match &**expr {
        Expr::Base(name) => db
            .table(name.as_str())
            .map(View::of_table)
            .ok_or_else(|| ExecError::UnknownRelation(name.clone())),
        Expr::Select { input, predicate } => {
            let v = exec_view(input, db, algo, ctx)?;
            select_view(&v, predicate, ctx)
        }
        Expr::Project { input, attrs } => {
            let v = exec_view(input, db, algo, ctx)?;
            project_view(&v, attrs)
        }
        Expr::Join { left, right, on } => {
            let l = exec_view(left, db, algo, ctx)?;
            let r = exec_view(right, db, algo, ctx)?;
            join_view(&l, &r, on, algo, ctx)
        }
        Expr::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let v = exec_view(input, db, algo, ctx)?;
            aggregate_view(&v, group_by, aggs, ctx)
        }
    }
}

/// Stacks per-page result chunks into one resident batch.
/// [`Column::concat`] reproduces the representation the resident kernel's
/// single whole-batch gather builds: same-variant parts concatenate typed
/// (dictionary parts share their table), anything else re-canonicalises
/// through `Column::from_values` — exactly what a resident gather over a
/// `Mixed` column does.
fn vstack(attrs: &[AttrRef], chunks: &[Batch]) -> Batch {
    let columns = (0..attrs.len())
        .map(|c| {
            let parts: Vec<&Column> = chunks.iter().map(|b| b.column(c)).collect();
            Arc::new(Column::concat(&parts))
        })
        .collect();
    Batch::new(attrs.to_vec(), columns)
}

/// Selection over a view. Paged inputs stream: each page pins as a
/// zero-copy chunk, evaluates the (pure, per-row) predicate mask and
/// filters — one worker per page under a parallel context, with per-page
/// results concatenated in page (= row) order.
pub(crate) fn select_view(
    view: &View,
    predicate: &Predicate,
    ctx: &ExecContext,
) -> Result<View, ExecError> {
    match view {
        View::Resident(b) => select_batch(b, predicate, ctx).map(View::Resident),
        View::Paged(p) => {
            let pages = p.page_count();
            if pages == 0 {
                // Zero pages: rebuild the exact empty column variants.
                return Ok(View::Resident(p.to_batch()));
            }
            // Pages are the unit of fan-out, so each chunk evaluates its
            // mask single-threaded; the mask is bit-identical either way.
            let inner = ExecContext { threads: 1, ..*ctx };
            let parts = run_tasks(pages, ctx.effective_threads(), |pg| {
                let chunk = p.page_chunk(pg);
                let mask = selection_mask_with(predicate, &chunk, &inner)?;
                Ok(chunk.filter(&mask))
            });
            let mut chunks = Vec::with_capacity(pages);
            for part in parts {
                chunks.push(part?);
            }
            Ok(View::Resident(vstack(p.attrs(), &chunks)))
        }
    }
}

/// Projection over a view. Paged inputs re-share page handles — like the
/// resident kernel, O(#attrs) with no row movement, and the output stays
/// paged so downstream operators keep streaming.
pub(crate) fn project_view(view: &View, attrs: &[AttrRef]) -> Result<View, ExecError> {
    match view {
        View::Resident(b) => project_batch(b, attrs).map(View::Resident),
        View::Paged(p) => {
            let idx: Vec<usize> = attrs
                .iter()
                .map(|a| {
                    p.index_of(a)
                        .ok_or_else(|| ExecError::MissingAttr(a.clone()))
                })
                .collect::<Result<_, _>>()?;
            if idx.is_empty() {
                // A zero-column PagedBatch could not carry its row count
                // through later `Batch::new` calls — keep the degenerate
                // projection resident, where `select_columns` preserves it.
                return Ok(View::Resident(p.to_batch().select_columns(&idx)));
            }
            Ok(View::Paged(Arc::new(p.select_columns(&idx))))
        }
    }
}

/// Join over views. Two resident inputs delegate to the resident kernel;
/// otherwise only the key columns materialise (the index kernels need
/// contiguous slices), the shared [`join_indices`] dispatch produces the
/// match vectors, and both payloads gather page-on-demand.
pub(crate) fn join_view(
    l: &View,
    r: &View,
    on: &JoinCondition,
    algo: JoinAlgo,
    ctx: &ExecContext,
) -> Result<View, ExecError> {
    if let (View::Resident(lb), View::Resident(rb)) = (l, r) {
        return join_batch(lb, rb, on, algo, ctx).map(View::Resident);
    }
    // Same pair resolution as the resident kernel, so errors match.
    let mut pairs = Vec::with_capacity(on.pairs().len());
    for (a, b) in on.pairs() {
        let resolved = match (l.index_of(a), r.index_of(b)) {
            (Some(la), Some(rb)) => (la, rb),
            _ => match (l.index_of(b), r.index_of(a)) {
                (Some(lb), Some(ra)) => (lb, ra),
                _ => return Err(ExecError::MissingAttr(a.clone())),
            },
        };
        pairs.push(resolved);
    }
    let lkeys: Vec<Arc<Column>> = pairs
        .iter()
        .map(|&(li, _)| l.materialize_column(li))
        .collect();
    let rkeys: Vec<Arc<Column>> = pairs
        .iter()
        .map(|&(_, ri)| r.materialize_column(ri))
        .collect();
    let lcols: Vec<&Column> = lkeys.iter().map(Arc::as_ref).collect();
    let rcols: Vec<&Column> = rkeys.iter().map(Arc::as_ref).collect();
    let (lidx, ridx) = join_indices(l.rows(), r.rows(), &lcols, &rcols, algo, ctx)?;
    Ok(View::Resident(Batch::hstack(
        &l.gather(&lidx),
        &r.gather(&ridx),
    )))
}

/// Aggregation over a view. Paged inputs materialise only the columns the
/// aggregation reads — grouping keys and aggregate inputs — and then run
/// the resident kernel over that pruned batch: aggregation output is built
/// value-by-value from those columns, so pruning cannot change it.
pub(crate) fn aggregate_view(
    view: &View,
    group_by: &[AttrRef],
    aggs: &[AggExpr],
    ctx: &ExecContext,
) -> Result<View, ExecError> {
    match view {
        View::Resident(b) => aggregate_batch(b, group_by, aggs, ctx).map(View::Resident),
        View::Paged(p) => {
            // Resolve in the resident kernel's order (grouping attributes,
            // then aggregate inputs) so the surfaced MissingAttr matches.
            let mut needed: Vec<usize> = Vec::new();
            for a in group_by {
                let i = p
                    .index_of(a)
                    .ok_or_else(|| ExecError::MissingAttr(a.clone()))?;
                if !needed.contains(&i) {
                    needed.push(i);
                }
            }
            for agg in aggs {
                if let Some(attr) = &agg.input {
                    let i = p
                        .index_of(attr)
                        .ok_or_else(|| ExecError::MissingAttr(attr.clone()))?;
                    if !needed.contains(&i) {
                        needed.push(i);
                    }
                }
            }
            if needed.is_empty() && !p.attrs().is_empty() {
                // COUNT(*) with no grouping reads no column, but the pruned
                // batch still has to carry the row count — keep one column.
                needed.push(0);
            }
            let attrs: Vec<AttrRef> = needed.iter().map(|&i| p.attrs()[i].clone()).collect();
            let columns: Vec<Arc<Column>> =
                needed.iter().map(|&i| p.materialize_column(i)).collect();
            let pruned = Batch::new(attrs, columns);
            aggregate_batch(&pruned, group_by, aggs, ctx).map(View::Resident)
        }
    }
}
