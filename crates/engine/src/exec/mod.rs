//! Expression evaluation over in-memory tables — columnar batch execution.
//!
//! Every operator is a *batch kernel*: attribute offsets are resolved once
//! per operator (not once per row), predicates evaluate as vectorised
//! comparisons over typed columns, and joins produce index vectors that a
//! single typed [`Batch::gather`] turns into output columns. The
//! tuple-at-a-time implementation this replaced survives unchanged in
//! [`crate::row_reference`] as the differential baseline; both engines are
//! property-tested to produce identical bags.
//!
//! Two adaptive refinements sit on top of the kernels. Joins and aggregates
//! whose keys are integer-, date- or dictionary-backed run over raw `i64`
//! keys (dictionary codes translate between value tables once per batch, so
//! text-keyed joins never hash a string — see [`keys`]). Selections
//! short-circuit through *selection vectors*: [`selection_mask`] orders AND
//! conjuncts by estimated selectivity (dictionary cardinalities give `=` on
//! a text column a real distinct count; intersection commutes, so the order
//! is free), starts with full-width mask kernels and, once few enough rows
//! survive, evaluates the remaining conjuncts only at the surviving
//! indices ([`selection_mask_full`] keeps the always-full-width behaviour
//! as the differential baseline).
//!
//! On top of both sits morsel-driven parallelism (see [`morsel`]): an
//! [`ExecContext`] — default single-threaded — lets the hot kernels split
//! their input into fixed-size morsels and fan out across scoped worker
//! threads. Per-morsel partial results merge **in morsel order**, never in
//! completion order, so every parallel kernel is bit-identical to its
//! single-threaded twin regardless of thread count, morsel size or OS
//! scheduling.

pub mod delta;
mod keys;
mod morsel;
mod paged;

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use mvdesign_algebra::{
    AggExpr, AggFunc, AttrRef, CompareOp, Expr, JoinCondition, Predicate, RelName, Rhs, Value,
};

use crate::batch::{Batch, Column};
use crate::table::{Database, Table};

use keys::{
    group_cardinality_hint, pack_key, raw_ints, raw_keys, CompactKey, RawKeys,
    COMPACT_GROUP_KEY_COLS,
};
use morsel::{run_morsels, run_tasks};
pub use morsel::{ExecContext, DEFAULT_MORSEL_ROWS};
pub(crate) use paged::{aggregate_view, exec_view, join_view, project_view, select_view, View};

/// Errors raised while executing an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A base relation has no table in the database.
    UnknownRelation(RelName),
    /// An operator referenced an attribute its input does not carry.
    MissingAttr(AttrRef),
    /// A spill-partitioned operator could not read or write its spill file.
    Spill(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownRelation(r) => write!(f, "no table for relation `{r}`"),
            ExecError::MissingAttr(a) => write!(f, "input carries no attribute `{a}`"),
            ExecError::Spill(e) => write!(f, "operator spill failed: {e}"),
        }
    }
}

impl Error for ExecError {}

/// The physical join algorithm used by [`execute_with`].
///
/// All three produce identical bags; they differ in the I/O pattern the cost
/// models charge for (`PaperCostModel` assumes `NestedLoop`,
/// `NestedLoopCostModel`/`SortMergeCostModel` the alternatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgo {
    /// Naive nested loop — the paper's assumption.
    #[default]
    NestedLoop,
    /// Build a hash table on the right input, probe with the left.
    Hash,
    /// Sort both inputs on the join key and merge.
    SortMerge,
}

/// Evaluates an SPJ expression against a database, producing a result
/// table with bag semantics.
///
/// Selection is a linear scan, join is a naive nested loop, projection keeps
/// duplicates — exactly the operator algorithms the paper's cost model
/// assumes, executed as columnar batch kernels. Use [`execute_with`] to pick
/// a different join algorithm, or [`execute_with_context`] to run the hot
/// kernels across cores.
///
/// # Errors
///
/// Returns [`ExecError`] when a base relation is missing from the database
/// or an attribute reference cannot be resolved.
pub fn execute(expr: &Arc<Expr>, db: &Database) -> Result<Table, ExecError> {
    execute_with(expr, db, JoinAlgo::NestedLoop)
}

/// Like [`execute`], with an explicit physical join algorithm.
///
/// # Errors
///
/// Returns [`ExecError`] when a base relation is missing from the database
/// or an attribute reference cannot be resolved.
pub fn execute_with(expr: &Arc<Expr>, db: &Database, algo: JoinAlgo) -> Result<Table, ExecError> {
    execute_with_context(expr, db, algo, &ExecContext::default())
}

/// Like [`execute_with`], with explicit execution knobs: thread count and
/// morsel size (see [`ExecContext`]). The result is bit-identical to
/// [`execute_with`] for every context — parallel kernels merge per-morsel
/// partials in morsel order, so only wall-clock changes.
///
/// # Errors
///
/// Returns [`ExecError`] when a base relation is missing from the database
/// or an attribute reference cannot be resolved.
pub fn execute_with_context(
    expr: &Arc<Expr>,
    db: &Database,
    algo: JoinAlgo,
    ctx: &ExecContext,
) -> Result<Table, ExecError> {
    match &**expr {
        Expr::Base(name) => db
            .table(name.as_str())
            .cloned()
            .ok_or_else(|| ExecError::UnknownRelation(name.clone())),
        _ => {
            let view = exec_view(expr, db, algo, ctx)?;
            Ok(Table::from_batch(op_label(expr), view.into_batch()))
        }
    }
}

/// The operator glyph used as the result-table name (matches the paper's
/// notation and the row engine's historical output).
pub(crate) fn op_label(expr: &Expr) -> &'static str {
    match expr {
        Expr::Base(_) => "scan",
        Expr::Select { .. } => "σ",
        Expr::Project { .. } => "π",
        Expr::Join { .. } => "⋈",
        Expr::Aggregate { .. } => "γ",
    }
}

/// Selection kernel: one vectorised predicate pass, one gather.
pub(crate) fn select_batch(
    batch: &Batch,
    predicate: &Predicate,
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let mask = selection_mask_with(predicate, batch, ctx)?;
    Ok(batch.filter(&mask))
}

/// Projection kernel: resolves attribute offsets once and re-shares the
/// picked columns — O(#attrs), no row movement at all.
pub(crate) fn project_batch(batch: &Batch, attrs: &[AttrRef]) -> Result<Batch, ExecError> {
    let idx: Vec<usize> = attrs
        .iter()
        .map(|a| {
            batch
                .index_of(a)
                .ok_or_else(|| ExecError::MissingAttr(a.clone()))
        })
        .collect::<Result<_, _>>()?;
    Ok(batch.select_columns(&idx))
}

/// Join kernel: resolves the condition to column offsets once, produces
/// matching (left, right) index vectors under the requested algorithm, then
/// gathers both sides and glues them.
pub(crate) fn join_batch(
    l: &Batch,
    r: &Batch,
    on: &JoinCondition,
    algo: JoinAlgo,
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    // Resolve each condition pair to (left index, right index).
    let mut pairs = Vec::with_capacity(on.pairs().len());
    for (a, b) in on.pairs() {
        let resolved = match (l.index_of(a), r.index_of(b)) {
            (Some(la), Some(rb)) => (la, rb),
            _ => match (l.index_of(b), r.index_of(a)) {
                (Some(lb), Some(ra)) => (lb, ra),
                _ => return Err(ExecError::MissingAttr(a.clone())),
            },
        };
        pairs.push(resolved);
    }
    let lcols: Vec<&Column> = pairs.iter().map(|&(li, _)| l.column(li)).collect();
    let rcols: Vec<&Column> = pairs.iter().map(|&(_, ri)| r.column(ri)).collect();
    let (lidx, ridx) = join_indices(l.rows(), r.rows(), &lcols, &rcols, algo, ctx)?;
    Ok(Batch::hstack(&l.gather(&lidx), &r.gather(&ridx)))
}

/// Dispatches the resolved key columns to the requested join algorithm.
/// Shared by the resident kernel ([`join_batch`]) and the paged view kernel,
/// so both sides of the differential battery run the very same index code.
fn join_indices(
    ln: usize,
    rn: usize,
    lcols: &[&Column],
    rcols: &[&Column],
    algo: JoinAlgo,
    ctx: &ExecContext,
) -> Result<(Vec<usize>, Vec<usize>), ExecError> {
    match algo {
        JoinAlgo::NestedLoop => Ok(nested_loop_indices(ln, rn, lcols, rcols, ctx)),
        JoinAlgo::Hash => hash_indices(ln, rn, lcols, rcols, ctx),
        // Sort-merge stays single-threaded: the sort dominates its cost and
        // a deterministic parallel merge would need a different (range
        // partitioned) decomposition than morsels provide.
        JoinAlgo::SortMerge => Ok(sort_merge_indices(ln, rn, lcols, rcols)),
    }
}

/// Concatenates per-morsel (left, right) index vectors in morsel order —
/// the deterministic merge every parallel join variant shares.
fn merge_index_morsels(parts: Vec<(Vec<usize>, Vec<usize>)>) -> (Vec<usize>, Vec<usize>) {
    let total: usize = parts.iter().map(|(l, _)| l.len()).sum();
    let mut lidx = Vec::with_capacity(total);
    let mut ridx = Vec::with_capacity(total);
    for (l, r) in parts {
        lidx.extend(l);
        ridx.extend(r);
    }
    (lidx, ridx)
}

/// Nested loop over row indices; the single-key integer/dictionary case
/// runs over raw `&[i64]` slices. Under a parallel context the left side
/// splits into morsels (each worker scans the whole right side), and the
/// per-morsel index vectors concatenate in morsel order — identical output
/// to the sequential loop.
fn nested_loop_indices(
    ln: usize,
    rn: usize,
    lcols: &[&Column],
    rcols: &[&Column],
    ctx: &ExecContext,
) -> (Vec<usize>, Vec<usize>) {
    if let [(lk, rk)] = raw_keys(lcols, rcols).as_slice() {
        let (lk, rk) = (lk.as_slice(), rk.as_slice());
        let scan = |range: Range<usize>| {
            let mut lidx = Vec::new();
            let mut ridx = Vec::new();
            for i in range {
                let a = lk[i];
                for (j, b) in rk.iter().enumerate() {
                    if a == *b {
                        lidx.push(i);
                        ridx.push(j);
                    }
                }
            }
            (lidx, ridx)
        };
        if ctx.is_parallel(ln) {
            return merge_index_morsels(run_morsels(ln, ctx, scan));
        }
        return scan(0..ln);
    }
    let scan = |range: Range<usize>| {
        let mut lidx = Vec::new();
        let mut ridx = Vec::new();
        for i in range {
            for j in 0..rn {
                if lcols.iter().zip(rcols).all(|(lc, rc)| lc.eq_at(i, rc, j)) {
                    lidx.push(i);
                    ridx.push(j);
                }
            }
        }
        (lidx, ridx)
    };
    if ctx.is_parallel(ln) {
        return merge_index_morsels(run_morsels(ln, ctx, scan));
    }
    scan(0..ln)
}

/// Hash join over row indices: build on the right, probe with the left. A
/// cross join hashes everything under the empty key, degenerating
/// gracefully. The single-key integer/dictionary case hashes raw `i64`s —
/// text-keyed joins over dictionary columns never hash a string — and is
/// the path that goes partitioned-parallel under a parallel context, or
/// spill-partitioned (Grace) when the key state exceeds the memory budget.
fn hash_indices(
    ln: usize,
    rn: usize,
    lcols: &[&Column],
    rcols: &[&Column],
    ctx: &ExecContext,
) -> Result<(Vec<usize>, Vec<usize>), ExecError> {
    use std::collections::HashMap;
    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    if let [(lk, rk)] = raw_keys(lcols, rcols).as_slice() {
        let (lk, rk) = (lk.as_slice(), rk.as_slice());
        // The spill check comes before the parallel check: under a small
        // budget the join partitions to disk whether or not it would also
        // have fanned out, so low-memory reruns exercise the Grace path at
        // every thread count.
        if spill_needed(ctx, (ln + rn) * JOIN_RECORD_BYTES) {
            return grace_hash_join(lk, rk, ctx);
        }
        if ctx.is_parallel(ln.max(rn)) {
            return Ok(partitioned_hash_join(lk, rk, ctx));
        }
        let mut built: HashMap<i64, Vec<usize>> = HashMap::new();
        for (j, b) in rk.iter().enumerate() {
            built.entry(*b).or_default().push(j);
        }
        for (i, a) in lk.iter().enumerate() {
            if let Some(matches) = built.get(a) {
                for &j in matches {
                    lidx.push(i);
                    ridx.push(j);
                }
            }
        }
        return Ok((lidx, ridx));
    }
    let mut built: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for j in 0..rn {
        let key: Vec<Value> = rcols.iter().map(|c| c.value(j)).collect();
        built.entry(key).or_default().push(j);
    }
    for i in 0..ln {
        let key: Vec<Value> = lcols.iter().map(|c| c.value(i)).collect();
        if let Some(matches) = built.get(&key) {
            for &j in matches {
                lidx.push(i);
                ridx.push(j);
            }
        }
    }
    Ok((lidx, ridx))
}

/// Bytes per spilled join record: a raw `i64` key plus a `u64` row index.
const JOIN_RECORD_BYTES: usize = 16;

/// Bytes per spilled aggregation record: a packed [`CompactKey`] plus a
/// `u64` row index.
const AGG_RECORD_BYTES: usize = std::mem::size_of::<CompactKey>() + 8;

/// Spilled partition runs are flushed in buffers of this many bytes, so
/// scatter memory stays bounded by `partitions × SPILL_RUN_BYTES` no matter
/// how large the inputs are.
const SPILL_RUN_BYTES: usize = 64 * 1024;

/// Whether an operator about to hold `bytes` of transient state must switch
/// to its spill-partitioned variant. The threshold is half the budget — the
/// operator shares memory with the input pages it is reading.
fn spill_needed(ctx: &ExecContext, bytes: usize) -> bool {
    ctx.mem_budget.is_some_and(|budget| bytes > budget / 2)
}

/// Partition count for a spilling operator: enough budget-sized chunks to
/// cover the state, rounded to a power of two so [`partition_of`]'s top-bit
/// radix applies, clamped to keep per-partition buffers sane. A pure
/// function of sizes — never of thread count — though nothing downstream
/// depends on that: the order-restoring merges make results identical at
/// any partition count.
fn spill_partitions(state_bytes: usize, ctx: &ExecContext) -> usize {
    let budget = ctx.mem_budget.unwrap_or(state_bytes).max(1);
    state_bytes
        .div_ceil(budget)
        .next_power_of_two()
        .clamp(2, 256)
}

fn spill_error(e: std::io::Error) -> ExecError {
    ExecError::Spill(e.to_string())
}

/// Scatters `(key, row)` records into per-partition runs on `store`, one
/// buffered sequential pass. Each record is [`JOIN_RECORD_BYTES`]: key as
/// `i64` LE then row index as `u64` LE. Because the pass is sequential,
/// every partition's concatenated runs hold its rows in ascending row
/// order — the property the order-restoring merges rely on.
fn scatter_raw_keys(
    keys: &[i64],
    store: &crate::storage::SpillStore,
    parts: usize,
    shift: u32,
) -> Result<Vec<Vec<(u64, u64)>>, ExecError> {
    let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); parts];
    let mut runs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); parts];
    for (i, k) in keys.iter().enumerate() {
        let p = partition_of(*k, shift);
        bufs[p].extend_from_slice(&k.to_le_bytes());
        bufs[p].extend_from_slice(&(i as u64).to_le_bytes());
        if bufs[p].len() >= SPILL_RUN_BYTES {
            runs[p].push(store.write(&bufs[p]).map_err(spill_error)?);
            bufs[p].clear();
        }
    }
    for (p, buf) in bufs.iter().enumerate() {
        if !buf.is_empty() {
            runs[p].push(store.write(buf).map_err(spill_error)?);
        }
    }
    Ok(runs)
}

/// Reads one partition's `(key, row)` records back in run (= row) order.
fn read_raw_records(
    store: &crate::storage::SpillStore,
    runs: &[(u64, u64)],
) -> Result<Vec<(i64, usize)>, ExecError> {
    let mut records = Vec::new();
    for &(offset, len) in runs {
        let bytes = store.read(offset, len).map_err(spill_error)?;
        for rec in bytes.chunks_exact(JOIN_RECORD_BYTES) {
            let key = i64::from_le_bytes(rec[..8].try_into().expect("8-byte key"));
            let row = u64::from_le_bytes(rec[8..].try_into().expect("8-byte row index"));
            records.push((key, row as usize));
        }
    }
    Ok(records)
}

/// Grace (spill-partitioned) hash join on raw `i64` keys, used when the
/// key state would blow the memory budget.
///
/// Both sides scatter `(key, row)` records into radix partitions on an
/// operator-local [`crate::storage::SpillStore`] file; each partition is
/// then small enough to build and probe in memory on its own. A key lives
/// in exactly one partition, so per-partition output pairs are the
/// sequential join's pairs for that partition's probe rows, with per-key
/// build matches ascending in `j`. The final merge walks probe rows
/// `i = 0..ln` and drains partition `partition_of(lk[i])`'s pair cursor
/// while it still points at `i` — reproducing the sequential probe order
/// bit-for-bit at any partition count.
fn grace_hash_join(
    lk: &[i64],
    rk: &[i64],
    ctx: &ExecContext,
) -> Result<(Vec<usize>, Vec<usize>), ExecError> {
    use std::collections::HashMap;
    let parts = spill_partitions((lk.len() + rk.len()) * JOIN_RECORD_BYTES, ctx);
    let shift = 64 - parts.trailing_zeros();
    let store = crate::storage::SpillStore::create().map_err(spill_error)?;
    let right_runs = scatter_raw_keys(rk, &store, parts, shift)?;
    let left_runs = scatter_raw_keys(lk, &store, parts, shift)?;

    let mut part_pairs: Vec<std::vec::IntoIter<(usize, usize)>> = Vec::with_capacity(parts);
    for p in 0..parts {
        let mut built: HashMap<i64, Vec<usize>> = HashMap::new();
        for (key, j) in read_raw_records(&store, &right_runs[p])? {
            built.entry(key).or_default().push(j);
        }
        let mut pairs = Vec::new();
        for (key, i) in read_raw_records(&store, &left_runs[p])? {
            if let Some(matches) = built.get(&key) {
                for &j in matches {
                    pairs.push((i, j));
                }
            }
        }
        part_pairs.push(pairs.into_iter());
    }

    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    let mut heads: Vec<Option<(usize, usize)>> =
        part_pairs.iter_mut().map(Iterator::next).collect();
    for (i, k) in lk.iter().enumerate() {
        let p = partition_of(*k, shift);
        while let Some((pi, pj)) = heads[p] {
            if pi != i {
                break;
            }
            lidx.push(pi);
            ridx.push(pj);
            heads[p] = part_pairs[p].next();
        }
    }
    Ok((lidx, ridx))
}

/// Radix partition of a raw key: a multiplicative (Fibonacci) hash keeps
/// the top bits well-mixed, and the top `log2(partitions)` bits pick the
/// partition.
fn partition_of(key: i64, shift: u32) -> usize {
    (((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> shift) as usize
}

/// Partitioned parallel hash join on raw `i64` keys.
///
/// Build: right rows scatter into radix partitions (one sequential pass, so
/// each partition's row list is ascending in `j`), then one worker per
/// partition builds that partition's hash table — every key lives in
/// exactly one partition, so each key's match list is ascending in `j`,
/// exactly as the sequential build produces. Probe: left rows split into
/// morsels, each worker emits `(i, j)` pairs in left order against the
/// partition tables, and the per-morsel vectors concatenate in morsel
/// order. Output is therefore bit-identical to the sequential hash join
/// for every partition count, thread count and interleaving.
fn partitioned_hash_join(lk: &[i64], rk: &[i64], ctx: &ExecContext) -> (Vec<usize>, Vec<usize>) {
    use std::collections::HashMap;
    let workers = ctx.effective_threads();
    let parts = (workers * 2).next_power_of_two().clamp(2, 64);
    let shift = 64 - parts.trailing_zeros();
    let mut part_rows: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for (j, b) in rk.iter().enumerate() {
        part_rows[partition_of(*b, shift)].push(j);
    }
    let tables: Vec<HashMap<i64, Vec<usize>>> = run_tasks(parts, workers, |p| {
        let mut table: HashMap<i64, Vec<usize>> = HashMap::with_capacity(part_rows[p].len());
        for &j in &part_rows[p] {
            table.entry(rk[j]).or_default().push(j);
        }
        table
    });
    merge_index_morsels(run_morsels(lk.len(), ctx, |range| {
        let mut lidx = Vec::new();
        let mut ridx = Vec::new();
        for i in range {
            let a = lk[i];
            if let Some(matches) = tables[partition_of(a, shift)].get(&a) {
                for &j in matches {
                    lidx.push(i);
                    ridx.push(j);
                }
            }
        }
        (lidx, ridx)
    }))
}

/// Sort-merge join over row indices: sorts index permutations of both sides
/// by their key columns, then merges group × group.
fn sort_merge_indices(
    ln: usize,
    rn: usize,
    lcols: &[&Column],
    rcols: &[&Column],
) -> (Vec<usize>, Vec<usize>) {
    if lcols.is_empty() {
        // No key to sort on: fall back to the nested loop (cross product).
        return nested_loop_indices(ln, rn, lcols, rcols, &ExecContext::default());
    }
    if let [(lk, rk)] = raw_keys(lcols, rcols).as_slice() {
        // Raw fast path: sort and merge on `i64` keys. For dictionary
        // columns these are translated codes — code order differs from
        // string order, but the merge only needs *some* total order with
        // the same equality classes, and code equality is value equality.
        return sort_merge_raw(lk.as_slice(), rk.as_slice());
    }
    let key_cmp = |xcols: &[&Column], x: usize, ycols: &[&Column], y: usize| {
        xcols
            .iter()
            .zip(ycols)
            .map(|(xc, yc)| xc.cmp_at(x, yc, y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    };
    let mut ls: Vec<usize> = (0..ln).collect();
    let mut rs: Vec<usize> = (0..rn).collect();
    ls.sort_by(|&a, &b| key_cmp(lcols, a, lcols, b));
    rs.sort_by(|&a, &b| key_cmp(rcols, a, rcols, b));

    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < ls.len() && j < rs.len() {
        match key_cmp(lcols, ls[i], rcols, rs[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the full group × group block.
                let gi_end = (i..ls.len())
                    .take_while(|&x| key_cmp(lcols, ls[x], lcols, ls[i]).is_eq())
                    .last()
                    .expect("group is non-empty")
                    + 1;
                let gj_end = (j..rs.len())
                    .take_while(|&x| key_cmp(rcols, rs[x], rcols, rs[j]).is_eq())
                    .last()
                    .expect("group is non-empty")
                    + 1;
                for &li in &ls[i..gi_end] {
                    for &rj in &rs[j..gj_end] {
                        lidx.push(li);
                        ridx.push(rj);
                    }
                }
                i = gi_end;
                j = gj_end;
            }
        }
    }
    (lidx, ridx)
}

/// Single-key sort-merge over raw `i64` keys: sorts index permutations of
/// both sides, then merges group × group.
fn sort_merge_raw(lk: &[i64], rk: &[i64]) -> (Vec<usize>, Vec<usize>) {
    let mut ls: Vec<usize> = (0..lk.len()).collect();
    let mut rs: Vec<usize> = (0..rk.len()).collect();
    ls.sort_by_key(|&i| lk[i]);
    rs.sort_by_key(|&j| rk[j]);
    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < ls.len() && j < rs.len() {
        let (a, b) = (lk[ls[i]], rk[rs[j]]);
        match a.cmp(&b) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let gi_end = i + ls[i..].iter().take_while(|&&x| lk[x] == a).count();
                let gj_end = j + rs[j..].iter().take_while(|&&x| rk[x] == b).count();
                for &li in &ls[i..gi_end] {
                    for &rj in &rs[j..gj_end] {
                        lidx.push(li);
                        ridx.push(rj);
                    }
                }
                i = gi_end;
                j = gj_end;
            }
        }
    }
    (lidx, ridx)
}

/// Hash-aggregation kernel: offsets resolved once, keys and accumulator
/// feeds read straight from the columns, output built column-wise.
pub(crate) fn aggregate_batch(
    batch: &Batch,
    group_by: &[AttrRef],
    aggs: &[AggExpr],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let gcols: Vec<&Column> = group_by
        .iter()
        .map(|a| {
            batch
                .index_of(a)
                .map(|i| batch.column(i))
                .ok_or_else(|| ExecError::MissingAttr(a.clone()))
        })
        .collect::<Result<_, _>>()?;
    let acols: Vec<Option<&Column>> = aggs
        .iter()
        .map(|a| match &a.input {
            Some(attr) => batch
                .index_of(attr)
                .map(|i| Some(batch.column(i)))
                .ok_or_else(|| ExecError::MissingAttr(attr.clone())),
            None => Ok(None),
        })
        .collect::<Result<_, _>>()?;

    if !gcols.is_empty() && gcols.len() <= COMPACT_GROUP_KEY_COLS {
        if let Some(keys) = gcols
            .iter()
            .map(|c| raw_ints(c))
            .collect::<Option<Vec<_>>>()
        {
            return aggregate_compact(batch.rows(), group_by, aggs, &gcols, &acols, &keys, ctx);
        }
    }

    // BTreeMap keeps group output deterministic (sorted by key), matching
    // the row reference.
    let mut groups: BTreeMap<Vec<Value>, Vec<AggState>> = BTreeMap::new();
    for i in 0..batch.rows() {
        let key: Vec<Value> = gcols.iter().map(|c| c.value(i)).collect();
        let states = groups
            .entry(key)
            .or_insert_with(|| vec![AggState::default(); aggs.len()]);
        for (state, col) in states.iter_mut().zip(&acols) {
            state.feed(col.map(|c| c.value(i)));
        }
    }

    let mut attrs = group_by.to_vec();
    attrs.extend(aggs.iter().map(|a| a.output_attr()));
    let mut columns: Vec<Column> = attrs.iter().map(|_| Column::empty()).collect();
    let n_groups = groups.len();
    for (key, states) in groups {
        for (col, v) in columns.iter_mut().zip(key) {
            col.push(v);
        }
        for ((col, state), agg) in columns[group_by.len()..].iter_mut().zip(&states).zip(aggs) {
            col.push(state.finish(agg.func));
        }
    }
    let columns = columns.into_iter().map(Arc::new).collect();
    let out = Batch::new(attrs, columns);
    debug_assert_eq!(out.rows(), n_groups);
    Ok(out)
}

/// The hash-build of one row range: groups in first-appearance order, with
/// the packed key, representative row and accumulator states per group.
struct GroupBuild {
    keys: Vec<CompactKey>,
    reps: Vec<usize>,
    states: Vec<Vec<AggState>>,
}

/// Builds group states for `range`'s rows. Groups come out in
/// first-appearance order within the range; `reps` holds each group's first
/// row index (absolute, not range-relative).
fn build_groups(
    range: Range<usize>,
    key_slices: &[&[i64]],
    acols: &[Option<&Column>],
    n_aggs: usize,
    capacity: usize,
) -> GroupBuild {
    use std::collections::HashMap;
    let mut map: HashMap<CompactKey, usize> = HashMap::with_capacity(capacity);
    let mut build = GroupBuild {
        keys: Vec::new(),
        reps: Vec::new(),
        states: Vec::new(),
    };
    for i in range {
        let key = pack_key(key_slices, i);
        let next = build.states.len();
        let gid = *map.entry(key).or_insert(next);
        if gid == next {
            build.keys.push(key);
            build.reps.push(i);
            build.states.push(vec![AggState::default(); n_aggs]);
        }
        for (state, col) in build.states[gid].iter_mut().zip(acols) {
            state.feed(col.map(|c| c.value(i)));
        }
    }
    build
}

/// Merges per-morsel group builds **in morsel order**. Because morsel order
/// is row order, a group's first appearance across the merged builds is its
/// globally first row — so the merged `reps` and group order are exactly
/// what a single sequential build over all rows produces, and state merging
/// ([`AggState::merge`]) folds later-row partials into earlier-row partials
/// just as sequential `feed`s would.
fn merge_group_builds(parts: Vec<GroupBuild>, capacity: usize) -> GroupBuild {
    use std::collections::HashMap;
    let mut map: HashMap<CompactKey, usize> = HashMap::with_capacity(capacity);
    let mut merged = GroupBuild {
        keys: Vec::new(),
        reps: Vec::new(),
        states: Vec::new(),
    };
    for part in parts {
        for ((key, rep), states) in part.keys.into_iter().zip(part.reps).zip(part.states) {
            let next = merged.states.len();
            let gid = *map.entry(key).or_insert(next);
            if gid == next {
                merged.keys.push(key);
                merged.reps.push(rep);
                merged.states.push(states);
            } else {
                for (dst, src) in merged.states[gid].iter_mut().zip(&states) {
                    dst.merge(src);
                }
            }
        }
    }
    merged
}

/// Hash-aggregation fast path for int/date/dict group keys: a fixed-width
/// `[i64; 4]` key padded with `i64::MIN` (every key in one aggregation
/// shares a width, so padding never collides), a hash map pre-sized from
/// [`group_cardinality_hint`], and flat per-group state vectors. Output
/// groups are sorted by decoded key order afterwards, matching the
/// `BTreeMap` slow path and the row reference exactly. Under a parallel
/// context each worker builds groups for its morsels locally and the
/// partials merge in morsel order — bit-identical output either way.
#[allow(clippy::too_many_arguments)]
fn aggregate_compact(
    rows: usize,
    group_by: &[AttrRef],
    aggs: &[AggExpr],
    gcols: &[&Column],
    acols: &[Option<&Column>],
    keys: &[RawKeys<'_>],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let key_slices: Vec<&[i64]> = keys.iter().map(RawKeys::as_slice).collect();
    // The spill check comes before the parallel check, mirroring the hash
    // join: under a small budget the aggregation partitions its key records
    // to disk at every thread count.
    if spill_needed(ctx, rows * AGG_RECORD_BYTES) {
        return aggregate_spill(rows, group_by, aggs, gcols, acols, &key_slices, ctx);
    }
    let hint = group_cardinality_hint(gcols, rows);
    let GroupBuild { reps, states, .. } = if ctx.is_parallel(rows) {
        let morsel_hint = hint.min(ctx.morsel());
        merge_group_builds(
            run_morsels(rows, ctx, |range| {
                build_groups(range, &key_slices, acols, aggs.len(), morsel_hint)
            }),
            hint,
        )
    } else {
        build_groups(0..rows, &key_slices, acols, aggs.len(), hint)
    };
    Ok(finalize_groups(group_by, aggs, gcols, &reps, &states))
}

/// Sorts finished groups by decoded key order and lays the result out
/// column-wise — the shared tail of the in-memory and spilled compact
/// aggregation paths. Distinct groups have distinct decoded keys (raw keys
/// are values or dictionary codes, and dictionary tables hold unique
/// strings), so the sort has a unique total order and the output does not
/// depend on which path — or which partitioning — produced the groups.
fn finalize_groups(
    group_by: &[AttrRef],
    aggs: &[AggExpr],
    gcols: &[&Column],
    reps: &[usize],
    states: &[Vec<AggState>],
) -> Batch {
    let mut order: Vec<usize> = (0..reps.len()).collect();
    order.sort_by(|&x, &y| {
        gcols
            .iter()
            .map(|c| c.cmp_at(reps[x], c, reps[y]))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut attrs = group_by.to_vec();
    attrs.extend(aggs.iter().map(|a| a.output_attr()));
    let mut columns: Vec<Column> = attrs.iter().map(|_| Column::empty()).collect();
    for &g in &order {
        for (col, gc) in columns.iter_mut().zip(gcols) {
            col.push(gc.value(reps[g]));
        }
        for ((col, state), agg) in columns[group_by.len()..]
            .iter_mut()
            .zip(&states[g])
            .zip(aggs)
        {
            col.push(state.finish(agg.func));
        }
    }
    Batch::new(attrs, columns.into_iter().map(Arc::new).collect())
}

/// Mixes a packed group key down to one `i64` for radix partitioning.
fn fold_compact_key(key: &CompactKey) -> i64 {
    let mut h: i64 = 0;
    for lane in key {
        h = h.wrapping_mul(0x0100_0000_01B3).wrapping_add(*lane);
    }
    h
}

/// Spill-partitioned hash aggregation, used when the packed-key record
/// state would blow the memory budget.
///
/// One buffered sequential pass scatters `(packed key, row)` records into
/// radix partitions on an operator-local spill file, so each partition's
/// records come back in ascending row order. Every group key lives in
/// exactly one partition, so building that partition's groups by feeding
/// `acols` at the stored row indices produces, for each group, exactly the
/// states and first-row representative the single in-memory build produces.
/// The concatenated per-partition groups then share [`finalize_groups`]'s
/// key-order sort, which makes the output identical to the in-memory path
/// at any partition count.
#[allow(clippy::too_many_arguments)]
fn aggregate_spill(
    rows: usize,
    group_by: &[AttrRef],
    aggs: &[AggExpr],
    gcols: &[&Column],
    acols: &[Option<&Column>],
    key_slices: &[&[i64]],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    use std::collections::HashMap;
    let parts = spill_partitions(rows * AGG_RECORD_BYTES, ctx);
    let shift = 64 - parts.trailing_zeros();
    let store = crate::storage::SpillStore::create().map_err(spill_error)?;

    let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); parts];
    let mut runs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); parts];
    for i in 0..rows {
        let key = pack_key(key_slices, i);
        let p = partition_of(fold_compact_key(&key), shift);
        for lane in &key {
            bufs[p].extend_from_slice(&lane.to_le_bytes());
        }
        bufs[p].extend_from_slice(&(i as u64).to_le_bytes());
        if bufs[p].len() >= SPILL_RUN_BYTES {
            runs[p].push(store.write(&bufs[p]).map_err(spill_error)?);
            bufs[p].clear();
        }
    }
    for (p, buf) in bufs.iter().enumerate() {
        if !buf.is_empty() {
            runs[p].push(store.write(buf).map_err(spill_error)?);
        }
    }

    let mut reps: Vec<usize> = Vec::new();
    let mut states: Vec<Vec<AggState>> = Vec::new();
    for part_runs in runs.iter().take(parts) {
        let mut map: HashMap<CompactKey, usize> = HashMap::new();
        for &(offset, len) in part_runs {
            let bytes = store.read(offset, len).map_err(spill_error)?;
            for rec in bytes.chunks_exact(AGG_RECORD_BYTES) {
                let mut key = CompactKey::default();
                for (lane, chunk) in key.iter_mut().zip(rec.chunks_exact(8)) {
                    *lane = i64::from_le_bytes(chunk.try_into().expect("8-byte lane"));
                }
                let i =
                    u64::from_le_bytes(rec[AGG_RECORD_BYTES - 8..].try_into().expect("8-byte row"))
                        as usize;
                let next = states.len();
                let gid = *map.entry(key).or_insert(next);
                if gid == next {
                    reps.push(i);
                    states.push(vec![AggState::default(); aggs.len()]);
                }
                for (state, col) in states[gid].iter_mut().zip(acols) {
                    state.feed(col.map(|c| c.value(i)));
                }
            }
        }
    }
    Ok(finalize_groups(group_by, aggs, gcols, &reps, &states))
}

/// Computes `definition` and stores the result under `name`, so later
/// queries rewritten against the view (see `mvdesign-core`'s `ViewCatalog`)
/// can read it as a base table. The stored table keeps the definition's
/// qualified attributes and its columnar layout — no row materialization.
///
/// # Errors
///
/// Propagates [`ExecError`] from evaluating the definition.
pub fn materialize_view(
    name: impl Into<RelName>,
    definition: &Arc<Expr>,
    db: &mut Database,
) -> Result<(), ExecError> {
    materialize_view_with(name, definition, db, &ExecContext::default())
}

/// Like [`materialize_view`], with explicit execution knobs. The stored
/// view is bit-identical for every context — only refresh wall-clock
/// changes.
///
/// # Errors
///
/// Propagates [`ExecError`] from evaluating the definition.
pub fn materialize_view_with(
    name: impl Into<RelName>,
    definition: &Arc<Expr>,
    db: &mut Database,
    ctx: &ExecContext,
) -> Result<(), ExecError> {
    let result = execute_with_context(definition, db, JoinAlgo::NestedLoop, ctx)?;
    db.insert_table(Table::from_batch(name, result.into_batch()));
    Ok(())
}

/// Batches below this size never switch to selection-vector evaluation —
/// the bookkeeping costs more than the full-width kernels.
const SELECTION_VECTOR_MIN_ROWS: usize = 64;

/// Density denominator: evaluation switches to survivor indices once fewer
/// than `rows / SELECTION_VECTOR_DENSITY_DEN` rows remain undecided.
const SELECTION_VECTOR_DENSITY_DEN: usize = 8;

/// Evaluates `predicate` over the whole batch into a keep-mask, with
/// selection-vector short-circuiting: AND conjuncts are ordered
/// most-selective-first (estimates only — results are order-free), start
/// as full-width vectorised mask kernels, and once the surviving density
/// drops below `1/8` (on batches of at least 64 rows) the remaining
/// conjuncts evaluate only over the surviving row indices.
/// Disjunctions are handled symmetrically — once most rows are already
/// accepted, remaining disjuncts evaluate only over the still-undecided
/// rows. Predicates are pure, so the result is bit-identical to
/// [`selection_mask_full`] (pinned by a regression test).
///
/// # Errors
///
/// Returns [`ExecError::MissingAttr`] when the predicate references an
/// attribute the batch does not carry.
pub fn selection_mask(predicate: &Predicate, batch: &Batch) -> Result<Vec<bool>, ExecError> {
    selection_mask_with(predicate, batch, &ExecContext::default())
}

/// Like [`selection_mask`], with explicit execution knobs. Under a parallel
/// context the batch splits into morsels, each morsel evaluates the
/// adaptive mask independently (short-circuiting within the morsel), and
/// the per-morsel masks concatenate in morsel order. Predicates are pure
/// per-row functions, so the mask is bit-identical for every context.
///
/// # Errors
///
/// Returns [`ExecError::MissingAttr`] when the predicate references an
/// attribute the batch does not carry.
pub fn selection_mask_with(
    predicate: &Predicate,
    batch: &Batch,
    ctx: &ExecContext,
) -> Result<Vec<bool>, ExecError> {
    let rows = batch.rows();
    if !ctx.is_parallel(rows) {
        let mut mask = vec![true; rows];
        and_predicate_adaptive(predicate, batch, &mut mask, 0)?;
        return Ok(mask);
    }
    let parts = run_morsels(rows, ctx, |range| {
        let mut part = vec![true; range.len()];
        and_predicate_adaptive(predicate, batch, &mut part, range.start).map(|()| part)
    });
    // Every morsel evaluates the same predicate against the same schema, so
    // all failures are identical; surfacing the first in morsel order keeps
    // errors deterministic too.
    let mut mask = Vec::with_capacity(rows);
    for part in parts {
        mask.extend(part?);
    }
    Ok(mask)
}

/// Evaluates `predicate` into a keep-mask with full-width vectorised
/// kernels only — every conjunct and disjunct touches every row. This is
/// the pre-selection-vector behaviour, kept public as the differential and
/// benchmark baseline for [`selection_mask`].
///
/// # Errors
///
/// Returns [`ExecError::MissingAttr`] when the predicate references an
/// attribute the batch does not carry.
pub fn selection_mask_full(predicate: &Predicate, batch: &Batch) -> Result<Vec<bool>, ExecError> {
    let mut mask = vec![true; batch.rows()];
    and_predicate(predicate, batch, &mut mask, 0)?;
    Ok(mask)
}

/// ANDs `predicate`'s value into `mask`, column-at-a-time (full-width
/// kernels, no selection vectors). `mask` covers batch rows
/// `start .. start + mask.len()` — the morsel being evaluated.
fn and_predicate(
    p: &Predicate,
    b: &Batch,
    mask: &mut [bool],
    start: usize,
) -> Result<(), ExecError> {
    match p {
        Predicate::True => Ok(()),
        Predicate::Cmp(c) => {
            let li = b
                .index_of(&c.attr)
                .ok_or_else(|| ExecError::MissingAttr(c.attr.clone()))?;
            match &c.rhs {
                Rhs::Literal(v) => b.column(li).compare_literal_and_from(c.op, v, start, mask),
                Rhs::Attr(a) => {
                    let ri = b
                        .index_of(a)
                        .ok_or_else(|| ExecError::MissingAttr(a.clone()))?;
                    b.column(li)
                        .compare_column_and_from(c.op, b.column(ri), start, mask);
                }
            }
            Ok(())
        }
        Predicate::And(ps) => {
            for p in ps {
                and_predicate(p, b, mask, start)?;
            }
            Ok(())
        }
        Predicate::Or(ps) => {
            let mut any = vec![false; mask.len()];
            for p in ps {
                let mut sub = vec![true; mask.len()];
                and_predicate(p, b, &mut sub, start)?;
                for (a, s) in any.iter_mut().zip(&sub) {
                    *a = *a || *s;
                }
            }
            for (m, a) in mask.iter_mut().zip(&any) {
                *m = *m && *a;
            }
            Ok(())
        }
    }
}

/// Like [`and_predicate`], but switches from full-width kernels to
/// survivor-index (selection-vector) evaluation when density drops. The
/// switch is decided per morsel (`mask` is one morsel starting at batch row
/// `start`; survivor indices are absolute batch rows), so each morsel
/// short-circuits independently without changing any mask bit.
fn and_predicate_adaptive(
    p: &Predicate,
    b: &Batch,
    mask: &mut [bool],
    start: usize,
) -> Result<(), ExecError> {
    let rows = mask.len();
    match p {
        Predicate::True | Predicate::Cmp(_) => and_predicate(p, b, mask, start),
        Predicate::And(ps) => {
            // Conjunct intersection commutes, so the evaluation order is
            // free to choose — but only after every attribute offset has
            // been resolved in the predicate's own order, which pins the
            // surfaced `MissingAttr` error to what the full-width path
            // reports.
            resolve_attrs(p, b)?;
            let mut order: Vec<(f64, usize)> = ps
                .iter()
                .enumerate()
                .map(|(i, p)| (selectivity_estimate(p, b), i))
                .collect();
            order.sort_by(|x, y| x.0.total_cmp(&y.0));
            let mut idx: Option<Vec<usize>> = None;
            for (k, &(_, ci)) in order.iter().enumerate() {
                let p = &ps[ci];
                match &mut idx {
                    Some(idx) => retain_where(p, b, idx)?,
                    None => {
                        and_predicate_adaptive(p, b, mask, start)?;
                        if rows >= SELECTION_VECTOR_MIN_ROWS && k + 1 < ps.len() {
                            idx = sparse_indices(mask, true, start);
                        }
                    }
                }
            }
            if let Some(idx) = idx {
                mask.fill(false);
                for i in idx {
                    mask[i - start] = true;
                }
            }
            Ok(())
        }
        Predicate::Or(ps) => {
            // `any` accumulates accepted rows; once most rows are accepted,
            // the remaining disjuncts only visit the still-undecided ones.
            let mut any = vec![false; rows];
            let mut idx: Option<Vec<usize>> = None;
            for (k, p) in ps.iter().enumerate() {
                match &mut idx {
                    Some(undecided) => {
                        let mut holds = undecided.clone();
                        retain_where(p, b, &mut holds)?;
                        for &i in &holds {
                            any[i - start] = true;
                        }
                        undecided.retain(|&i| !any[i - start]);
                    }
                    None => {
                        let mut sub = vec![true; rows];
                        and_predicate_adaptive(p, b, &mut sub, start)?;
                        for (a, s) in any.iter_mut().zip(&sub) {
                            *a = *a || *s;
                        }
                        if rows >= SELECTION_VECTOR_MIN_ROWS && k + 1 < ps.len() {
                            idx = sparse_indices(&any, false, start);
                        }
                    }
                }
            }
            for (m, a) in mask.iter_mut().zip(&any) {
                *m = *m && *a;
            }
            Ok(())
        }
    }
}

/// Resolves every attribute offset in `p` — in the predicate's own
/// left-to-right order, without evaluating anything — and returns the first
/// failure. Both evaluation paths surface resolution errors regardless of
/// mask state, so running this before reordering conjuncts keeps the
/// adaptive path's error behaviour identical to the full-width kernels'.
fn resolve_attrs(p: &Predicate, b: &Batch) -> Result<(), ExecError> {
    match p {
        Predicate::True => Ok(()),
        Predicate::Cmp(c) => {
            b.index_of(&c.attr)
                .ok_or_else(|| ExecError::MissingAttr(c.attr.clone()))?;
            if let Rhs::Attr(a) = &c.rhs {
                b.index_of(a)
                    .ok_or_else(|| ExecError::MissingAttr(a.clone()))?;
            }
            Ok(())
        }
        Predicate::And(ps) | Predicate::Or(ps) => ps.iter().try_for_each(|p| resolve_attrs(p, b)),
    }
}

/// Estimated fraction of rows a predicate keeps, used only to order AND
/// conjuncts most-selective-first. A dictionary-encoded column carries a
/// real distinct count, so `=` on it estimates `1/|dictionary|`; everything
/// else falls back on the classic textbook constants. Estimates never touch
/// results — they only pick which conjunct gets the chance to drop the
/// evaluation into selection-vector mode first. They are also morsel-free
/// (computed from whole-column statistics), so every morsel orders its
/// conjuncts identically.
fn selectivity_estimate(p: &Predicate, b: &Batch) -> f64 {
    match p {
        Predicate::True => 1.0,
        Predicate::Cmp(c) => {
            let distinct = b
                .index_of(&c.attr)
                .and_then(|i| b.column(i).dict_values())
                .map(|v| v.len().max(1) as f64);
            match (&c.rhs, c.op) {
                (Rhs::Literal(_), CompareOp::Eq) => distinct.map_or(0.1, |d| 1.0 / d),
                (Rhs::Literal(_), CompareOp::Ne) => distinct.map_or(0.9, |d| 1.0 - 1.0 / d),
                _ => 1.0 / 3.0,
            }
        }
        Predicate::And(ps) => ps.iter().map(|p| selectivity_estimate(p, b)).product(),
        Predicate::Or(ps) => ps
            .iter()
            .map(|p| selectivity_estimate(p, b))
            .sum::<f64>()
            .min(1.0),
    }
}

/// The absolute batch indices (mask offset + `base`) whose mask entry
/// equals `target`, or `None` as soon as their count reaches the
/// 1-in-[`SELECTION_VECTOR_DENSITY_DEN`] density bound. Deciding *whether*
/// to switch to selection-vector mode and building the vector itself share
/// this single traversal, so a morsel that stays dense pays at most one
/// abandoned scan — not a count pass plus a collect pass.
fn sparse_indices(mask: &[bool], target: bool, base: usize) -> Option<Vec<usize>> {
    let rows = mask.len();
    let mut idx = Vec::with_capacity(rows / SELECTION_VECTOR_DENSITY_DEN + 1);
    for (i, &m) in mask.iter().enumerate() {
        if m == target {
            if (idx.len() + 1) * SELECTION_VECTOR_DENSITY_DEN >= rows {
                return None;
            }
            idx.push(base + i);
        }
    }
    Some(idx)
}

/// Keeps the rows of `idx` where `p` holds — predicate evaluation in
/// selection-vector mode over absolute batch row indices. Attribute
/// offsets resolve once per comparison (never per row), and the scalar
/// column kernels agree bit-for-bit with their vectorised twins.
fn retain_where(p: &Predicate, b: &Batch, idx: &mut Vec<usize>) -> Result<(), ExecError> {
    match p {
        Predicate::True => Ok(()),
        Predicate::Cmp(c) => {
            let li = b
                .index_of(&c.attr)
                .ok_or_else(|| ExecError::MissingAttr(c.attr.clone()))?;
            match &c.rhs {
                Rhs::Literal(v) => {
                    let col = b.column(li);
                    idx.retain(|&i| col.literal_holds_at(c.op, v, i));
                }
                Rhs::Attr(a) => {
                    let ri = b
                        .index_of(a)
                        .ok_or_else(|| ExecError::MissingAttr(a.clone()))?;
                    let (lc, rc) = (b.column(li), b.column(ri));
                    idx.retain(|&i| lc.column_holds_at(c.op, rc, i));
                }
            }
            Ok(())
        }
        Predicate::And(ps) => {
            for p in ps {
                retain_where(p, b, idx)?;
            }
            Ok(())
        }
        Predicate::Or(ps) => {
            let mut undecided = std::mem::take(idx);
            let mut accepted = Vec::new();
            for p in ps {
                let mut holds = undecided.clone();
                retain_where(p, b, &mut holds)?;
                if !holds.is_empty() {
                    let hold_set: std::collections::HashSet<usize> =
                        holds.iter().copied().collect();
                    undecided.retain(|i| !hold_set.contains(i));
                    accepted.extend(holds);
                }
            }
            accepted.sort_unstable();
            *idx = accepted;
            Ok(())
        }
    }
}

/// Running aggregate state for one group and one aggregate.
#[derive(Debug, Clone, Default)]
struct AggState {
    count: i64,
    sum: i64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    /// Folds one row's value in (`None` for `COUNT(*)`).
    fn feed(&mut self, value: Option<Value>) {
        self.count += 1;
        if let Some(v) = value {
            // Numeric folding treats dates as their day numbers; text
            // contributes only to COUNT/MIN/MAX.
            match &v {
                Value::Int(i) | Value::Date(i) => self.sum += i,
                Value::Text(_) => {}
            }
            if self.min.as_ref().is_none_or(|m| v < *m) {
                self.min = Some(v.clone());
            }
            if self.max.as_ref().is_none_or(|m| v > *m) {
                self.max = Some(v);
            }
        }
    }

    /// Folds another state's rows in. `other` must cover rows strictly
    /// after `self`'s (morsel merge order), so keeping `self`'s extremum on
    /// ties matches what sequential `feed`s of the same rows produce.
    fn merge(&mut self, other: &AggState) {
        self.count += other.count;
        self.sum += other.sum;
        if let Some(m) = &other.min {
            if self.min.as_ref().is_none_or(|cur| *m < *cur) {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            if self.max.as_ref().is_none_or(|cur| *m > *cur) {
                self.max = Some(m.clone());
            }
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => Value::Int(self.sum),
            AggFunc::Min => self.min.clone().unwrap_or(Value::Int(0)),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Int(0)),
            AggFunc::Avg => Value::Int(if self.count > 0 {
                self.sum / self.count
            } else {
                0
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{parse_query, CompareOp, JoinCondition};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_table(Table::new(
            "Pd",
            [
                AttrRef::new("Pd", "Pid"),
                AttrRef::new("Pd", "name"),
                AttrRef::new("Pd", "Did"),
            ],
            vec![
                vec![Value::Int(1), Value::text("widget"), Value::Int(10)],
                vec![Value::Int(2), Value::text("gadget"), Value::Int(20)],
                vec![Value::Int(3), Value::text("sprocket"), Value::Int(10)],
            ],
        ));
        db.insert_table(Table::new(
            "Div",
            [
                AttrRef::new("Div", "Did"),
                AttrRef::new("Div", "name"),
                AttrRef::new("Div", "city"),
            ],
            vec![
                vec![Value::Int(10), Value::text("west"), Value::text("LA")],
                vec![Value::Int(20), Value::text("east"), Value::text("NY")],
            ],
        ));
        db
    }

    #[test]
    fn paper_query1_shape_executes() {
        let q = parse_query("SELECT Pd.name FROM Pd, Div WHERE Div.city='LA' AND Pd.Did=Div.Did")
            .unwrap();
        let out = execute(&q, &db()).unwrap();
        let mut names: Vec<String> = out.rows().iter().map(|r| r[0].to_string()).collect();
        names.sort();
        assert_eq!(names, ["'sprocket'", "'widget'"]);
    }

    #[test]
    fn select_filters_rows() {
        let e = Expr::select(
            Expr::base("Div"),
            Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
        );
        assert_eq!(execute(&e, &db()).unwrap().len(), 1);
    }

    #[test]
    fn join_is_bag_nested_loop() {
        let e = Expr::join(
            Expr::base("Pd"),
            Expr::base("Div"),
            JoinCondition::on(AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did")),
        );
        let out = execute(&e, &db()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.attrs().len(), 6);
    }

    #[test]
    fn cross_join_multiplies() {
        let e = Expr::join(Expr::base("Pd"), Expr::base("Div"), JoinCondition::cross());
        assert_eq!(execute(&e, &db()).unwrap().len(), 6);
    }

    #[test]
    fn projection_keeps_duplicates() {
        let e = Expr::project(Expr::base("Pd"), [AttrRef::new("Pd", "Did")]);
        let out = execute(&e, &db()).unwrap();
        assert_eq!(out.len(), 3); // two rows share Did=10, both kept
    }

    #[test]
    fn or_predicate() {
        let e = Expr::select(
            Expr::base("Div"),
            Predicate::or([
                Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
                Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "NY"),
            ]),
        );
        assert_eq!(execute(&e, &db()).unwrap().len(), 2);
    }

    #[test]
    fn attr_vs_attr_comparison() {
        let e = Expr::select(
            Expr::base("Pd"),
            Predicate::Cmp(mvdesign_algebra::Comparison {
                attr: AttrRef::new("Pd", "Pid"),
                op: CompareOp::Lt,
                rhs: Rhs::Attr(AttrRef::new("Pd", "Did")),
            }),
        );
        assert_eq!(execute(&e, &db()).unwrap().len(), 3);
    }

    #[test]
    fn missing_relation_errors() {
        let e = Expr::base("Ghost");
        assert!(matches!(
            execute(&e, &db()),
            Err(ExecError::UnknownRelation(_))
        ));
    }

    #[test]
    fn missing_attr_errors() {
        let e = Expr::project(Expr::base("Pd"), [AttrRef::new("Pd", "ghost")]);
        assert!(matches!(execute(&e, &db()), Err(ExecError::MissingAttr(_))));
    }

    #[test]
    fn range_predicates_on_ints() {
        let e = Expr::select(
            Expr::base("Pd"),
            Predicate::cmp(AttrRef::new("Pd", "Pid"), CompareOp::Ge, 2),
        );
        assert_eq!(execute(&e, &db()).unwrap().len(), 2);
    }

    #[test]
    fn projection_shares_columns_with_input() {
        // π over a base scan must not copy column data.
        let db = db();
        let base = db.table("Pd").unwrap();
        let e = Expr::project(Expr::base("Pd"), [AttrRef::new("Pd", "Did")]);
        let out = execute(&e, &db).unwrap();
        assert!(Arc::ptr_eq(
            &base.batch().columns()[2],
            &out.batch().columns()[0]
        ));
    }

    #[test]
    fn mixed_type_predicate_orders_by_variant_tag() {
        // Int values compare below Text values in Value's total order; the
        // batch engine's constant fast path must preserve that.
        let mut db = Database::new();
        db.insert_table(Table::new(
            "M",
            [AttrRef::new("M", "x")],
            vec![vec![Value::Int(5)], vec![Value::text("a")]],
        ));
        let e = Expr::select(
            Expr::base("M"),
            Predicate::cmp(AttrRef::new("M", "x"), CompareOp::Lt, "zzz"),
        );
        // Int(5) < Text("zzz") by tag; Text("a") < Text("zzz") lexically.
        assert_eq!(execute(&e, &db).unwrap().len(), 2);
    }
}

#[cfg(test)]
mod join_algo_tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> = (0..40)
            .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
            .collect();
        db.insert_table(Table::new(
            "L",
            [AttrRef::new("L", "id"), AttrRef::new("L", "k")],
            rows,
        ));
        let rows: Vec<Vec<Value>> = (0..25)
            .map(|i| vec![Value::Int(i % 7), Value::text(format!("v{}", i % 3))])
            .collect();
        db.insert_table(Table::new(
            "R",
            [AttrRef::new("R", "k"), AttrRef::new("R", "tag")],
            rows,
        ));
        db
    }

    fn join_expr() -> Arc<Expr> {
        Expr::join(
            Expr::base("L"),
            Expr::base("R"),
            mvdesign_algebra::JoinCondition::on(AttrRef::new("L", "k"), AttrRef::new("R", "k")),
        )
    }

    #[test]
    fn all_join_algorithms_agree() {
        let db = db();
        let e = join_expr();
        let nested = execute_with(&e, &db, JoinAlgo::NestedLoop)
            .expect("nested")
            .canonicalized();
        let hash = execute_with(&e, &db, JoinAlgo::Hash)
            .expect("hash")
            .canonicalized();
        let merge = execute_with(&e, &db, JoinAlgo::SortMerge)
            .expect("merge")
            .canonicalized();
        assert!(!nested.is_empty());
        assert_eq!(nested.rows(), hash.rows());
        assert_eq!(nested.rows(), merge.rows());
    }

    #[test]
    fn cross_products_agree_too() {
        let db = db();
        let e = Expr::join(
            Expr::base("L"),
            Expr::base("R"),
            mvdesign_algebra::JoinCondition::cross(),
        );
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
            let out = execute_with(&e, &db, algo).expect("executes");
            assert_eq!(out.len(), 40 * 25, "{algo:?}");
        }
    }

    #[test]
    fn duplicates_multiply_in_every_algorithm() {
        // Two identical keys on each side ⇒ 4 output rows.
        let mut db = Database::new();
        db.insert_table(Table::new(
            "A",
            [AttrRef::new("A", "k")],
            vec![vec![Value::Int(1)], vec![Value::Int(1)]],
        ));
        db.insert_table(Table::new(
            "B",
            [AttrRef::new("B", "k")],
            vec![vec![Value::Int(1)], vec![Value::Int(1)]],
        ));
        let e = Expr::join(
            Expr::base("A"),
            Expr::base("B"),
            mvdesign_algebra::JoinCondition::on(AttrRef::new("A", "k"), AttrRef::new("B", "k")),
        );
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
            assert_eq!(
                execute_with(&e, &db, algo).expect("executes").len(),
                4,
                "{algo:?}"
            );
        }
    }

    #[test]
    fn empty_inputs_yield_empty_joins() {
        let mut db = db();
        db.insert_table(Table::new(
            "L",
            [AttrRef::new("L", "id"), AttrRef::new("L", "k")],
            vec![],
        ));
        let e = join_expr();
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
            assert!(
                execute_with(&e, &db, algo).expect("executes").is_empty(),
                "{algo:?}"
            );
        }
    }

    #[test]
    fn text_keyed_joins_agree_across_algorithms() {
        // Exercise the non-integer key path (Text columns).
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::text(format!("k{}", i % 5)), Value::Int(i)])
            .collect();
        db.insert_table(Table::new(
            "A",
            [AttrRef::new("A", "k"), AttrRef::new("A", "v")],
            rows,
        ));
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::text(format!("k{}", i % 4))])
            .collect();
        db.insert_table(Table::new("B", [AttrRef::new("B", "k")], rows));
        let e = Expr::join(
            Expr::base("A"),
            Expr::base("B"),
            mvdesign_algebra::JoinCondition::on(AttrRef::new("A", "k"), AttrRef::new("B", "k")),
        );
        let nested = execute_with(&e, &db, JoinAlgo::NestedLoop)
            .expect("nested")
            .canonicalized();
        assert!(!nested.is_empty());
        for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge] {
            let out = execute_with(&e, &db, algo)
                .expect("executes")
                .canonicalized();
            assert_eq!(nested.rows(), out.rows(), "{algo:?}");
        }
    }
}

#[cfg(test)]
mod morsel_exec_tests {
    //! Fixture-level determinism checks for the parallel kernels; the broad
    //! randomized battery lives in `tests/engine_morsel.rs`.

    use super::*;

    /// Keys engineered so duplicate groups and join matches straddle every
    /// morsel boundary at morsel_rows = 2 and 7.
    fn db() -> Database {
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int(i), Value::Int(i % 5), Value::Int(i % 3)])
            .collect();
        db.insert_table(Table::new(
            "F",
            [
                AttrRef::new("F", "id"),
                AttrRef::new("F", "k"),
                AttrRef::new("F", "g"),
            ],
            rows,
        ));
        let rows: Vec<Vec<Value>> = (0..20).map(|i| vec![Value::Int(i % 5)]).collect();
        db.insert_table(Table::new("D", [AttrRef::new("D", "k")], rows));
        db
    }

    fn contexts() -> Vec<ExecContext> {
        [1, 2, 4, 8]
            .into_iter()
            .flat_map(|threads| {
                [1, 2, 7, 4096]
                    .into_iter()
                    .map(move |morsel_rows| ExecContext {
                        threads,
                        morsel_rows,
                        mem_budget: None,
                    })
            })
            .collect()
    }

    #[test]
    fn parallel_plans_are_bit_identical_to_sequential() {
        let db = db();
        let plans: Vec<Arc<Expr>> = vec![
            Expr::select(
                Expr::base("F"),
                Predicate::and([
                    Predicate::cmp(AttrRef::new("F", "k"), CompareOp::Eq, 2),
                    Predicate::cmp(AttrRef::new("F", "id"), CompareOp::Lt, 90),
                ]),
            ),
            Expr::join(
                Expr::base("F"),
                Expr::base("D"),
                JoinCondition::on(AttrRef::new("F", "k"), AttrRef::new("D", "k")),
            ),
            Expr::aggregate(
                Expr::base("F"),
                [AttrRef::new("F", "k"), AttrRef::new("F", "g")],
                [
                    AggExpr::new(AggFunc::Sum, AttrRef::new("F", "id"), "total"),
                    AggExpr::new(AggFunc::Min, AttrRef::new("F", "id"), "lo"),
                    AggExpr::new(AggFunc::Max, AttrRef::new("F", "id"), "hi"),
                    AggExpr::count_star("n"),
                ],
            ),
        ];
        for plan in &plans {
            for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
                let baseline = execute_with(plan, &db, algo).expect("sequential");
                for ctx in contexts() {
                    let out = execute_with_context(plan, &db, algo, &ctx).expect("parallel");
                    assert_eq!(baseline.batch(), out.batch(), "algo {algo:?}, ctx {ctx:?}");
                }
            }
        }
    }

    #[test]
    fn parallel_mask_matches_full_width_baseline() {
        let db = db();
        let batch = db.table("F").unwrap().batch();
        let p = Predicate::or([
            Predicate::cmp(AttrRef::new("F", "k"), CompareOp::Eq, 1),
            Predicate::and([
                Predicate::cmp(AttrRef::new("F", "g"), CompareOp::Eq, 0),
                Predicate::cmp(AttrRef::new("F", "id"), CompareOp::Ge, 50),
            ]),
        ]);
        let full = selection_mask_full(&p, batch).expect("full");
        for ctx in contexts() {
            let mask = selection_mask_with(&p, batch, &ctx).expect("mask");
            assert_eq!(full, mask, "ctx {ctx:?}");
        }
    }

    #[test]
    fn parallel_errors_match_sequential_errors() {
        let db = db();
        let plan = Expr::select(
            Expr::base("F"),
            Predicate::cmp(AttrRef::new("F", "ghost"), CompareOp::Eq, 1),
        );
        let sequential = execute(&plan, &db).unwrap_err();
        let ctx = ExecContext {
            threads: 4,
            morsel_rows: 7,
            mem_budget: None,
        };
        let parallel = execute_with_context(&plan, &db, JoinAlgo::NestedLoop, &ctx).unwrap_err();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn materialized_views_are_context_independent() {
        let db = db();
        let definition = Expr::aggregate(
            Expr::join(
                Expr::base("F"),
                Expr::base("D"),
                JoinCondition::on(AttrRef::new("F", "k"), AttrRef::new("D", "k")),
            ),
            [AttrRef::new("F", "g")],
            [AggExpr::count_star("n")],
        );
        let mut seq_db = db.clone();
        materialize_view("V", &definition, &mut seq_db).expect("sequential view");
        let mut par_db = db.clone();
        let ctx = ExecContext {
            threads: 8,
            morsel_rows: 7,
            mem_budget: None,
        };
        materialize_view_with("V", &definition, &mut par_db, &ctx).expect("parallel view");
        assert_eq!(seq_db.table("V"), par_db.table("V"));
    }
}
