//! Synthetic database generation matched to catalog statistics.
//!
//! Generation writes typed columns directly — no intermediate row tuples.
//! The RNG is still consumed in row-major order (rows outer, attributes
//! inner, exactly one draw per cell), so every seed produces the same data
//! the tuple-building generator did. Text attributes draw from small
//! catalog-derived domains, so they are emitted dictionary-encoded
//! ([`Column::Dict`]): each cell stores a `u32` code and each distinct
//! string is materialised once, in first-appearance order, which keeps the
//! value sequence (and every seeded fixture) identical to the plain-text
//! representation.

use std::collections::HashMap;
use std::sync::Arc;

use mvdesign_algebra::{AttrRef, Value};
use mvdesign_catalog::{AttrType, Catalog};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::batch::{Batch, Column};
use crate::storage::BufferPool;
use crate::table::{Database, Table};

/// Configuration for [`Generator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// RNG seed — generation is fully deterministic per seed.
    pub seed: u64,
    /// Fraction of each relation's catalog cardinality to generate.
    pub scale: f64,
    /// Hard per-relation row cap (keeps nested-loop tests fast).
    pub max_rows: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed,
            scale: 0.01,
            max_rows: 2_000,
        }
    }
}

/// Generates databases whose value distributions match a catalog:
///
/// * an attribute with selection selectivity `s` draws from a domain of
///   `round(1/s)` values, so an equality predicate keeps ≈`s` of the rows;
/// * the two endpoints of a registered join selectivity `js = 1/d` share a
///   domain of `d` values, so the equi-join yields ≈`|L|·|R|/d` rows;
/// * other attributes draw from a domain the size of the relation.
#[derive(Debug, Clone, Default)]
pub struct Generator {
    config: GeneratorConfig,
}

impl Generator {
    /// A generator with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A generator with explicit configuration.
    pub fn with_config(config: GeneratorConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates one table per catalog relation.
    pub fn database(&self, catalog: &Catalog) -> Database {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let domains = self.domains(catalog);
        let mut db = Database::new();
        for (name, meta) in catalog.iter() {
            let n = ((meta.stats.records * self.config.scale).round() as usize)
                .clamp(1, self.config.max_rows);
            let attrs: Vec<AttrRef> = meta
                .schema
                .attributes()
                .iter()
                .map(|a| AttrRef::new(name.clone(), a.name.clone()))
                .collect();
            let types: Vec<AttrType> = meta.schema.attributes().iter().map(|a| a.ty).collect();
            let doms: Vec<u64> = attrs
                .iter()
                .map(|a| domains.get(a).copied().unwrap_or(n as u64).max(1))
                .collect();
            let mut builders: Vec<ColBuilder> =
                types.iter().map(|ty| ColBuilder::new(*ty, n)).collect();
            for _ in 0..n {
                for (i, b) in builders.iter_mut().enumerate() {
                    b.draw(&mut rng, doms[i]);
                }
            }
            let columns = builders.into_iter().map(|b| Arc::new(b.finish())).collect();
            db.insert_table(Table::from_batch(name.clone(), Batch::new(attrs, columns)));
        }
        db
    }

    /// Generates one table per catalog relation and pages every table into
    /// `pool` (see [`Database::page_out`]). The data is identical to
    /// [`Generator::database`] under the same seed — paging changes
    /// residency, never content — so out-of-core fixtures and benchmarks
    /// share their seeds with the resident ones.
    pub fn paged_database(
        &self,
        catalog: &Catalog,
        pool: &Arc<BufferPool>,
        page_rows: usize,
    ) -> Database {
        let mut db = self.database(catalog);
        db.page_out(pool, page_rows);
        db
    }

    /// Domain size per attribute, derived from selectivities and scaled the
    /// same way cardinalities are (an equality predicate's hit rate is
    /// scale-free; join hit rates must shrink with the data).
    fn domains(&self, catalog: &Catalog) -> HashMap<AttrRef, u64> {
        let mut out = HashMap::new();
        for (name, meta) in catalog.iter() {
            for (attr, s) in &meta.selectivities {
                if *s > 0.0 {
                    out.insert(
                        AttrRef::new(name.clone(), attr.clone()),
                        (1.0 / s).round().max(1.0) as u64,
                    );
                }
            }
        }
        for (key, js) in catalog.join_selectivities() {
            if js <= 0.0 {
                continue;
            }
            // js = 1/d on the *catalog-sized* relations; the generated data
            // is `scale` times smaller, so shrink the shared domain the same
            // way to keep join output cardinalities proportionate.
            let d = ((1.0 / js) * self.config.scale).round().max(2.0) as u64;
            out.insert(key.lo().clone(), d);
            out.insert(key.hi().clone(), d);
        }
        out
    }
}

/// Per-column generation state. Each `draw` makes exactly one `gen_range`
/// call, keeping the RNG stream identical to the old row-building generator;
/// text columns additionally intern each distinct draw into a dictionary
/// (codes in first-appearance order), so memory is bounded by the domain
/// size instead of the row count.
enum ColBuilder {
    Int(Vec<i64>),
    Date(Vec<i64>),
    Dict {
        codes: Vec<u32>,
        by_draw: HashMap<u64, u32>,
        values: Vec<Arc<str>>,
    },
}

impl ColBuilder {
    fn new(ty: AttrType, n: usize) -> Self {
        match ty {
            AttrType::Int => ColBuilder::Int(Vec::with_capacity(n)),
            AttrType::Date => ColBuilder::Date(Vec::with_capacity(n)),
            AttrType::Text => ColBuilder::Dict {
                codes: Vec::with_capacity(n),
                by_draw: HashMap::new(),
                values: Vec::new(),
            },
        }
    }

    fn draw(&mut self, rng: &mut StdRng, domain: u64) {
        let k = rng.gen_range(0..domain.max(1));
        match self {
            ColBuilder::Int(v) => v.push(k as i64),
            ColBuilder::Dict {
                codes,
                by_draw,
                values,
            } => {
                let next = values.len() as u32;
                let code = *by_draw.entry(k).or_insert_with(|| {
                    values.push(Arc::from(format!("v{k}").as_str()));
                    next
                });
                codes.push(code);
            }
            ColBuilder::Date(v) => {
                // Spread across 1996 so `date > 7/1/96` keeps about half.
                let start = match Value::date(1996, 1, 1) {
                    Value::Date(d) => d,
                    _ => unreachable!("Value::date returns Date"),
                };
                let span = 372; // one simplified year
                v.push(start + (k as i64 * span / domain.max(1) as i64));
            }
        }
    }

    fn finish(self) -> Column {
        match self {
            ColBuilder::Int(v) => Column::Int(v),
            ColBuilder::Date(v) => Column::Date(v),
            ColBuilder::Dict { codes, values, .. } => Column::dict(codes, values.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{CompareOp, Expr, JoinCondition, Predicate};
    use mvdesign_catalog::AttrType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("Div")
            .attr("Did", AttrType::Int)
            .attr("city", AttrType::Text)
            .records(50_000.0)
            .blocks(5_000.0)
            .selectivity("city", 0.02)
            .finish()
            .unwrap();
        c.relation("Pd")
            .attr("Pid", AttrType::Int)
            .attr("Did", AttrType::Int)
            .records(100_000.0)
            .blocks(10_000.0)
            .finish()
            .unwrap();
        c.set_join_selectivity(
            AttrRef::new("Pd", "Did"),
            AttrRef::new("Div", "Did"),
            1.0 / 50_000.0,
        )
        .unwrap();
        c
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let c = catalog();
        let a = Generator::new().database(&c);
        let b = Generator::new().database(&c);
        assert_eq!(a, b);
        let other = Generator::with_config(GeneratorConfig {
            seed: 99,
            ..GeneratorConfig::default()
        })
        .database(&c);
        assert_ne!(a, other);
    }

    #[test]
    fn row_counts_follow_scale() {
        let c = catalog();
        let db = Generator::new().database(&c);
        assert_eq!(db.table("Div").unwrap().len(), 500);
        assert_eq!(db.table("Pd").unwrap().len(), 1_000);
    }

    #[test]
    fn equality_selectivity_is_roughly_honoured() {
        let c = catalog();
        let db = Generator::new().database(&c);
        let e = Expr::select(
            Expr::base("Div"),
            Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "v0"),
        );
        let hits = crate::exec::execute(&e, &db).unwrap().len() as f64;
        let frac = hits / 500.0;
        assert!(
            (0.002..=0.1).contains(&frac),
            "expected ≈2% selectivity, got {frac}"
        );
    }

    #[test]
    fn registered_joins_are_productive() {
        let c = catalog();
        let db = Generator::new().database(&c);
        let e = Expr::join(
            Expr::base("Pd"),
            Expr::base("Div"),
            JoinCondition::on(AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did")),
        );
        let out = crate::exec::execute(&e, &db).unwrap();
        assert!(!out.is_empty(), "join produced no rows");
        // Expected ≈ |Pd|·|Div|/d = 1000·500/500 = 1000 rows.
        let n = out.len() as f64;
        assert!((100.0..=10_000.0).contains(&n), "join rows: {n}");
    }

    #[test]
    fn text_columns_are_dictionary_encoded() {
        let c = catalog();
        let db = Generator::new().database(&c);
        let div = db.table("Div").unwrap();
        let idx = div
            .attrs()
            .iter()
            .position(|a| a.attr.as_str() == "city")
            .unwrap();
        let col = div.batch().column(idx);
        let values = col.dict_values().expect("generated text is dict-encoded");
        // city has selectivity 0.02 ⇒ a 50-value domain.
        assert!(values.len() <= 50, "dictionary larger than the domain");
        assert!(values.len() > 1, "domain collapsed to one value");
        // The dictionary holds distinct strings and decodes to Text values.
        for i in 0..div.len() {
            assert!(matches!(col.value(i), Value::Text(_)));
        }
    }

    #[test]
    fn paged_database_is_the_resident_database_paged() {
        let c = catalog();
        let resident = Generator::new().database(&c);
        let pool = BufferPool::new(Some(8 * 1024));
        let paged = Generator::new().paged_database(&c, &pool, 64);
        for (name, t) in paged.iter() {
            assert!(t.pool().is_some(), "{name} not paged");
            assert_eq!(Some(t), resident.table(name.as_str()), "{name} differs");
        }
    }

    #[test]
    fn max_rows_caps_generation() {
        let c = catalog();
        let g = Generator::with_config(GeneratorConfig {
            max_rows: 10,
            ..GeneratorConfig::default()
        });
        let db = g.database(&c);
        assert_eq!(db.table("Pd").unwrap().len(), 10);
    }
}
