//! Expression evaluation over in-memory tables — columnar batch execution.
//!
//! Every operator is a *batch kernel*: attribute offsets are resolved once
//! per operator (not once per row), predicates evaluate as vectorised
//! comparisons over typed columns, and joins produce index vectors that a
//! single typed [`Batch::gather`] turns into output columns. The
//! tuple-at-a-time implementation this replaced survives unchanged in
//! [`crate::row_reference`] as the differential baseline; both engines are
//! property-tested to produce identical bags.
//!
//! Two adaptive refinements sit on top of the kernels. Joins and aggregates
//! whose keys are integer-, date- or dictionary-backed run over raw `i64`
//! keys (dictionary codes translate between value tables once per batch, so
//! text-keyed joins never hash a string). Selections short-circuit through
//! *selection vectors*: [`selection_mask`] orders AND conjuncts by
//! estimated selectivity (dictionary cardinalities give `=` on a text
//! column a real distinct count; intersection commutes, so the order is
//! free), starts with full-width mask kernels and, once few enough rows
//! survive, evaluates the remaining conjuncts only at the surviving
//! indices ([`selection_mask_full`] keeps the always-full-width behaviour
//! as the differential baseline).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use mvdesign_algebra::{
    AggExpr, AggFunc, AttrRef, CompareOp, Expr, JoinCondition, Predicate, RelName, Rhs, Value,
};

use crate::batch::{Batch, Column};
use crate::table::{Database, Table};

/// Errors raised while executing an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A base relation has no table in the database.
    UnknownRelation(RelName),
    /// An operator referenced an attribute its input does not carry.
    MissingAttr(AttrRef),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownRelation(r) => write!(f, "no table for relation `{r}`"),
            ExecError::MissingAttr(a) => write!(f, "input carries no attribute `{a}`"),
        }
    }
}

impl Error for ExecError {}

/// The physical join algorithm used by [`execute_with`].
///
/// All three produce identical bags; they differ in the I/O pattern the cost
/// models charge for (`PaperCostModel` assumes `NestedLoop`,
/// `NestedLoopCostModel`/`SortMergeCostModel` the alternatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgo {
    /// Naive nested loop — the paper's assumption.
    #[default]
    NestedLoop,
    /// Build a hash table on the right input, probe with the left.
    Hash,
    /// Sort both inputs on the join key and merge.
    SortMerge,
}

/// Evaluates an SPJ expression against a database, producing a result
/// table with bag semantics.
///
/// Selection is a linear scan, join is a naive nested loop, projection keeps
/// duplicates — exactly the operator algorithms the paper's cost model
/// assumes, executed as columnar batch kernels. Use [`execute_with`] to pick
/// a different join algorithm.
///
/// # Errors
///
/// Returns [`ExecError`] when a base relation is missing from the database
/// or an attribute reference cannot be resolved.
pub fn execute(expr: &Arc<Expr>, db: &Database) -> Result<Table, ExecError> {
    execute_with(expr, db, JoinAlgo::NestedLoop)
}

/// Like [`execute`], with an explicit physical join algorithm.
///
/// # Errors
///
/// Returns [`ExecError`] when a base relation is missing from the database
/// or an attribute reference cannot be resolved.
pub fn execute_with(expr: &Arc<Expr>, db: &Database, algo: JoinAlgo) -> Result<Table, ExecError> {
    match &**expr {
        Expr::Base(name) => db
            .table(name.as_str())
            .cloned()
            .ok_or_else(|| ExecError::UnknownRelation(name.clone())),
        _ => {
            let batch = exec_batch(expr, db, algo)?;
            Ok(Table::from_batch(op_label(expr), batch))
        }
    }
}

/// The operator glyph used as the result-table name (matches the paper's
/// notation and the row engine's historical output).
pub(crate) fn op_label(expr: &Expr) -> &'static str {
    match expr {
        Expr::Base(_) => "scan",
        Expr::Select { .. } => "σ",
        Expr::Project { .. } => "π",
        Expr::Join { .. } => "⋈",
        Expr::Aggregate { .. } => "γ",
    }
}

/// Recursive batch evaluation — the engine's spine.
pub(crate) fn exec_batch(
    expr: &Arc<Expr>,
    db: &Database,
    algo: JoinAlgo,
) -> Result<Batch, ExecError> {
    match &**expr {
        Expr::Base(name) => db
            .table(name.as_str())
            .map(|t| t.batch().clone())
            .ok_or_else(|| ExecError::UnknownRelation(name.clone())),
        Expr::Select { input, predicate } => {
            let b = exec_batch(input, db, algo)?;
            select_batch(&b, predicate)
        }
        Expr::Project { input, attrs } => {
            let b = exec_batch(input, db, algo)?;
            project_batch(&b, attrs)
        }
        Expr::Join { left, right, on } => {
            let l = exec_batch(left, db, algo)?;
            let r = exec_batch(right, db, algo)?;
            join_batch(&l, &r, on, algo)
        }
        Expr::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let b = exec_batch(input, db, algo)?;
            aggregate_batch(&b, group_by, aggs)
        }
    }
}

/// Selection kernel: one vectorised predicate pass, one gather.
pub(crate) fn select_batch(batch: &Batch, predicate: &Predicate) -> Result<Batch, ExecError> {
    let mask = predicate_mask(predicate, batch)?;
    Ok(batch.filter(&mask))
}

/// Projection kernel: resolves attribute offsets once and re-shares the
/// picked columns — O(#attrs), no row movement at all.
pub(crate) fn project_batch(batch: &Batch, attrs: &[AttrRef]) -> Result<Batch, ExecError> {
    let idx: Vec<usize> = attrs
        .iter()
        .map(|a| {
            batch
                .index_of(a)
                .ok_or_else(|| ExecError::MissingAttr(a.clone()))
        })
        .collect::<Result<_, _>>()?;
    Ok(batch.select_columns(&idx))
}

/// Join kernel: resolves the condition to column offsets once, produces
/// matching (left, right) index vectors under the requested algorithm, then
/// gathers both sides and glues them.
pub(crate) fn join_batch(
    l: &Batch,
    r: &Batch,
    on: &JoinCondition,
    algo: JoinAlgo,
) -> Result<Batch, ExecError> {
    // Resolve each condition pair to (left index, right index).
    let mut pairs = Vec::with_capacity(on.pairs().len());
    for (a, b) in on.pairs() {
        let resolved = match (l.index_of(a), r.index_of(b)) {
            (Some(la), Some(rb)) => (la, rb),
            _ => match (l.index_of(b), r.index_of(a)) {
                (Some(lb), Some(ra)) => (lb, ra),
                _ => return Err(ExecError::MissingAttr(a.clone())),
            },
        };
        pairs.push(resolved);
    }
    let lcols: Vec<&Column> = pairs.iter().map(|&(li, _)| l.column(li)).collect();
    let rcols: Vec<&Column> = pairs.iter().map(|&(_, ri)| r.column(ri)).collect();
    let (lidx, ridx) = match algo {
        JoinAlgo::NestedLoop => nested_loop_indices(l.rows(), r.rows(), &lcols, &rcols),
        JoinAlgo::Hash => hash_indices(l.rows(), r.rows(), &lcols, &rcols),
        JoinAlgo::SortMerge => sort_merge_indices(l.rows(), r.rows(), &lcols, &rcols),
    };
    Ok(Batch::hstack(&l.gather(&lidx), &r.gather(&ridx)))
}

/// Nested loop over row indices; the single-key integer/dictionary case
/// runs over raw `&[i64]` slices.
fn nested_loop_indices(
    ln: usize,
    rn: usize,
    lcols: &[&Column],
    rcols: &[&Column],
) -> (Vec<usize>, Vec<usize>) {
    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    if let [(lk, rk)] = raw_keys(lcols, rcols).as_slice() {
        let (lk, rk) = (lk.as_slice(), rk.as_slice());
        for (i, a) in lk.iter().enumerate() {
            for (j, b) in rk.iter().enumerate() {
                if a == b {
                    lidx.push(i);
                    ridx.push(j);
                }
            }
        }
        return (lidx, ridx);
    }
    for i in 0..ln {
        for j in 0..rn {
            if lcols.iter().zip(rcols).all(|(lc, rc)| lc.eq_at(i, rc, j)) {
                lidx.push(i);
                ridx.push(j);
            }
        }
    }
    (lidx, ridx)
}

/// Hash join over row indices: build on the right, probe with the left. A
/// cross join hashes everything under the empty key, degenerating
/// gracefully. The single-key integer/dictionary case hashes raw `i64`s —
/// text-keyed joins over dictionary columns never hash a string.
fn hash_indices(
    ln: usize,
    rn: usize,
    lcols: &[&Column],
    rcols: &[&Column],
) -> (Vec<usize>, Vec<usize>) {
    use std::collections::HashMap;
    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    if let [(lk, rk)] = raw_keys(lcols, rcols).as_slice() {
        let (lk, rk) = (lk.as_slice(), rk.as_slice());
        let mut built: HashMap<i64, Vec<usize>> = HashMap::new();
        for (j, b) in rk.iter().enumerate() {
            built.entry(*b).or_default().push(j);
        }
        for (i, a) in lk.iter().enumerate() {
            if let Some(matches) = built.get(a) {
                for &j in matches {
                    lidx.push(i);
                    ridx.push(j);
                }
            }
        }
        return (lidx, ridx);
    }
    let mut built: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for j in 0..rn {
        let key: Vec<Value> = rcols.iter().map(|c| c.value(j)).collect();
        built.entry(key).or_default().push(j);
    }
    for i in 0..ln {
        let key: Vec<Value> = lcols.iter().map(|c| c.value(i)).collect();
        if let Some(matches) = built.get(&key) {
            for &j in matches {
                lidx.push(i);
                ridx.push(j);
            }
        }
    }
    (lidx, ridx)
}

/// Sort-merge join over row indices: sorts index permutations of both sides
/// by their key columns, then merges group × group.
fn sort_merge_indices(
    ln: usize,
    rn: usize,
    lcols: &[&Column],
    rcols: &[&Column],
) -> (Vec<usize>, Vec<usize>) {
    if lcols.is_empty() {
        // No key to sort on: fall back to the nested loop (cross product).
        return nested_loop_indices(ln, rn, lcols, rcols);
    }
    if let [(lk, rk)] = raw_keys(lcols, rcols).as_slice() {
        // Raw fast path: sort and merge on `i64` keys. For dictionary
        // columns these are translated codes — code order differs from
        // string order, but the merge only needs *some* total order with
        // the same equality classes, and code equality is value equality.
        return sort_merge_raw(lk.as_slice(), rk.as_slice());
    }
    let key_cmp = |xcols: &[&Column], x: usize, ycols: &[&Column], y: usize| {
        xcols
            .iter()
            .zip(ycols)
            .map(|(xc, yc)| xc.cmp_at(x, yc, y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    };
    let mut ls: Vec<usize> = (0..ln).collect();
    let mut rs: Vec<usize> = (0..rn).collect();
    ls.sort_by(|&a, &b| key_cmp(lcols, a, lcols, b));
    rs.sort_by(|&a, &b| key_cmp(rcols, a, rcols, b));

    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < ls.len() && j < rs.len() {
        match key_cmp(lcols, ls[i], rcols, rs[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the full group × group block.
                let gi_end = (i..ls.len())
                    .take_while(|&x| key_cmp(lcols, ls[x], lcols, ls[i]).is_eq())
                    .last()
                    .expect("group is non-empty")
                    + 1;
                let gj_end = (j..rs.len())
                    .take_while(|&x| key_cmp(rcols, rs[x], rcols, rs[j]).is_eq())
                    .last()
                    .expect("group is non-empty")
                    + 1;
                for &li in &ls[i..gi_end] {
                    for &rj in &rs[j..gj_end] {
                        lidx.push(li);
                        ridx.push(rj);
                    }
                }
                i = gi_end;
                j = gj_end;
            }
        }
    }
    (lidx, ridx)
}

/// Single-key sort-merge over raw `i64` keys: sorts index permutations of
/// both sides, then merges group × group.
fn sort_merge_raw(lk: &[i64], rk: &[i64]) -> (Vec<usize>, Vec<usize>) {
    let mut ls: Vec<usize> = (0..lk.len()).collect();
    let mut rs: Vec<usize> = (0..rk.len()).collect();
    ls.sort_by_key(|&i| lk[i]);
    rs.sort_by_key(|&j| rk[j]);
    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < ls.len() && j < rs.len() {
        let (a, b) = (lk[ls[i]], rk[rs[j]]);
        match a.cmp(&b) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let gi_end = i + ls[i..].iter().take_while(|&&x| lk[x] == a).count();
                let gj_end = j + rs[j..].iter().take_while(|&&x| rk[x] == b).count();
                for &li in &ls[i..gi_end] {
                    for &rj in &rs[j..gj_end] {
                        lidx.push(li);
                        ridx.push(rj);
                    }
                }
                i = gi_end;
                j = gj_end;
            }
        }
    }
    (lidx, ridx)
}

/// Raw `i64` join keys — borrowed straight from `Int`/`Date` storage, or
/// materialised once per batch for dictionary codes.
enum RawKeys<'a> {
    Borrowed(&'a [i64]),
    Owned(Vec<i64>),
}

impl RawKeys<'_> {
    fn as_slice(&self) -> &[i64] {
        match self {
            RawKeys::Borrowed(s) => s,
            RawKeys::Owned(v) => v,
        }
    }
}

/// Raw keys for one equi-join pair, if the pair is integer-representable.
///
/// `Int`/`Int` and `Date`/`Date` borrow their storage. `Dict`/`Dict` joins
/// compare codes instead of strings: the right side's *dictionary entries*
/// (not its rows) are translated into the left code space once, and a right
/// value missing from the left dictionary maps to `-1`, which can never
/// equal a (non-negative) left code — so the translated keys join exactly
/// like the strings they stand for.
fn raw_key_pair<'a>(lc: &'a Column, rc: &'a Column) -> Option<(RawKeys<'a>, RawKeys<'a>)> {
    match (lc, rc) {
        (Column::Int(a), Column::Int(b)) | (Column::Date(a), Column::Date(b)) => {
            Some((RawKeys::Borrowed(a), RawKeys::Borrowed(b)))
        }
        (
            Column::Dict {
                codes: a,
                values: va,
            },
            Column::Dict {
                codes: b,
                values: vb,
            },
        ) => {
            let left = RawKeys::Owned(a.iter().map(|&c| i64::from(c)).collect());
            let right = if Arc::ptr_eq(va, vb) {
                RawKeys::Owned(b.iter().map(|&c| i64::from(c)).collect())
            } else {
                let by_str: std::collections::HashMap<&str, i64> = va
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (&**s, i as i64))
                    .collect();
                let translated: Vec<i64> = vb
                    .iter()
                    .map(|s| by_str.get(&**s).copied().unwrap_or(-1))
                    .collect();
                RawKeys::Owned(b.iter().map(|&c| translated[c as usize]).collect())
            };
            Some((left, right))
        }
        _ => None,
    }
}

/// When every key pair is integer-representable (`Int`/`Int`, `Date`/`Date`
/// or `Dict`/`Dict`), returns the raw keys; empty otherwise. Kernels use
/// the single-pair case as their fast path.
fn raw_keys<'a>(lcols: &[&'a Column], rcols: &[&'a Column]) -> Vec<(RawKeys<'a>, RawKeys<'a>)> {
    lcols
        .iter()
        .zip(rcols)
        .map(|(lc, rc)| raw_key_pair(lc, rc))
        .collect::<Option<Vec<_>>>()
        .unwrap_or_default()
}

/// Hash-aggregation kernel: offsets resolved once, keys and accumulator
/// feeds read straight from the columns, output built column-wise.
pub(crate) fn aggregate_batch(
    batch: &Batch,
    group_by: &[AttrRef],
    aggs: &[AggExpr],
) -> Result<Batch, ExecError> {
    let gcols: Vec<&Column> = group_by
        .iter()
        .map(|a| {
            batch
                .index_of(a)
                .map(|i| batch.column(i))
                .ok_or_else(|| ExecError::MissingAttr(a.clone()))
        })
        .collect::<Result<_, _>>()?;
    let acols: Vec<Option<&Column>> = aggs
        .iter()
        .map(|a| match &a.input {
            Some(attr) => batch
                .index_of(attr)
                .map(|i| Some(batch.column(i)))
                .ok_or_else(|| ExecError::MissingAttr(attr.clone())),
            None => Ok(None),
        })
        .collect::<Result<_, _>>()?;

    if !gcols.is_empty() && gcols.len() <= COMPACT_GROUP_KEY_COLS {
        if let Some(keys) = gcols
            .iter()
            .map(|c| raw_ints(c))
            .collect::<Option<Vec<_>>>()
        {
            return Ok(aggregate_compact(
                batch.rows(),
                group_by,
                aggs,
                &gcols,
                &acols,
                &keys,
            ));
        }
    }

    // BTreeMap keeps group output deterministic (sorted by key), matching
    // the row reference.
    let mut groups: BTreeMap<Vec<Value>, Vec<AggState>> = BTreeMap::new();
    for i in 0..batch.rows() {
        let key: Vec<Value> = gcols.iter().map(|c| c.value(i)).collect();
        let states = groups
            .entry(key)
            .or_insert_with(|| vec![AggState::default(); aggs.len()]);
        for (state, col) in states.iter_mut().zip(&acols) {
            state.feed(col.map(|c| c.value(i)));
        }
    }

    let mut attrs = group_by.to_vec();
    attrs.extend(aggs.iter().map(|a| a.output_attr()));
    let mut columns: Vec<Column> = attrs.iter().map(|_| Column::empty()).collect();
    let n_groups = groups.len();
    for (key, states) in groups {
        for (col, v) in columns.iter_mut().zip(key) {
            col.push(v);
        }
        for ((col, state), agg) in columns[group_by.len()..].iter_mut().zip(&states).zip(aggs) {
            col.push(state.finish(agg.func));
        }
    }
    let columns = columns.into_iter().map(Arc::new).collect();
    let out = Batch::new(attrs, columns);
    debug_assert_eq!(out.rows(), n_groups);
    Ok(out)
}

/// Widest group-by the compact fixed-width aggregate key covers.
const COMPACT_GROUP_KEY_COLS: usize = 4;

/// The column's values as raw `i64`s: borrowed for `Int`/`Date`, owned
/// codes for dictionary columns (code equality is value equality, which is
/// all grouping needs).
fn raw_ints(col: &Column) -> Option<RawKeys<'_>> {
    match col {
        Column::Int(v) | Column::Date(v) => Some(RawKeys::Borrowed(v)),
        Column::Dict { codes, .. } => Some(RawKeys::Owned(
            codes.iter().map(|&c| i64::from(c)).collect(),
        )),
        _ => None,
    }
}

/// Upper-bound hint for the group count: dictionary columns bound their
/// distinct count by the value-table size, other columns only by the row
/// count. Pre-sizing the map from `min(rows, Π per-column hints)` avoids
/// rehashing during the build.
fn group_cardinality_hint(gcols: &[&Column], rows: usize) -> usize {
    let mut hint = 1usize;
    for c in gcols {
        let d = match c {
            Column::Dict { values, .. } => values.len().max(1),
            _ => rows,
        };
        hint = hint.saturating_mul(d);
        if hint >= rows {
            return rows;
        }
    }
    hint
}

/// Hash-aggregation fast path for int/date/dict group keys: a fixed-width
/// `[i64; 4]` key padded with `i64::MIN` (every key in one aggregation
/// shares a width, so padding never collides), a hash map pre-sized from
/// [`group_cardinality_hint`], and flat per-group state vectors. Output
/// groups are sorted by decoded key order afterwards, matching the
/// `BTreeMap` slow path and the row reference exactly.
fn aggregate_compact(
    rows: usize,
    group_by: &[AttrRef],
    aggs: &[AggExpr],
    gcols: &[&Column],
    acols: &[Option<&Column>],
    keys: &[RawKeys<'_>],
) -> Batch {
    use std::collections::HashMap;
    let key_slices: Vec<&[i64]> = keys.iter().map(RawKeys::as_slice).collect();
    let mut map: HashMap<[i64; COMPACT_GROUP_KEY_COLS], usize> =
        HashMap::with_capacity(group_cardinality_hint(gcols, rows));
    let mut reps: Vec<usize> = Vec::new();
    let mut states: Vec<Vec<AggState>> = Vec::new();
    for i in 0..rows {
        let mut key = [i64::MIN; COMPACT_GROUP_KEY_COLS];
        for (k, s) in key_slices.iter().enumerate() {
            key[k] = s[i];
        }
        let next = states.len();
        let gid = *map.entry(key).or_insert(next);
        if gid == next {
            reps.push(i);
            states.push(vec![AggState::default(); aggs.len()]);
        }
        for (state, col) in states[gid].iter_mut().zip(acols) {
            state.feed(col.map(|c| c.value(i)));
        }
    }
    let mut order: Vec<usize> = (0..reps.len()).collect();
    order.sort_by(|&x, &y| {
        gcols
            .iter()
            .map(|c| c.cmp_at(reps[x], c, reps[y]))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut attrs = group_by.to_vec();
    attrs.extend(aggs.iter().map(|a| a.output_attr()));
    let mut columns: Vec<Column> = attrs.iter().map(|_| Column::empty()).collect();
    for &g in &order {
        for (col, gc) in columns.iter_mut().zip(gcols) {
            col.push(gc.value(reps[g]));
        }
        for ((col, state), agg) in columns[group_by.len()..]
            .iter_mut()
            .zip(&states[g])
            .zip(aggs)
        {
            col.push(state.finish(agg.func));
        }
    }
    Batch::new(attrs, columns.into_iter().map(Arc::new).collect())
}

/// Computes `definition` and stores the result under `name`, so later
/// queries rewritten against the view (see `mvdesign-core`'s `ViewCatalog`)
/// can read it as a base table. The stored table keeps the definition's
/// qualified attributes and its columnar layout — no row materialization.
///
/// # Errors
///
/// Propagates [`ExecError`] from evaluating the definition.
pub fn materialize_view(
    name: impl Into<RelName>,
    definition: &Arc<Expr>,
    db: &mut Database,
) -> Result<(), ExecError> {
    let result = execute(definition, db)?;
    db.insert_table(Table::from_batch(name, result.into_batch()));
    Ok(())
}

/// Batches below this size never switch to selection-vector evaluation —
/// the bookkeeping costs more than the full-width kernels.
const SELECTION_VECTOR_MIN_ROWS: usize = 64;

/// Density denominator: evaluation switches to survivor indices once fewer
/// than `rows / SELECTION_VECTOR_DENSITY_DEN` rows remain undecided.
const SELECTION_VECTOR_DENSITY_DEN: usize = 8;

/// Evaluates `predicate` over the whole batch into a keep-mask, with
/// selection-vector short-circuiting: AND conjuncts are ordered
/// most-selective-first (estimates only — results are order-free), start
/// as full-width vectorised mask kernels, and once the surviving density
/// drops below `1/8` (on batches of at least 64 rows) the remaining
/// conjuncts evaluate only over the surviving row indices.
/// Disjunctions are handled symmetrically — once most rows are already
/// accepted, remaining disjuncts evaluate only over the still-undecided
/// rows. Predicates are pure, so the result is bit-identical to
/// [`selection_mask_full`] (pinned by a regression test).
///
/// # Errors
///
/// Returns [`ExecError::MissingAttr`] when the predicate references an
/// attribute the batch does not carry.
pub fn selection_mask(predicate: &Predicate, batch: &Batch) -> Result<Vec<bool>, ExecError> {
    let mut mask = vec![true; batch.rows()];
    and_predicate_adaptive(predicate, batch, &mut mask)?;
    Ok(mask)
}

/// Evaluates `predicate` into a keep-mask with full-width vectorised
/// kernels only — every conjunct and disjunct touches every row. This is
/// the pre-selection-vector behaviour, kept public as the differential and
/// benchmark baseline for [`selection_mask`].
///
/// # Errors
///
/// Returns [`ExecError::MissingAttr`] when the predicate references an
/// attribute the batch does not carry.
pub fn selection_mask_full(predicate: &Predicate, batch: &Batch) -> Result<Vec<bool>, ExecError> {
    let mut mask = vec![true; batch.rows()];
    and_predicate(predicate, batch, &mut mask)?;
    Ok(mask)
}

/// Evaluates `predicate` over the whole batch into a keep-mask.
fn predicate_mask(predicate: &Predicate, batch: &Batch) -> Result<Vec<bool>, ExecError> {
    selection_mask(predicate, batch)
}

/// ANDs `predicate`'s value into `mask`, column-at-a-time (full-width
/// kernels, no selection vectors).
fn and_predicate(p: &Predicate, b: &Batch, mask: &mut [bool]) -> Result<(), ExecError> {
    match p {
        Predicate::True => Ok(()),
        Predicate::Cmp(c) => {
            let li = b
                .index_of(&c.attr)
                .ok_or_else(|| ExecError::MissingAttr(c.attr.clone()))?;
            match &c.rhs {
                Rhs::Literal(v) => b.column(li).compare_literal_and(c.op, v, mask),
                Rhs::Attr(a) => {
                    let ri = b
                        .index_of(a)
                        .ok_or_else(|| ExecError::MissingAttr(a.clone()))?;
                    b.column(li).compare_column_and(c.op, b.column(ri), mask);
                }
            }
            Ok(())
        }
        Predicate::And(ps) => {
            for p in ps {
                and_predicate(p, b, mask)?;
            }
            Ok(())
        }
        Predicate::Or(ps) => {
            let mut any = vec![false; mask.len()];
            for p in ps {
                let mut sub = vec![true; mask.len()];
                and_predicate(p, b, &mut sub)?;
                for (a, s) in any.iter_mut().zip(&sub) {
                    *a = *a || *s;
                }
            }
            for (m, a) in mask.iter_mut().zip(&any) {
                *m = *m && *a;
            }
            Ok(())
        }
    }
}

/// Like [`and_predicate`], but switches from full-width kernels to
/// survivor-index (selection-vector) evaluation when density drops.
fn and_predicate_adaptive(p: &Predicate, b: &Batch, mask: &mut [bool]) -> Result<(), ExecError> {
    let rows = mask.len();
    match p {
        Predicate::True | Predicate::Cmp(_) => and_predicate(p, b, mask),
        Predicate::And(ps) => {
            // Conjunct intersection commutes, so the evaluation order is
            // free to choose — but only after every attribute offset has
            // been resolved in the predicate's own order, which pins the
            // surfaced `MissingAttr` error to what the full-width path
            // reports.
            resolve_attrs(p, b)?;
            let mut order: Vec<(f64, usize)> = ps
                .iter()
                .enumerate()
                .map(|(i, p)| (selectivity_estimate(p, b), i))
                .collect();
            order.sort_by(|x, y| x.0.total_cmp(&y.0));
            let mut idx: Option<Vec<usize>> = None;
            for (k, &(_, ci)) in order.iter().enumerate() {
                let p = &ps[ci];
                match &mut idx {
                    Some(idx) => retain_where(p, b, idx)?,
                    None => {
                        and_predicate_adaptive(p, b, mask)?;
                        if rows >= SELECTION_VECTOR_MIN_ROWS && k + 1 < ps.len() {
                            idx = sparse_indices(mask, true);
                        }
                    }
                }
            }
            if let Some(idx) = idx {
                mask.fill(false);
                for i in idx {
                    mask[i] = true;
                }
            }
            Ok(())
        }
        Predicate::Or(ps) => {
            // `any` accumulates accepted rows; once most rows are accepted,
            // the remaining disjuncts only visit the still-undecided ones.
            let mut any = vec![false; rows];
            let mut idx: Option<Vec<usize>> = None;
            for (k, p) in ps.iter().enumerate() {
                match &mut idx {
                    Some(undecided) => {
                        let mut holds = undecided.clone();
                        retain_where(p, b, &mut holds)?;
                        for &i in &holds {
                            any[i] = true;
                        }
                        undecided.retain(|&i| !any[i]);
                    }
                    None => {
                        let mut sub = vec![true; rows];
                        and_predicate_adaptive(p, b, &mut sub)?;
                        for (a, s) in any.iter_mut().zip(&sub) {
                            *a = *a || *s;
                        }
                        if rows >= SELECTION_VECTOR_MIN_ROWS && k + 1 < ps.len() {
                            idx = sparse_indices(&any, false);
                        }
                    }
                }
            }
            for (m, a) in mask.iter_mut().zip(&any) {
                *m = *m && *a;
            }
            Ok(())
        }
    }
}

/// Resolves every attribute offset in `p` — in the predicate's own
/// left-to-right order, without evaluating anything — and returns the first
/// failure. Both evaluation paths surface resolution errors regardless of
/// mask state, so running this before reordering conjuncts keeps the
/// adaptive path's error behaviour identical to the full-width kernels'.
fn resolve_attrs(p: &Predicate, b: &Batch) -> Result<(), ExecError> {
    match p {
        Predicate::True => Ok(()),
        Predicate::Cmp(c) => {
            b.index_of(&c.attr)
                .ok_or_else(|| ExecError::MissingAttr(c.attr.clone()))?;
            if let Rhs::Attr(a) = &c.rhs {
                b.index_of(a)
                    .ok_or_else(|| ExecError::MissingAttr(a.clone()))?;
            }
            Ok(())
        }
        Predicate::And(ps) | Predicate::Or(ps) => ps.iter().try_for_each(|p| resolve_attrs(p, b)),
    }
}

/// Estimated fraction of rows a predicate keeps, used only to order AND
/// conjuncts most-selective-first. A dictionary-encoded column carries a
/// real distinct count, so `=` on it estimates `1/|dictionary|`; everything
/// else falls back on the classic textbook constants. Estimates never touch
/// results — they only pick which conjunct gets the chance to drop the
/// evaluation into selection-vector mode first.
fn selectivity_estimate(p: &Predicate, b: &Batch) -> f64 {
    match p {
        Predicate::True => 1.0,
        Predicate::Cmp(c) => {
            let distinct = b
                .index_of(&c.attr)
                .and_then(|i| b.column(i).dict_values())
                .map(|v| v.len().max(1) as f64);
            match (&c.rhs, c.op) {
                (Rhs::Literal(_), CompareOp::Eq) => distinct.map_or(0.1, |d| 1.0 / d),
                (Rhs::Literal(_), CompareOp::Ne) => distinct.map_or(0.9, |d| 1.0 - 1.0 / d),
                _ => 1.0 / 3.0,
            }
        }
        Predicate::And(ps) => ps.iter().map(|p| selectivity_estimate(p, b)).product(),
        Predicate::Or(ps) => ps
            .iter()
            .map(|p| selectivity_estimate(p, b))
            .sum::<f64>()
            .min(1.0),
    }
}

/// The indices whose mask entry equals `target`, or `None` as soon as their
/// count reaches the 1-in-[`SELECTION_VECTOR_DENSITY_DEN`] density bound.
/// Deciding *whether* to switch to selection-vector mode and building the
/// vector itself share this single traversal, so a batch that stays dense
/// pays at most one abandoned scan — not a count pass plus a collect pass.
fn sparse_indices(mask: &[bool], target: bool) -> Option<Vec<usize>> {
    let rows = mask.len();
    let mut idx = Vec::with_capacity(rows / SELECTION_VECTOR_DENSITY_DEN + 1);
    for (i, &m) in mask.iter().enumerate() {
        if m == target {
            if (idx.len() + 1) * SELECTION_VECTOR_DENSITY_DEN >= rows {
                return None;
            }
            idx.push(i);
        }
    }
    Some(idx)
}

/// Keeps the rows of `idx` where `p` holds — predicate evaluation in
/// selection-vector mode. Attribute offsets resolve once per comparison
/// (never per row), and the scalar column kernels agree bit-for-bit with
/// their vectorised twins.
fn retain_where(p: &Predicate, b: &Batch, idx: &mut Vec<usize>) -> Result<(), ExecError> {
    match p {
        Predicate::True => Ok(()),
        Predicate::Cmp(c) => {
            let li = b
                .index_of(&c.attr)
                .ok_or_else(|| ExecError::MissingAttr(c.attr.clone()))?;
            match &c.rhs {
                Rhs::Literal(v) => {
                    let col = b.column(li);
                    idx.retain(|&i| col.literal_holds_at(c.op, v, i));
                }
                Rhs::Attr(a) => {
                    let ri = b
                        .index_of(a)
                        .ok_or_else(|| ExecError::MissingAttr(a.clone()))?;
                    let (lc, rc) = (b.column(li), b.column(ri));
                    idx.retain(|&i| lc.column_holds_at(c.op, rc, i));
                }
            }
            Ok(())
        }
        Predicate::And(ps) => {
            for p in ps {
                retain_where(p, b, idx)?;
            }
            Ok(())
        }
        Predicate::Or(ps) => {
            let mut undecided = std::mem::take(idx);
            let mut accepted = Vec::new();
            for p in ps {
                let mut holds = undecided.clone();
                retain_where(p, b, &mut holds)?;
                if !holds.is_empty() {
                    let hold_set: std::collections::HashSet<usize> =
                        holds.iter().copied().collect();
                    undecided.retain(|i| !hold_set.contains(i));
                    accepted.extend(holds);
                }
            }
            accepted.sort_unstable();
            *idx = accepted;
            Ok(())
        }
    }
}

/// Running aggregate state for one group and one aggregate.
#[derive(Debug, Clone, Default)]
struct AggState {
    count: i64,
    sum: i64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    /// Folds one row's value in (`None` for `COUNT(*)`).
    fn feed(&mut self, value: Option<Value>) {
        self.count += 1;
        if let Some(v) = value {
            // Numeric folding treats dates as their day numbers; text
            // contributes only to COUNT/MIN/MAX.
            match &v {
                Value::Int(i) | Value::Date(i) => self.sum += i,
                Value::Text(_) => {}
            }
            if self.min.as_ref().is_none_or(|m| v < *m) {
                self.min = Some(v.clone());
            }
            if self.max.as_ref().is_none_or(|m| v > *m) {
                self.max = Some(v);
            }
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => Value::Int(self.sum),
            AggFunc::Min => self.min.clone().unwrap_or(Value::Int(0)),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Int(0)),
            AggFunc::Avg => Value::Int(if self.count > 0 {
                self.sum / self.count
            } else {
                0
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{parse_query, CompareOp, JoinCondition};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_table(Table::new(
            "Pd",
            [
                AttrRef::new("Pd", "Pid"),
                AttrRef::new("Pd", "name"),
                AttrRef::new("Pd", "Did"),
            ],
            vec![
                vec![Value::Int(1), Value::text("widget"), Value::Int(10)],
                vec![Value::Int(2), Value::text("gadget"), Value::Int(20)],
                vec![Value::Int(3), Value::text("sprocket"), Value::Int(10)],
            ],
        ));
        db.insert_table(Table::new(
            "Div",
            [
                AttrRef::new("Div", "Did"),
                AttrRef::new("Div", "name"),
                AttrRef::new("Div", "city"),
            ],
            vec![
                vec![Value::Int(10), Value::text("west"), Value::text("LA")],
                vec![Value::Int(20), Value::text("east"), Value::text("NY")],
            ],
        ));
        db
    }

    #[test]
    fn paper_query1_shape_executes() {
        let q = parse_query("SELECT Pd.name FROM Pd, Div WHERE Div.city='LA' AND Pd.Did=Div.Did")
            .unwrap();
        let out = execute(&q, &db()).unwrap();
        let mut names: Vec<String> = out.rows().iter().map(|r| r[0].to_string()).collect();
        names.sort();
        assert_eq!(names, ["'sprocket'", "'widget'"]);
    }

    #[test]
    fn select_filters_rows() {
        let e = Expr::select(
            Expr::base("Div"),
            Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
        );
        assert_eq!(execute(&e, &db()).unwrap().len(), 1);
    }

    #[test]
    fn join_is_bag_nested_loop() {
        let e = Expr::join(
            Expr::base("Pd"),
            Expr::base("Div"),
            JoinCondition::on(AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did")),
        );
        let out = execute(&e, &db()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.attrs().len(), 6);
    }

    #[test]
    fn cross_join_multiplies() {
        let e = Expr::join(Expr::base("Pd"), Expr::base("Div"), JoinCondition::cross());
        assert_eq!(execute(&e, &db()).unwrap().len(), 6);
    }

    #[test]
    fn projection_keeps_duplicates() {
        let e = Expr::project(Expr::base("Pd"), [AttrRef::new("Pd", "Did")]);
        let out = execute(&e, &db()).unwrap();
        assert_eq!(out.len(), 3); // two rows share Did=10, both kept
    }

    #[test]
    fn or_predicate() {
        let e = Expr::select(
            Expr::base("Div"),
            Predicate::or([
                Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
                Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "NY"),
            ]),
        );
        assert_eq!(execute(&e, &db()).unwrap().len(), 2);
    }

    #[test]
    fn attr_vs_attr_comparison() {
        let e = Expr::select(
            Expr::base("Pd"),
            Predicate::Cmp(mvdesign_algebra::Comparison {
                attr: AttrRef::new("Pd", "Pid"),
                op: CompareOp::Lt,
                rhs: Rhs::Attr(AttrRef::new("Pd", "Did")),
            }),
        );
        assert_eq!(execute(&e, &db()).unwrap().len(), 3);
    }

    #[test]
    fn missing_relation_errors() {
        let e = Expr::base("Ghost");
        assert!(matches!(
            execute(&e, &db()),
            Err(ExecError::UnknownRelation(_))
        ));
    }

    #[test]
    fn missing_attr_errors() {
        let e = Expr::project(Expr::base("Pd"), [AttrRef::new("Pd", "ghost")]);
        assert!(matches!(execute(&e, &db()), Err(ExecError::MissingAttr(_))));
    }

    #[test]
    fn range_predicates_on_ints() {
        let e = Expr::select(
            Expr::base("Pd"),
            Predicate::cmp(AttrRef::new("Pd", "Pid"), CompareOp::Ge, 2),
        );
        assert_eq!(execute(&e, &db()).unwrap().len(), 2);
    }

    #[test]
    fn projection_shares_columns_with_input() {
        // π over a base scan must not copy column data.
        let db = db();
        let base = db.table("Pd").unwrap();
        let e = Expr::project(Expr::base("Pd"), [AttrRef::new("Pd", "Did")]);
        let out = execute(&e, &db).unwrap();
        assert!(Arc::ptr_eq(
            &base.batch().columns()[2],
            &out.batch().columns()[0]
        ));
    }

    #[test]
    fn mixed_type_predicate_orders_by_variant_tag() {
        // Int values compare below Text values in Value's total order; the
        // batch engine's constant fast path must preserve that.
        let mut db = Database::new();
        db.insert_table(Table::new(
            "M",
            [AttrRef::new("M", "x")],
            vec![vec![Value::Int(5)], vec![Value::text("a")]],
        ));
        let e = Expr::select(
            Expr::base("M"),
            Predicate::cmp(AttrRef::new("M", "x"), CompareOp::Lt, "zzz"),
        );
        // Int(5) < Text("zzz") by tag; Text("a") < Text("zzz") lexically.
        assert_eq!(execute(&e, &db).unwrap().len(), 2);
    }
}

#[cfg(test)]
mod join_algo_tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> = (0..40)
            .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
            .collect();
        db.insert_table(Table::new(
            "L",
            [AttrRef::new("L", "id"), AttrRef::new("L", "k")],
            rows,
        ));
        let rows: Vec<Vec<Value>> = (0..25)
            .map(|i| vec![Value::Int(i % 7), Value::text(format!("v{}", i % 3))])
            .collect();
        db.insert_table(Table::new(
            "R",
            [AttrRef::new("R", "k"), AttrRef::new("R", "tag")],
            rows,
        ));
        db
    }

    fn join_expr() -> Arc<Expr> {
        Expr::join(
            Expr::base("L"),
            Expr::base("R"),
            mvdesign_algebra::JoinCondition::on(AttrRef::new("L", "k"), AttrRef::new("R", "k")),
        )
    }

    #[test]
    fn all_join_algorithms_agree() {
        let db = db();
        let e = join_expr();
        let nested = execute_with(&e, &db, JoinAlgo::NestedLoop)
            .expect("nested")
            .canonicalized();
        let hash = execute_with(&e, &db, JoinAlgo::Hash)
            .expect("hash")
            .canonicalized();
        let merge = execute_with(&e, &db, JoinAlgo::SortMerge)
            .expect("merge")
            .canonicalized();
        assert!(!nested.is_empty());
        assert_eq!(nested.rows(), hash.rows());
        assert_eq!(nested.rows(), merge.rows());
    }

    #[test]
    fn cross_products_agree_too() {
        let db = db();
        let e = Expr::join(
            Expr::base("L"),
            Expr::base("R"),
            mvdesign_algebra::JoinCondition::cross(),
        );
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
            let out = execute_with(&e, &db, algo).expect("executes");
            assert_eq!(out.len(), 40 * 25, "{algo:?}");
        }
    }

    #[test]
    fn duplicates_multiply_in_every_algorithm() {
        // Two identical keys on each side ⇒ 4 output rows.
        let mut db = Database::new();
        db.insert_table(Table::new(
            "A",
            [AttrRef::new("A", "k")],
            vec![vec![Value::Int(1)], vec![Value::Int(1)]],
        ));
        db.insert_table(Table::new(
            "B",
            [AttrRef::new("B", "k")],
            vec![vec![Value::Int(1)], vec![Value::Int(1)]],
        ));
        let e = Expr::join(
            Expr::base("A"),
            Expr::base("B"),
            mvdesign_algebra::JoinCondition::on(AttrRef::new("A", "k"), AttrRef::new("B", "k")),
        );
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
            assert_eq!(
                execute_with(&e, &db, algo).expect("executes").len(),
                4,
                "{algo:?}"
            );
        }
    }

    #[test]
    fn empty_inputs_yield_empty_joins() {
        let mut db = db();
        db.insert_table(Table::new(
            "L",
            [AttrRef::new("L", "id"), AttrRef::new("L", "k")],
            vec![],
        ));
        let e = join_expr();
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
            assert!(
                execute_with(&e, &db, algo).expect("executes").is_empty(),
                "{algo:?}"
            );
        }
    }

    #[test]
    fn text_keyed_joins_agree_across_algorithms() {
        // Exercise the non-integer key path (Text columns).
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::text(format!("k{}", i % 5)), Value::Int(i)])
            .collect();
        db.insert_table(Table::new(
            "A",
            [AttrRef::new("A", "k"), AttrRef::new("A", "v")],
            rows,
        ));
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::text(format!("k{}", i % 4))])
            .collect();
        db.insert_table(Table::new("B", [AttrRef::new("B", "k")], rows));
        let e = Expr::join(
            Expr::base("A"),
            Expr::base("B"),
            mvdesign_algebra::JoinCondition::on(AttrRef::new("A", "k"), AttrRef::new("B", "k")),
        );
        let nested = execute_with(&e, &db, JoinAlgo::NestedLoop)
            .expect("nested")
            .canonicalized();
        assert!(!nested.is_empty());
        for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge] {
            let out = execute_with(&e, &db, algo)
                .expect("executes")
                .canonicalized();
            assert_eq!(nested.rows(), out.rows(), "{algo:?}");
        }
    }
}
