//! Expression evaluation over in-memory tables — columnar batch execution.
//!
//! Every operator is a *batch kernel*: attribute offsets are resolved once
//! per operator (not once per row), predicates evaluate as vectorised
//! comparisons over typed columns, and joins produce index vectors that a
//! single typed [`Batch::gather`] turns into output columns. The
//! tuple-at-a-time implementation this replaced survives unchanged in
//! [`crate::row_reference`] as the differential baseline; both engines are
//! property-tested to produce identical bags.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use mvdesign_algebra::{
    AggExpr, AggFunc, AttrRef, Expr, JoinCondition, Predicate, RelName, Rhs, Value,
};

use crate::batch::{Batch, Column};
use crate::table::{Database, Table};

/// Errors raised while executing an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A base relation has no table in the database.
    UnknownRelation(RelName),
    /// An operator referenced an attribute its input does not carry.
    MissingAttr(AttrRef),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownRelation(r) => write!(f, "no table for relation `{r}`"),
            ExecError::MissingAttr(a) => write!(f, "input carries no attribute `{a}`"),
        }
    }
}

impl Error for ExecError {}

/// The physical join algorithm used by [`execute_with`].
///
/// All three produce identical bags; they differ in the I/O pattern the cost
/// models charge for (`PaperCostModel` assumes `NestedLoop`,
/// `NestedLoopCostModel`/`SortMergeCostModel` the alternatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgo {
    /// Naive nested loop — the paper's assumption.
    #[default]
    NestedLoop,
    /// Build a hash table on the right input, probe with the left.
    Hash,
    /// Sort both inputs on the join key and merge.
    SortMerge,
}

/// Evaluates an SPJ expression against a database, producing a result
/// table with bag semantics.
///
/// Selection is a linear scan, join is a naive nested loop, projection keeps
/// duplicates — exactly the operator algorithms the paper's cost model
/// assumes, executed as columnar batch kernels. Use [`execute_with`] to pick
/// a different join algorithm.
///
/// # Errors
///
/// Returns [`ExecError`] when a base relation is missing from the database
/// or an attribute reference cannot be resolved.
pub fn execute(expr: &Arc<Expr>, db: &Database) -> Result<Table, ExecError> {
    execute_with(expr, db, JoinAlgo::NestedLoop)
}

/// Like [`execute`], with an explicit physical join algorithm.
///
/// # Errors
///
/// Returns [`ExecError`] when a base relation is missing from the database
/// or an attribute reference cannot be resolved.
pub fn execute_with(expr: &Arc<Expr>, db: &Database, algo: JoinAlgo) -> Result<Table, ExecError> {
    match &**expr {
        Expr::Base(name) => db
            .table(name.as_str())
            .cloned()
            .ok_or_else(|| ExecError::UnknownRelation(name.clone())),
        _ => {
            let batch = exec_batch(expr, db, algo)?;
            Ok(Table::from_batch(op_label(expr), batch))
        }
    }
}

/// The operator glyph used as the result-table name (matches the paper's
/// notation and the row engine's historical output).
pub(crate) fn op_label(expr: &Expr) -> &'static str {
    match expr {
        Expr::Base(_) => "scan",
        Expr::Select { .. } => "σ",
        Expr::Project { .. } => "π",
        Expr::Join { .. } => "⋈",
        Expr::Aggregate { .. } => "γ",
    }
}

/// Recursive batch evaluation — the engine's spine.
pub(crate) fn exec_batch(
    expr: &Arc<Expr>,
    db: &Database,
    algo: JoinAlgo,
) -> Result<Batch, ExecError> {
    match &**expr {
        Expr::Base(name) => db
            .table(name.as_str())
            .map(|t| t.batch().clone())
            .ok_or_else(|| ExecError::UnknownRelation(name.clone())),
        Expr::Select { input, predicate } => {
            let b = exec_batch(input, db, algo)?;
            select_batch(&b, predicate)
        }
        Expr::Project { input, attrs } => {
            let b = exec_batch(input, db, algo)?;
            project_batch(&b, attrs)
        }
        Expr::Join { left, right, on } => {
            let l = exec_batch(left, db, algo)?;
            let r = exec_batch(right, db, algo)?;
            join_batch(&l, &r, on, algo)
        }
        Expr::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let b = exec_batch(input, db, algo)?;
            aggregate_batch(&b, group_by, aggs)
        }
    }
}

/// Selection kernel: one vectorised predicate pass, one gather.
pub(crate) fn select_batch(batch: &Batch, predicate: &Predicate) -> Result<Batch, ExecError> {
    let mask = predicate_mask(predicate, batch)?;
    Ok(batch.filter(&mask))
}

/// Projection kernel: resolves attribute offsets once and re-shares the
/// picked columns — O(#attrs), no row movement at all.
pub(crate) fn project_batch(batch: &Batch, attrs: &[AttrRef]) -> Result<Batch, ExecError> {
    let idx: Vec<usize> = attrs
        .iter()
        .map(|a| {
            batch
                .index_of(a)
                .ok_or_else(|| ExecError::MissingAttr(a.clone()))
        })
        .collect::<Result<_, _>>()?;
    Ok(batch.select_columns(&idx))
}

/// Join kernel: resolves the condition to column offsets once, produces
/// matching (left, right) index vectors under the requested algorithm, then
/// gathers both sides and glues them.
pub(crate) fn join_batch(
    l: &Batch,
    r: &Batch,
    on: &JoinCondition,
    algo: JoinAlgo,
) -> Result<Batch, ExecError> {
    // Resolve each condition pair to (left index, right index).
    let mut pairs = Vec::with_capacity(on.pairs().len());
    for (a, b) in on.pairs() {
        let resolved = match (l.index_of(a), r.index_of(b)) {
            (Some(la), Some(rb)) => (la, rb),
            _ => match (l.index_of(b), r.index_of(a)) {
                (Some(lb), Some(ra)) => (lb, ra),
                _ => return Err(ExecError::MissingAttr(a.clone())),
            },
        };
        pairs.push(resolved);
    }
    let lcols: Vec<&Column> = pairs.iter().map(|&(li, _)| l.column(li)).collect();
    let rcols: Vec<&Column> = pairs.iter().map(|&(_, ri)| r.column(ri)).collect();
    let (lidx, ridx) = match algo {
        JoinAlgo::NestedLoop => nested_loop_indices(l.rows(), r.rows(), &lcols, &rcols),
        JoinAlgo::Hash => hash_indices(l.rows(), r.rows(), &lcols, &rcols),
        JoinAlgo::SortMerge => sort_merge_indices(l.rows(), r.rows(), &lcols, &rcols),
    };
    Ok(Batch::hstack(&l.gather(&lidx), &r.gather(&ridx)))
}

/// Nested loop over row indices; the single-key integer case runs over raw
/// `&[i64]` slices.
fn nested_loop_indices(
    ln: usize,
    rn: usize,
    lcols: &[&Column],
    rcols: &[&Column],
) -> (Vec<usize>, Vec<usize>) {
    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    if let [(lk, rk)] = int_keys(lcols, rcols).as_slice() {
        for (i, a) in lk.iter().enumerate() {
            for (j, b) in rk.iter().enumerate() {
                if a == b {
                    lidx.push(i);
                    ridx.push(j);
                }
            }
        }
        return (lidx, ridx);
    }
    for i in 0..ln {
        for j in 0..rn {
            if lcols.iter().zip(rcols).all(|(lc, rc)| lc.eq_at(i, rc, j)) {
                lidx.push(i);
                ridx.push(j);
            }
        }
    }
    (lidx, ridx)
}

/// Hash join over row indices: build on the right, probe with the left. A
/// cross join hashes everything under the empty key, degenerating
/// gracefully. The single-key integer case hashes raw `i64`s.
fn hash_indices(
    ln: usize,
    rn: usize,
    lcols: &[&Column],
    rcols: &[&Column],
) -> (Vec<usize>, Vec<usize>) {
    use std::collections::HashMap;
    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    if let [(lk, rk)] = int_keys(lcols, rcols).as_slice() {
        let mut built: HashMap<i64, Vec<usize>> = HashMap::new();
        for (j, b) in rk.iter().enumerate() {
            built.entry(*b).or_default().push(j);
        }
        for (i, a) in lk.iter().enumerate() {
            if let Some(matches) = built.get(a) {
                for &j in matches {
                    lidx.push(i);
                    ridx.push(j);
                }
            }
        }
        return (lidx, ridx);
    }
    let mut built: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for j in 0..rn {
        let key: Vec<Value> = rcols.iter().map(|c| c.value(j)).collect();
        built.entry(key).or_default().push(j);
    }
    for i in 0..ln {
        let key: Vec<Value> = lcols.iter().map(|c| c.value(i)).collect();
        if let Some(matches) = built.get(&key) {
            for &j in matches {
                lidx.push(i);
                ridx.push(j);
            }
        }
    }
    (lidx, ridx)
}

/// Sort-merge join over row indices: sorts index permutations of both sides
/// by their key columns, then merges group × group.
fn sort_merge_indices(
    ln: usize,
    rn: usize,
    lcols: &[&Column],
    rcols: &[&Column],
) -> (Vec<usize>, Vec<usize>) {
    if lcols.is_empty() {
        // No key to sort on: fall back to the nested loop (cross product).
        return nested_loop_indices(ln, rn, lcols, rcols);
    }
    let key_cmp = |xcols: &[&Column], x: usize, ycols: &[&Column], y: usize| {
        xcols
            .iter()
            .zip(ycols)
            .map(|(xc, yc)| xc.cmp_at(x, yc, y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    };
    let mut ls: Vec<usize> = (0..ln).collect();
    let mut rs: Vec<usize> = (0..rn).collect();
    ls.sort_by(|&a, &b| key_cmp(lcols, a, lcols, b));
    rs.sort_by(|&a, &b| key_cmp(rcols, a, rcols, b));

    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < ls.len() && j < rs.len() {
        match key_cmp(lcols, ls[i], rcols, rs[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Emit the full group × group block.
                let gi_end = (i..ls.len())
                    .take_while(|&x| key_cmp(lcols, ls[x], lcols, ls[i]).is_eq())
                    .last()
                    .expect("group is non-empty")
                    + 1;
                let gj_end = (j..rs.len())
                    .take_while(|&x| key_cmp(rcols, rs[x], rcols, rs[j]).is_eq())
                    .last()
                    .expect("group is non-empty")
                    + 1;
                for &li in &ls[i..gi_end] {
                    for &rj in &rs[j..gj_end] {
                        lidx.push(li);
                        ridx.push(rj);
                    }
                }
                i = gi_end;
                j = gj_end;
            }
        }
    }
    (lidx, ridx)
}

/// When every key pair is a same-variant integer-backed pair (`Int`/`Int` or
/// `Date`/`Date`), returns the raw slices; empty otherwise. Kernels use the
/// single-pair case as their fast path.
fn int_keys<'a>(lcols: &[&'a Column], rcols: &[&'a Column]) -> Vec<(&'a [i64], &'a [i64])> {
    let mut out = Vec::with_capacity(lcols.len());
    for (lc, rc) in lcols.iter().zip(rcols) {
        match (lc, rc) {
            (Column::Int(a), Column::Int(b)) | (Column::Date(a), Column::Date(b)) => {
                out.push((a.as_slice(), b.as_slice()));
            }
            _ => return Vec::new(),
        }
    }
    out
}

/// Hash-aggregation kernel: offsets resolved once, keys and accumulator
/// feeds read straight from the columns, output built column-wise.
pub(crate) fn aggregate_batch(
    batch: &Batch,
    group_by: &[AttrRef],
    aggs: &[AggExpr],
) -> Result<Batch, ExecError> {
    let gcols: Vec<&Column> = group_by
        .iter()
        .map(|a| {
            batch
                .index_of(a)
                .map(|i| batch.column(i))
                .ok_or_else(|| ExecError::MissingAttr(a.clone()))
        })
        .collect::<Result<_, _>>()?;
    let acols: Vec<Option<&Column>> = aggs
        .iter()
        .map(|a| match &a.input {
            Some(attr) => batch
                .index_of(attr)
                .map(|i| Some(batch.column(i)))
                .ok_or_else(|| ExecError::MissingAttr(attr.clone())),
            None => Ok(None),
        })
        .collect::<Result<_, _>>()?;

    // BTreeMap keeps group output deterministic (sorted by key), matching
    // the row reference.
    let mut groups: BTreeMap<Vec<Value>, Vec<AggState>> = BTreeMap::new();
    for i in 0..batch.rows() {
        let key: Vec<Value> = gcols.iter().map(|c| c.value(i)).collect();
        let states = groups
            .entry(key)
            .or_insert_with(|| vec![AggState::default(); aggs.len()]);
        for (state, col) in states.iter_mut().zip(&acols) {
            state.feed(col.map(|c| c.value(i)));
        }
    }

    let mut attrs = group_by.to_vec();
    attrs.extend(aggs.iter().map(|a| a.output_attr()));
    let mut columns: Vec<Column> = attrs.iter().map(|_| Column::empty()).collect();
    let n_groups = groups.len();
    for (key, states) in groups {
        for (col, v) in columns.iter_mut().zip(key) {
            col.push(v);
        }
        for ((col, state), agg) in columns[group_by.len()..].iter_mut().zip(&states).zip(aggs) {
            col.push(state.finish(agg.func));
        }
    }
    let columns = columns.into_iter().map(Arc::new).collect();
    let out = Batch::new(attrs, columns);
    debug_assert_eq!(out.rows(), n_groups);
    Ok(out)
}

/// Computes `definition` and stores the result under `name`, so later
/// queries rewritten against the view (see `mvdesign-core`'s `ViewCatalog`)
/// can read it as a base table. The stored table keeps the definition's
/// qualified attributes and its columnar layout — no row materialization.
///
/// # Errors
///
/// Propagates [`ExecError`] from evaluating the definition.
pub fn materialize_view(
    name: impl Into<RelName>,
    definition: &Arc<Expr>,
    db: &mut Database,
) -> Result<(), ExecError> {
    let result = execute(definition, db)?;
    db.insert_table(Table::from_batch(name, result.into_batch()));
    Ok(())
}

/// Evaluates `predicate` over the whole batch into a keep-mask.
fn predicate_mask(predicate: &Predicate, batch: &Batch) -> Result<Vec<bool>, ExecError> {
    let mut mask = vec![true; batch.rows()];
    and_predicate(predicate, batch, &mut mask)?;
    Ok(mask)
}

/// ANDs `predicate`'s value into `mask`, column-at-a-time.
fn and_predicate(p: &Predicate, b: &Batch, mask: &mut [bool]) -> Result<(), ExecError> {
    match p {
        Predicate::True => Ok(()),
        Predicate::Cmp(c) => {
            let li = b
                .index_of(&c.attr)
                .ok_or_else(|| ExecError::MissingAttr(c.attr.clone()))?;
            match &c.rhs {
                Rhs::Literal(v) => b.column(li).compare_literal_and(c.op, v, mask),
                Rhs::Attr(a) => {
                    let ri = b
                        .index_of(a)
                        .ok_or_else(|| ExecError::MissingAttr(a.clone()))?;
                    b.column(li).compare_column_and(c.op, b.column(ri), mask);
                }
            }
            Ok(())
        }
        Predicate::And(ps) => {
            for p in ps {
                and_predicate(p, b, mask)?;
            }
            Ok(())
        }
        Predicate::Or(ps) => {
            let mut any = vec![false; mask.len()];
            for p in ps {
                let mut sub = vec![true; mask.len()];
                and_predicate(p, b, &mut sub)?;
                for (a, s) in any.iter_mut().zip(&sub) {
                    *a = *a || *s;
                }
            }
            for (m, a) in mask.iter_mut().zip(&any) {
                *m = *m && *a;
            }
            Ok(())
        }
    }
}

/// Running aggregate state for one group and one aggregate.
#[derive(Debug, Clone, Default)]
struct AggState {
    count: i64,
    sum: i64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    /// Folds one row's value in (`None` for `COUNT(*)`).
    fn feed(&mut self, value: Option<Value>) {
        self.count += 1;
        if let Some(v) = value {
            // Numeric folding treats dates as their day numbers; text
            // contributes only to COUNT/MIN/MAX.
            match &v {
                Value::Int(i) | Value::Date(i) => self.sum += i,
                Value::Text(_) => {}
            }
            if self.min.as_ref().is_none_or(|m| v < *m) {
                self.min = Some(v.clone());
            }
            if self.max.as_ref().is_none_or(|m| v > *m) {
                self.max = Some(v);
            }
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Sum => Value::Int(self.sum),
            AggFunc::Min => self.min.clone().unwrap_or(Value::Int(0)),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Int(0)),
            AggFunc::Avg => Value::Int(if self.count > 0 {
                self.sum / self.count
            } else {
                0
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{parse_query, CompareOp, JoinCondition};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_table(Table::new(
            "Pd",
            [
                AttrRef::new("Pd", "Pid"),
                AttrRef::new("Pd", "name"),
                AttrRef::new("Pd", "Did"),
            ],
            vec![
                vec![Value::Int(1), Value::text("widget"), Value::Int(10)],
                vec![Value::Int(2), Value::text("gadget"), Value::Int(20)],
                vec![Value::Int(3), Value::text("sprocket"), Value::Int(10)],
            ],
        ));
        db.insert_table(Table::new(
            "Div",
            [
                AttrRef::new("Div", "Did"),
                AttrRef::new("Div", "name"),
                AttrRef::new("Div", "city"),
            ],
            vec![
                vec![Value::Int(10), Value::text("west"), Value::text("LA")],
                vec![Value::Int(20), Value::text("east"), Value::text("NY")],
            ],
        ));
        db
    }

    #[test]
    fn paper_query1_shape_executes() {
        let q = parse_query("SELECT Pd.name FROM Pd, Div WHERE Div.city='LA' AND Pd.Did=Div.Did")
            .unwrap();
        let out = execute(&q, &db()).unwrap();
        let mut names: Vec<String> = out.rows().iter().map(|r| r[0].to_string()).collect();
        names.sort();
        assert_eq!(names, ["'sprocket'", "'widget'"]);
    }

    #[test]
    fn select_filters_rows() {
        let e = Expr::select(
            Expr::base("Div"),
            Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
        );
        assert_eq!(execute(&e, &db()).unwrap().len(), 1);
    }

    #[test]
    fn join_is_bag_nested_loop() {
        let e = Expr::join(
            Expr::base("Pd"),
            Expr::base("Div"),
            JoinCondition::on(AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did")),
        );
        let out = execute(&e, &db()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.attrs().len(), 6);
    }

    #[test]
    fn cross_join_multiplies() {
        let e = Expr::join(Expr::base("Pd"), Expr::base("Div"), JoinCondition::cross());
        assert_eq!(execute(&e, &db()).unwrap().len(), 6);
    }

    #[test]
    fn projection_keeps_duplicates() {
        let e = Expr::project(Expr::base("Pd"), [AttrRef::new("Pd", "Did")]);
        let out = execute(&e, &db()).unwrap();
        assert_eq!(out.len(), 3); // two rows share Did=10, both kept
    }

    #[test]
    fn or_predicate() {
        let e = Expr::select(
            Expr::base("Div"),
            Predicate::or([
                Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
                Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "NY"),
            ]),
        );
        assert_eq!(execute(&e, &db()).unwrap().len(), 2);
    }

    #[test]
    fn attr_vs_attr_comparison() {
        let e = Expr::select(
            Expr::base("Pd"),
            Predicate::Cmp(mvdesign_algebra::Comparison {
                attr: AttrRef::new("Pd", "Pid"),
                op: CompareOp::Lt,
                rhs: Rhs::Attr(AttrRef::new("Pd", "Did")),
            }),
        );
        assert_eq!(execute(&e, &db()).unwrap().len(), 3);
    }

    #[test]
    fn missing_relation_errors() {
        let e = Expr::base("Ghost");
        assert!(matches!(
            execute(&e, &db()),
            Err(ExecError::UnknownRelation(_))
        ));
    }

    #[test]
    fn missing_attr_errors() {
        let e = Expr::project(Expr::base("Pd"), [AttrRef::new("Pd", "ghost")]);
        assert!(matches!(execute(&e, &db()), Err(ExecError::MissingAttr(_))));
    }

    #[test]
    fn range_predicates_on_ints() {
        let e = Expr::select(
            Expr::base("Pd"),
            Predicate::cmp(AttrRef::new("Pd", "Pid"), CompareOp::Ge, 2),
        );
        assert_eq!(execute(&e, &db()).unwrap().len(), 2);
    }

    #[test]
    fn projection_shares_columns_with_input() {
        // π over a base scan must not copy column data.
        let db = db();
        let base = db.table("Pd").unwrap();
        let e = Expr::project(Expr::base("Pd"), [AttrRef::new("Pd", "Did")]);
        let out = execute(&e, &db).unwrap();
        assert!(Arc::ptr_eq(
            &base.batch().columns()[2],
            &out.batch().columns()[0]
        ));
    }

    #[test]
    fn mixed_type_predicate_orders_by_variant_tag() {
        // Int values compare below Text values in Value's total order; the
        // batch engine's constant fast path must preserve that.
        let mut db = Database::new();
        db.insert_table(Table::new(
            "M",
            [AttrRef::new("M", "x")],
            vec![vec![Value::Int(5)], vec![Value::text("a")]],
        ));
        let e = Expr::select(
            Expr::base("M"),
            Predicate::cmp(AttrRef::new("M", "x"), CompareOp::Lt, "zzz"),
        );
        // Int(5) < Text("zzz") by tag; Text("a") < Text("zzz") lexically.
        assert_eq!(execute(&e, &db).unwrap().len(), 2);
    }
}

#[cfg(test)]
mod join_algo_tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> = (0..40)
            .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
            .collect();
        db.insert_table(Table::new(
            "L",
            [AttrRef::new("L", "id"), AttrRef::new("L", "k")],
            rows,
        ));
        let rows: Vec<Vec<Value>> = (0..25)
            .map(|i| vec![Value::Int(i % 7), Value::text(format!("v{}", i % 3))])
            .collect();
        db.insert_table(Table::new(
            "R",
            [AttrRef::new("R", "k"), AttrRef::new("R", "tag")],
            rows,
        ));
        db
    }

    fn join_expr() -> Arc<Expr> {
        Expr::join(
            Expr::base("L"),
            Expr::base("R"),
            mvdesign_algebra::JoinCondition::on(AttrRef::new("L", "k"), AttrRef::new("R", "k")),
        )
    }

    #[test]
    fn all_join_algorithms_agree() {
        let db = db();
        let e = join_expr();
        let nested = execute_with(&e, &db, JoinAlgo::NestedLoop)
            .expect("nested")
            .canonicalized();
        let hash = execute_with(&e, &db, JoinAlgo::Hash)
            .expect("hash")
            .canonicalized();
        let merge = execute_with(&e, &db, JoinAlgo::SortMerge)
            .expect("merge")
            .canonicalized();
        assert!(!nested.is_empty());
        assert_eq!(nested.rows(), hash.rows());
        assert_eq!(nested.rows(), merge.rows());
    }

    #[test]
    fn cross_products_agree_too() {
        let db = db();
        let e = Expr::join(
            Expr::base("L"),
            Expr::base("R"),
            mvdesign_algebra::JoinCondition::cross(),
        );
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
            let out = execute_with(&e, &db, algo).expect("executes");
            assert_eq!(out.len(), 40 * 25, "{algo:?}");
        }
    }

    #[test]
    fn duplicates_multiply_in_every_algorithm() {
        // Two identical keys on each side ⇒ 4 output rows.
        let mut db = Database::new();
        db.insert_table(Table::new(
            "A",
            [AttrRef::new("A", "k")],
            vec![vec![Value::Int(1)], vec![Value::Int(1)]],
        ));
        db.insert_table(Table::new(
            "B",
            [AttrRef::new("B", "k")],
            vec![vec![Value::Int(1)], vec![Value::Int(1)]],
        ));
        let e = Expr::join(
            Expr::base("A"),
            Expr::base("B"),
            mvdesign_algebra::JoinCondition::on(AttrRef::new("A", "k"), AttrRef::new("B", "k")),
        );
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
            assert_eq!(
                execute_with(&e, &db, algo).expect("executes").len(),
                4,
                "{algo:?}"
            );
        }
    }

    #[test]
    fn empty_inputs_yield_empty_joins() {
        let mut db = db();
        db.insert_table(Table::new(
            "L",
            [AttrRef::new("L", "id"), AttrRef::new("L", "k")],
            vec![],
        ));
        let e = join_expr();
        for algo in [JoinAlgo::NestedLoop, JoinAlgo::Hash, JoinAlgo::SortMerge] {
            assert!(
                execute_with(&e, &db, algo).expect("executes").is_empty(),
                "{algo:?}"
            );
        }
    }

    #[test]
    fn text_keyed_joins_agree_across_algorithms() {
        // Exercise the non-integer key path (Text columns).
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::text(format!("k{}", i % 5)), Value::Int(i)])
            .collect();
        db.insert_table(Table::new(
            "A",
            [AttrRef::new("A", "k"), AttrRef::new("A", "v")],
            rows,
        ));
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::text(format!("k{}", i % 4))])
            .collect();
        db.insert_table(Table::new("B", [AttrRef::new("B", "k")], rows));
        let e = Expr::join(
            Expr::base("A"),
            Expr::base("B"),
            mvdesign_algebra::JoinCondition::on(AttrRef::new("A", "k"), AttrRef::new("B", "k")),
        );
        let nested = execute_with(&e, &db, JoinAlgo::NestedLoop)
            .expect("nested")
            .canonicalized();
        assert!(!nested.is_empty());
        for algo in [JoinAlgo::Hash, JoinAlgo::SortMerge] {
            let out = execute_with(&e, &db, algo)
                .expect("executes")
                .canonicalized();
            assert_eq!(nested.rows(), out.rows(), "{algo:?}");
        }
    }
}
