//! Block-I/O simulation: execute a plan while counting the block accesses
//! the paper's cost model charges for.
//!
//! Accounting is per *logical batch*: each operator runs as one columnar
//! kernel call and is charged for its whole input/output in one step.
//! Because every charge is a function of row counts alone, the totals are
//! bit-identical to what the tuple-at-a-time engine reported — and stay
//! pinned across storage changes (dictionary encoding, selection vectors,
//! paged storage) that alter how a batch is represented but not how many
//! rows flow through each operator.
//!
//! The same discipline makes the totals independent of parallel execution:
//! morsel kernels produce each operator's output by concatenating
//! per-morsel partials **in morsel order** (never completion order), so an
//! operator's row count — and with it every charge — is identical at any
//! thread count or interleaving. Charges are accumulated per operator in
//! plan (post-)order and folded into the report at the end, so the
//! accounting path itself has no order left to vary; a regression test
//! pins the totals at `threads = 1, 2, 8`.
//!
//! Since the paged-storage refactor the simulator carries a second,
//! *measured* accounting mode: [`measure_paged`] snapshots the database's
//! buffer-pool miss counters around each operator kernel and records the
//! delta in that operator's [`OpCharge`], next to the paper's per-batch
//! charges. A pool miss is a page actually decoded from memory-or-spill —
//! the closest physical analogue of the block read the model predicts.
//! Miss counts are *measurements*: under a parallel context, which worker
//! first pins a page (and whether eviction struck between two pins)
//! depends on scheduling, so unlike the modelled charges they may vary
//! run-to-run and are never asserted exactly under parallelism. Under
//! [`measure`]/[`measure_with`] the miss field is always zero, keeping the
//! modelled reports fully deterministic.

use std::collections::BTreeMap;
use std::sync::Arc;

use mvdesign_algebra::Expr;

use crate::exec::{
    aggregate_view, join_view, op_label, project_view, select_view, ExecContext, View,
};
use crate::storage::BufferPool;
use crate::table::{Database, Table};
use crate::{ExecError, JoinAlgo};

/// One operator's charge, recorded in plan (post-)order. The final report
/// is the fold of these in recording order — a deterministic reduction no
/// matter how the kernels inside the operator were scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCharge {
    /// The operator's display label (`σ`, `π`, `⋈`, `γ`).
    pub op: &'static str,
    /// Modelled blocks read (the paper's per-batch charge).
    pub read: f64,
    /// Modelled blocks written for the operator's output.
    pub written: f64,
    /// Buffer-pool misses observed while the operator's kernel ran —
    /// pages actually decoded from memory-or-spill. Always zero outside
    /// [`measure_paged`]; a measurement (not a model) inside it.
    pub pool_misses: u64,
}

impl OpCharge {
    /// Modelled total block accesses for this operator.
    pub fn total(&self) -> f64 {
        self.read + self.written
    }
}

/// Observed I/O of one plan execution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IoReport {
    /// Blocks read by selections, projections and join scans.
    pub blocks_read: f64,
    /// Blocks written for operator outputs.
    pub blocks_written: f64,
    /// Rows in the final result.
    pub rows_out: usize,
    /// Per-operator charges in plan (post-)order.
    charges: Vec<OpCharge>,
}

impl IoReport {
    /// Total block accesses — the unit of every cost in the paper.
    pub fn total(&self) -> f64 {
        self.blocks_read + self.blocks_written
    }

    /// The per-operator charges in plan (post-)order.
    pub fn charges(&self) -> &[OpCharge] {
        &self.charges
    }

    /// Charges summed per operator label — one [`OpCharge`] per distinct
    /// `op`, keyed and ordered by the label.
    pub fn per_operator(&self) -> BTreeMap<&'static str, OpCharge> {
        let mut per_op: BTreeMap<&'static str, OpCharge> = BTreeMap::new();
        for c in &self.charges {
            let e = per_op.entry(c.op).or_insert(OpCharge {
                op: c.op,
                ..OpCharge::default()
            });
            e.read += c.read;
            e.written += c.written;
            e.pool_misses += c.pool_misses;
        }
        per_op
    }
}

/// Executes `expr` against `db`, counting block accesses under the paper's
/// operator disciplines with `records_per_block` records packed per block:
///
/// * selection / projection read every input block and write their output;
/// * nested-loop join reads every (outer block, inner block) pair and writes
///   its output.
///
/// Returns the result table together with the I/O report, so callers can
/// check both *what* was computed and *how much* it cost. The observed cost
/// is what the `mvdesign-cost` crate's `PaperCostModel` estimates, evaluated on
/// actual (not estimated) cardinalities.
///
/// # Errors
///
/// Propagates [`ExecError`] from plan execution.
pub fn measure(
    expr: &Arc<Expr>,
    db: &Database,
    records_per_block: f64,
) -> Result<(Table, IoReport), ExecError> {
    measure_with(expr, db, records_per_block, &ExecContext::default())
}

/// Like [`measure`], running the plan's kernels under an explicit
/// [`ExecContext`]. Charges are per logical batch — never per morsel — so
/// the report is bit-identical for every thread count and morsel size
/// (only wall-clock changes). Pool-miss fields stay zero; use
/// [`measure_paged`] for the measured mode.
///
/// # Errors
///
/// Propagates [`ExecError`] from plan execution.
pub fn measure_with(
    expr: &Arc<Expr>,
    db: &Database,
    records_per_block: f64,
    ctx: &ExecContext,
) -> Result<(Table, IoReport), ExecError> {
    measure_impl(expr, db, records_per_block, ctx, &[])
}

/// Like [`measure_with`], additionally recording each operator's observed
/// buffer-pool misses (see the module docs) in its [`OpCharge`]. The
/// modelled charges and totals are identical to [`measure_with`]'s; only
/// the `pool_misses` fields differ. Pools are discovered from the
/// database's paged tables; a fully resident database measures all-zero
/// misses.
///
/// # Errors
///
/// Propagates [`ExecError`] from plan execution.
pub fn measure_paged(
    expr: &Arc<Expr>,
    db: &Database,
    records_per_block: f64,
    ctx: &ExecContext,
) -> Result<(Table, IoReport), ExecError> {
    let mut pools: Vec<Arc<BufferPool>> = Vec::new();
    for (_, table) in db.iter() {
        if let Some(pool) = table.pool() {
            if !pools.iter().any(|p| Arc::ptr_eq(p, pool)) {
                pools.push(Arc::clone(pool));
            }
        }
    }
    measure_impl(expr, db, records_per_block, ctx, &pools)
}

fn measure_impl(
    expr: &Arc<Expr>,
    db: &Database,
    records_per_block: f64,
    ctx: &ExecContext,
    pools: &[Arc<BufferPool>],
) -> Result<(Table, IoReport), ExecError> {
    let bf = records_per_block.max(1.0);
    let mut charges: Vec<OpCharge> = Vec::new();
    let view = run(expr, db, bf, ctx, pools, &mut charges)?;
    let batch = view.into_batch();
    let mut report = IoReport {
        rows_out: batch.rows(),
        charges,
        ..IoReport::default()
    };
    for c in &report.charges {
        report.blocks_read += c.read;
        report.blocks_written += c.written;
    }
    let table = match &**expr {
        Expr::Base(name) => Table::from_batch(name.clone(), batch),
        _ => Table::from_batch(op_label(expr), batch),
    };
    Ok((table, report))
}

/// Blocks occupied by `rows` records at `bf` records per block. Charges
/// depend only on row counts, so the columnar engine reports exactly the
/// totals the row engine did.
fn blocks(rows: usize, bf: f64) -> f64 {
    (rows as f64 / bf).ceil()
}

/// Total misses across the measured pools right now.
fn pool_misses(pools: &[Arc<BufferPool>]) -> u64 {
    pools.iter().map(|p| p.stats().misses).sum()
}

fn run(
    expr: &Arc<Expr>,
    db: &Database,
    bf: f64,
    ctx: &ExecContext,
    pools: &[Arc<BufferPool>],
    charges: &mut Vec<OpCharge>,
) -> Result<View, ExecError> {
    match &**expr {
        Expr::Base(name) => db
            .table(name.as_str())
            .map(View::of_table)
            .ok_or_else(|| ExecError::UnknownRelation(name.clone())),
        Expr::Select { input, predicate } => {
            let input = run(input, db, bf, ctx, pools, charges)?;
            let before = pool_misses(pools);
            let out = select_view(&input, predicate, ctx)?;
            charges.push(OpCharge {
                op: op_label(expr),
                read: blocks(input.rows(), bf),
                written: blocks(out.rows(), bf),
                pool_misses: pool_misses(pools) - before,
            });
            Ok(out)
        }
        Expr::Project { input, attrs } => {
            let input = run(input, db, bf, ctx, pools, charges)?;
            let before = pool_misses(pools);
            let out = project_view(&input, attrs)?;
            charges.push(OpCharge {
                op: op_label(expr),
                read: blocks(input.rows(), bf),
                written: blocks(out.rows(), bf),
                pool_misses: pool_misses(pools) - before,
            });
            Ok(out)
        }
        Expr::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let input = run(input, db, bf, ctx, pools, charges)?;
            let before = pool_misses(pools);
            let out = aggregate_view(&input, group_by, aggs, ctx)?;
            charges.push(OpCharge {
                op: op_label(expr),
                read: blocks(input.rows(), bf),
                written: blocks(out.rows(), bf),
                pool_misses: pool_misses(pools) - before,
            });
            Ok(out)
        }
        Expr::Join { left, right, on } => {
            let l = run(left, db, bf, ctx, pools, charges)?;
            let r = run(right, db, bf, ctx, pools, charges)?;
            let before = pool_misses(pools);
            let out = join_view(&l, &r, on, JoinAlgo::NestedLoop, ctx)?;
            charges.push(OpCharge {
                op: op_label(expr),
                read: blocks(l.rows(), bf) * blocks(r.rows(), bf),
                written: blocks(out.rows(), bf),
                pool_misses: pool_misses(pools) - before,
            });
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use mvdesign_algebra::{AttrRef, CompareOp, JoinCondition, Predicate, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int(i), Value::Int(i % 10)])
            .collect();
        db.insert_table(Table::new(
            "R",
            [AttrRef::new("R", "id"), AttrRef::new("R", "k")],
            rows,
        ));
        let rows: Vec<Vec<Value>> = (0..50).map(|i| vec![Value::Int(i % 10)]).collect();
        db.insert_table(Table::new("S", [AttrRef::new("S", "k")], rows));
        db
    }

    #[test]
    fn select_reads_input_blocks() {
        let e = Expr::select(
            Expr::base("R"),
            Predicate::cmp(AttrRef::new("R", "id"), CompareOp::Lt, 10),
        );
        let (out, io) = measure(&e, &db(), 10.0).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(io.blocks_read, 10.0); // 100 rows / 10 per block
        assert_eq!(io.blocks_written, 1.0); // 10 rows out
        assert_eq!(io.total(), 11.0);
    }

    #[test]
    fn join_reads_block_pairs() {
        let e = Expr::join(
            Expr::base("R"),
            Expr::base("S"),
            JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k")),
        );
        let (out, io) = measure(&e, &db(), 10.0).unwrap();
        assert_eq!(out.len(), 500); // 100 × 50 / 10
        assert_eq!(io.blocks_read, 10.0 * 5.0);
        assert_eq!(io.blocks_written, 50.0);
    }

    #[test]
    fn measured_result_matches_plain_execution() {
        let e = Expr::join(
            Expr::base("R"),
            Expr::base("S"),
            JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k")),
        );
        let (out, _) = measure(&e, &db(), 10.0).unwrap();
        let plain = execute(&e, &db()).unwrap();
        assert_eq!(out.canonicalized().rows(), plain.canonicalized().rows());
    }

    #[test]
    fn pushed_down_selection_costs_less() {
        let filter = Predicate::cmp(AttrRef::new("R", "id"), CompareOp::Lt, 10);
        let on = JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k"));
        let late = Expr::select(
            Expr::join(Expr::base("R"), Expr::base("S"), on.clone()),
            filter.clone(),
        );
        let early = Expr::join(Expr::select(Expr::base("R"), filter), Expr::base("S"), on);
        let (a, io_late) = measure(&late, &db(), 10.0).unwrap();
        let (b, io_early) = measure(&early, &db(), 10.0).unwrap();
        assert_eq!(a.canonicalized().rows(), b.canonicalized().rows());
        assert!(io_early.total() < io_late.total());
    }

    #[test]
    fn rows_out_reported() {
        let e = Expr::project(Expr::base("S"), [AttrRef::new("S", "k")]);
        let (_, io) = measure(&e, &db(), 10.0).unwrap();
        assert_eq!(io.rows_out, 50);
    }

    #[test]
    fn per_operator_sums_charges_by_label() {
        // σ over π over σ: the selection label occurs twice (the algebra
        // constructor only fuses *adjacent* selections), so `per_operator`
        // has a duplicate label to sum.
        let e = Expr::select(
            Expr::project(
                Expr::select(
                    Expr::base("R"),
                    Predicate::cmp(AttrRef::new("R", "id"), CompareOp::Lt, 10),
                ),
                [AttrRef::new("R", "id")],
            ),
            Predicate::cmp(AttrRef::new("R", "id"), CompareOp::Lt, 5),
        );
        let (out, io) = measure(&e, &db(), 10.0).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(io.charges().len(), 3);
        let per_op = io.per_operator();
        let select = per_op.get("σ").expect("two selections recorded");
        assert_eq!(select.read, 10.0 + 1.0);
        assert_eq!(select.written, 1.0 + 1.0);
        assert_eq!(select.pool_misses, 0);
        let project = per_op.get("π").expect("one projection recorded");
        assert_eq!(project.read, 1.0);
        let total: f64 = per_op.values().map(OpCharge::total).sum();
        assert_eq!(total, io.total());
    }

    /// Cold scan over a paged single-column table with
    /// `records_per_block = page_rows`: the paper's predicted block reads
    /// for the scan equal the page count, which equals the observed pool
    /// misses exactly (one column ⇒ one page per block).
    #[test]
    fn paged_scan_misses_match_predicted_blocks_when_block_is_a_page() {
        let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::Int(i)]).collect();
        let resident_db = {
            let mut db = Database::new();
            db.insert_table(Table::new("S", [AttrRef::new("S", "k")], rows.clone()));
            db
        };
        // A zero-budget pool spills every page at registration, so each
        // scan pin decodes it again — the fully cold case.
        let mut cold_db = resident_db.clone();
        let cold_pool = BufferPool::new(Some(0));
        cold_db.page_out(&cold_pool, 10);

        let e = Expr::select(
            Expr::base("S"),
            Predicate::cmp(AttrRef::new("S", "k"), CompareOp::Lt, 1000),
        );
        let ctx = ExecContext::default();
        let (out, io) = measure_paged(&e, &cold_db, 10.0, &ctx).unwrap();
        assert_eq!(out.len(), 100);
        let select = io.per_operator()["σ"];
        assert_eq!(select.read, 10.0, "predicted: 100 rows / 10 per block");
        assert_eq!(
            select.pool_misses, 10,
            "observed: 10 cold pages decoded for the scan"
        );
        // The modelled charges are storage-independent.
        let (_, resident_io) = measure(&e, &resident_db, 10.0).unwrap();
        assert_eq!(io.blocks_read, resident_io.blocks_read);
        assert_eq!(io.blocks_written, resident_io.blocks_written);
    }

    /// The satellite regression: the same plan at `threads = 1, 2, 8` (and
    /// a morsel size small enough that every kernel actually fans out)
    /// reports identical block totals *and* an identical result batch.
    #[test]
    fn charges_are_interleaving_independent() {
        let e = Expr::aggregate(
            Expr::select(
                Expr::join(
                    Expr::base("R"),
                    Expr::base("S"),
                    JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k")),
                ),
                Predicate::cmp(AttrRef::new("R", "id"), CompareOp::Lt, 80),
            ),
            [AttrRef::new("R", "k")],
            [mvdesign_algebra::AggExpr::count_star("n")],
        );
        let db = db();
        let (base_table, base_io) = measure(&e, &db, 10.0).unwrap();
        for threads in [1, 2, 8] {
            let ctx = ExecContext {
                threads,
                morsel_rows: 7,
                mem_budget: None,
            };
            let (table, io) = measure_with(&e, &db, 10.0, &ctx).unwrap();
            assert_eq!(io, base_io, "threads={threads}");
            assert_eq!(table.batch(), base_table.batch(), "threads={threads}");
        }
    }
}
