//! Block-I/O simulation: execute a plan while counting the block accesses
//! the paper's cost model charges for.

use std::sync::Arc;

use mvdesign_algebra::Expr;

use crate::exec::execute;
use crate::table::{Database, Table};
use crate::ExecError;

/// Observed I/O of one plan execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IoReport {
    /// Blocks read by selections, projections and join scans.
    pub blocks_read: f64,
    /// Blocks written for operator outputs.
    pub blocks_written: f64,
    /// Rows in the final result.
    pub rows_out: usize,
}

impl IoReport {
    /// Total block accesses — the unit of every cost in the paper.
    pub fn total(&self) -> f64 {
        self.blocks_read + self.blocks_written
    }
}

/// Executes `expr` against `db`, counting block accesses under the paper's
/// operator disciplines with `records_per_block` records packed per block:
///
/// * selection / projection read every input block and write their output;
/// * nested-loop join reads every (outer block, inner block) pair and writes
///   its output.
///
/// Returns the result table together with the I/O report, so callers can
/// check both *what* was computed and *how much* it cost. The observed cost
/// is what the `mvdesign-cost` crate's `PaperCostModel` estimates, evaluated on
/// actual (not estimated) cardinalities.
///
/// # Errors
///
/// Propagates [`ExecError`] from plan execution.
pub fn measure(
    expr: &Arc<Expr>,
    db: &Database,
    records_per_block: f64,
) -> Result<(Table, IoReport), ExecError> {
    let bf = records_per_block.max(1.0);
    let mut report = IoReport::default();
    let table = run(expr, db, bf, &mut report)?;
    report.rows_out = table.len();
    Ok((table, report))
}

fn blocks(rows: usize, bf: f64) -> f64 {
    (rows as f64 / bf).ceil()
}

fn run(
    expr: &Arc<Expr>,
    db: &Database,
    bf: f64,
    report: &mut IoReport,
) -> Result<Table, ExecError> {
    match &**expr {
        Expr::Base(_) => execute(expr, db),
        Expr::Select { input, .. }
        | Expr::Project { input, .. }
        | Expr::Aggregate { input, .. } => {
            let in_table = run(input, db, bf, report)?;
            report.blocks_read += blocks(in_table.len(), bf);
            let out = shallow_execute(expr, &in_table, None, db)?;
            report.blocks_written += blocks(out.len(), bf);
            Ok(out)
        }
        Expr::Join { left, right, .. } => {
            let l = run(left, db, bf, report)?;
            let r = run(right, db, bf, report)?;
            report.blocks_read += blocks(l.len(), bf) * blocks(r.len(), bf);
            let out = shallow_execute(expr, &l, Some(&r), db)?;
            report.blocks_written += blocks(out.len(), bf);
            Ok(out)
        }
    }
}

/// Executes only the top operator of `expr`, with its input(s) already
/// materialized.
fn shallow_execute(
    expr: &Arc<Expr>,
    first: &Table,
    second: Option<&Table>,
    db: &Database,
) -> Result<Table, ExecError> {
    // Reuse `execute` by substituting pre-computed inputs as baby databases:
    // rebuild the node with Base leaves pointing at temp names.
    let mut tmp = Database::new();
    let sub = match &**expr {
        Expr::Select { predicate, .. } => {
            tmp.insert_table(rename(first, "__in"));
            Expr::select(Expr::base("__in"), predicate.clone())
        }
        Expr::Project { attrs, .. } => {
            tmp.insert_table(rename(first, "__in"));
            Expr::project(Expr::base("__in"), attrs.clone())
        }
        Expr::Join { on, .. } => {
            tmp.insert_table(rename(first, "__l"));
            tmp.insert_table(rename(second.expect("join has two inputs"), "__r"));
            Expr::join(Expr::base("__l"), Expr::base("__r"), on.clone())
        }
        Expr::Aggregate { group_by, aggs, .. } => {
            tmp.insert_table(rename(first, "__in"));
            Expr::aggregate(Expr::base("__in"), group_by.clone(), aggs.clone())
        }
        Expr::Base(_) => return execute(expr, db),
    };
    execute(&sub, &tmp)
}

fn rename(t: &Table, name: &str) -> Table {
    Table::new(name, t.attrs().to_vec(), t.rows().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{AttrRef, CompareOp, JoinCondition, Predicate, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int(i), Value::Int(i % 10)])
            .collect();
        db.insert_table(Table::new(
            "R",
            [AttrRef::new("R", "id"), AttrRef::new("R", "k")],
            rows,
        ));
        let rows: Vec<Vec<Value>> = (0..50).map(|i| vec![Value::Int(i % 10)]).collect();
        db.insert_table(Table::new("S", [AttrRef::new("S", "k")], rows));
        db
    }

    #[test]
    fn select_reads_input_blocks() {
        let e = Expr::select(
            Expr::base("R"),
            Predicate::cmp(AttrRef::new("R", "id"), CompareOp::Lt, 10),
        );
        let (out, io) = measure(&e, &db(), 10.0).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(io.blocks_read, 10.0); // 100 rows / 10 per block
        assert_eq!(io.blocks_written, 1.0); // 10 rows out
        assert_eq!(io.total(), 11.0);
    }

    #[test]
    fn join_reads_block_pairs() {
        let e = Expr::join(
            Expr::base("R"),
            Expr::base("S"),
            JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k")),
        );
        let (out, io) = measure(&e, &db(), 10.0).unwrap();
        assert_eq!(out.len(), 500); // 100 × 50 / 10
        assert_eq!(io.blocks_read, 10.0 * 5.0);
        assert_eq!(io.blocks_written, 50.0);
    }

    #[test]
    fn measured_result_matches_plain_execution() {
        let e = Expr::join(
            Expr::base("R"),
            Expr::base("S"),
            JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k")),
        );
        let (out, _) = measure(&e, &db(), 10.0).unwrap();
        let plain = execute(&e, &db()).unwrap();
        assert_eq!(out.canonicalized().rows(), plain.canonicalized().rows());
    }

    #[test]
    fn pushed_down_selection_costs_less() {
        let filter = Predicate::cmp(AttrRef::new("R", "id"), CompareOp::Lt, 10);
        let on = JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k"));
        let late = Expr::select(
            Expr::join(Expr::base("R"), Expr::base("S"), on.clone()),
            filter.clone(),
        );
        let early = Expr::join(Expr::select(Expr::base("R"), filter), Expr::base("S"), on);
        let (a, io_late) = measure(&late, &db(), 10.0).unwrap();
        let (b, io_early) = measure(&early, &db(), 10.0).unwrap();
        assert_eq!(a.canonicalized().rows(), b.canonicalized().rows());
        assert!(io_early.total() < io_late.total());
    }

    #[test]
    fn rows_out_reported() {
        let e = Expr::project(Expr::base("S"), [AttrRef::new("S", "k")]);
        let (_, io) = measure(&e, &db(), 10.0).unwrap();
        assert_eq!(io.rows_out, 50);
    }
}
