//! Block-I/O simulation: execute a plan while counting the block accesses
//! the paper's cost model charges for.
//!
//! Accounting is per *logical batch*: each operator runs as one columnar
//! kernel call and is charged for its whole input/output in one step.
//! Because every charge is a function of row counts alone, the totals are
//! bit-identical to what the tuple-at-a-time engine reported — and stay
//! pinned across storage changes (dictionary encoding, selection vectors)
//! that alter how a batch is represented but not how many rows flow through
//! each operator.
//!
//! The same discipline makes the totals independent of parallel execution:
//! morsel kernels produce each operator's output by concatenating
//! per-morsel partials **in morsel order** (never completion order), so an
//! operator's row count — and with it every charge — is identical at any
//! thread count or interleaving. Charges are accumulated per operator in
//! plan (post-)order and folded into the report at the end, so the
//! accounting path itself has no order left to vary; a regression test
//! pins the totals at `threads = 1, 2, 8`.

use std::sync::Arc;

use mvdesign_algebra::Expr;

use crate::batch::Batch;
use crate::exec::{
    aggregate_batch, join_batch, op_label, project_batch, select_batch, ExecContext,
};
use crate::table::{Database, Table};
use crate::{ExecError, JoinAlgo};

/// Observed I/O of one plan execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IoReport {
    /// Blocks read by selections, projections and join scans.
    pub blocks_read: f64,
    /// Blocks written for operator outputs.
    pub blocks_written: f64,
    /// Rows in the final result.
    pub rows_out: usize,
}

impl IoReport {
    /// Total block accesses — the unit of every cost in the paper.
    pub fn total(&self) -> f64 {
        self.blocks_read + self.blocks_written
    }
}

/// One operator's charge, recorded in plan order. The final report is the
/// fold of these in recording order — a deterministic reduction no matter
/// how the kernels inside the operator were scheduled.
#[derive(Debug, Clone, Copy)]
struct OpCharge {
    read: f64,
    written: f64,
}

/// Executes `expr` against `db`, counting block accesses under the paper's
/// operator disciplines with `records_per_block` records packed per block:
///
/// * selection / projection read every input block and write their output;
/// * nested-loop join reads every (outer block, inner block) pair and writes
///   its output.
///
/// Returns the result table together with the I/O report, so callers can
/// check both *what* was computed and *how much* it cost. The observed cost
/// is what the `mvdesign-cost` crate's `PaperCostModel` estimates, evaluated on
/// actual (not estimated) cardinalities.
///
/// # Errors
///
/// Propagates [`ExecError`] from plan execution.
pub fn measure(
    expr: &Arc<Expr>,
    db: &Database,
    records_per_block: f64,
) -> Result<(Table, IoReport), ExecError> {
    measure_with(expr, db, records_per_block, &ExecContext::default())
}

/// Like [`measure`], running the plan's kernels under an explicit
/// [`ExecContext`]. Charges are per logical batch — never per morsel — so
/// the report is bit-identical for every thread count and morsel size
/// (only wall-clock changes).
///
/// # Errors
///
/// Propagates [`ExecError`] from plan execution.
pub fn measure_with(
    expr: &Arc<Expr>,
    db: &Database,
    records_per_block: f64,
    ctx: &ExecContext,
) -> Result<(Table, IoReport), ExecError> {
    let bf = records_per_block.max(1.0);
    let mut charges: Vec<OpCharge> = Vec::new();
    let batch = run(expr, db, bf, ctx, &mut charges)?;
    let report = charges.iter().fold(
        IoReport {
            rows_out: batch.rows(),
            ..IoReport::default()
        },
        |mut acc, c| {
            acc.blocks_read += c.read;
            acc.blocks_written += c.written;
            acc
        },
    );
    let table = match &**expr {
        Expr::Base(name) => Table::from_batch(name.clone(), batch),
        _ => Table::from_batch(op_label(expr), batch),
    };
    Ok((table, report))
}

/// Blocks occupied by `rows` records at `bf` records per block. Charges
/// depend only on row counts, so the columnar engine reports exactly the
/// totals the row engine did.
fn blocks(rows: usize, bf: f64) -> f64 {
    (rows as f64 / bf).ceil()
}

fn run(
    expr: &Arc<Expr>,
    db: &Database,
    bf: f64,
    ctx: &ExecContext,
    charges: &mut Vec<OpCharge>,
) -> Result<Batch, ExecError> {
    match &**expr {
        Expr::Base(name) => db
            .table(name.as_str())
            .map(|t| t.batch().clone())
            .ok_or_else(|| ExecError::UnknownRelation(name.clone())),
        Expr::Select { input, predicate } => {
            let input = run(input, db, bf, ctx, charges)?;
            let out = select_batch(&input, predicate, ctx)?;
            charges.push(OpCharge {
                read: blocks(input.rows(), bf),
                written: blocks(out.rows(), bf),
            });
            Ok(out)
        }
        Expr::Project { input, attrs } => {
            let input = run(input, db, bf, ctx, charges)?;
            let out = project_batch(&input, attrs)?;
            charges.push(OpCharge {
                read: blocks(input.rows(), bf),
                written: blocks(out.rows(), bf),
            });
            Ok(out)
        }
        Expr::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let input = run(input, db, bf, ctx, charges)?;
            let out = aggregate_batch(&input, group_by, aggs, ctx)?;
            charges.push(OpCharge {
                read: blocks(input.rows(), bf),
                written: blocks(out.rows(), bf),
            });
            Ok(out)
        }
        Expr::Join { left, right, on } => {
            let l = run(left, db, bf, ctx, charges)?;
            let r = run(right, db, bf, ctx, charges)?;
            let out = join_batch(&l, &r, on, JoinAlgo::NestedLoop, ctx)?;
            charges.push(OpCharge {
                read: blocks(l.rows(), bf) * blocks(r.rows(), bf),
                written: blocks(out.rows(), bf),
            });
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use mvdesign_algebra::{AttrRef, CompareOp, JoinCondition, Predicate, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int(i), Value::Int(i % 10)])
            .collect();
        db.insert_table(Table::new(
            "R",
            [AttrRef::new("R", "id"), AttrRef::new("R", "k")],
            rows,
        ));
        let rows: Vec<Vec<Value>> = (0..50).map(|i| vec![Value::Int(i % 10)]).collect();
        db.insert_table(Table::new("S", [AttrRef::new("S", "k")], rows));
        db
    }

    #[test]
    fn select_reads_input_blocks() {
        let e = Expr::select(
            Expr::base("R"),
            Predicate::cmp(AttrRef::new("R", "id"), CompareOp::Lt, 10),
        );
        let (out, io) = measure(&e, &db(), 10.0).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(io.blocks_read, 10.0); // 100 rows / 10 per block
        assert_eq!(io.blocks_written, 1.0); // 10 rows out
        assert_eq!(io.total(), 11.0);
    }

    #[test]
    fn join_reads_block_pairs() {
        let e = Expr::join(
            Expr::base("R"),
            Expr::base("S"),
            JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k")),
        );
        let (out, io) = measure(&e, &db(), 10.0).unwrap();
        assert_eq!(out.len(), 500); // 100 × 50 / 10
        assert_eq!(io.blocks_read, 10.0 * 5.0);
        assert_eq!(io.blocks_written, 50.0);
    }

    #[test]
    fn measured_result_matches_plain_execution() {
        let e = Expr::join(
            Expr::base("R"),
            Expr::base("S"),
            JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k")),
        );
        let (out, _) = measure(&e, &db(), 10.0).unwrap();
        let plain = execute(&e, &db()).unwrap();
        assert_eq!(out.canonicalized().rows(), plain.canonicalized().rows());
    }

    #[test]
    fn pushed_down_selection_costs_less() {
        let filter = Predicate::cmp(AttrRef::new("R", "id"), CompareOp::Lt, 10);
        let on = JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k"));
        let late = Expr::select(
            Expr::join(Expr::base("R"), Expr::base("S"), on.clone()),
            filter.clone(),
        );
        let early = Expr::join(Expr::select(Expr::base("R"), filter), Expr::base("S"), on);
        let (a, io_late) = measure(&late, &db(), 10.0).unwrap();
        let (b, io_early) = measure(&early, &db(), 10.0).unwrap();
        assert_eq!(a.canonicalized().rows(), b.canonicalized().rows());
        assert!(io_early.total() < io_late.total());
    }

    #[test]
    fn rows_out_reported() {
        let e = Expr::project(Expr::base("S"), [AttrRef::new("S", "k")]);
        let (_, io) = measure(&e, &db(), 10.0).unwrap();
        assert_eq!(io.rows_out, 50);
    }

    /// The satellite regression: the same plan at `threads = 1, 2, 8` (and
    /// a morsel size small enough that every kernel actually fans out)
    /// reports identical block totals *and* an identical result batch.
    #[test]
    fn charges_are_interleaving_independent() {
        let e = Expr::aggregate(
            Expr::select(
                Expr::join(
                    Expr::base("R"),
                    Expr::base("S"),
                    JoinCondition::on(AttrRef::new("R", "k"), AttrRef::new("S", "k")),
                ),
                Predicate::cmp(AttrRef::new("R", "id"), CompareOp::Lt, 80),
            ),
            [AttrRef::new("R", "k")],
            [mvdesign_algebra::AggExpr::count_star("n")],
        );
        let db = db();
        let (base_table, base_io) = measure(&e, &db, 10.0).unwrap();
        for threads in [1, 2, 8] {
            let ctx = ExecContext {
                threads,
                morsel_rows: 7,
            };
            let (table, io) = measure_with(&e, &db, 10.0, &ctx).unwrap();
            assert_eq!(io, base_io, "threads={threads}");
            assert_eq!(table.batch(), base_table.batch(), "threads={threads}");
        }
    }
}
