//! Total-cost evaluation of a materialization choice (paper §4.1):
//! `C_total = Σ_i fq(qi)·C(mv→qi) + Σ_j fu(rj)·C(rj→mv)`.

use std::collections::BTreeSet;

use crate::annotate::AnnotatedMvpp;
use crate::mvpp::NodeId;
use crate::nodeset::NodeSet;

/// How maintenance cost is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintenanceMode {
    /// One batch refresh recomputes the whole materialized sub-DAG per
    /// period, sharing common subexpressions between views. This matches the
    /// paper's Table 2, whose "materialize all queries" row charges the
    /// shared computation once.
    #[default]
    SharedRecompute,
    /// Each view recomputes independently from the base relations:
    /// `Σ_{v∈M} U(v)·Cm(v)` — the paper's formula read literally, and the
    /// estimate the Figure-9 greedy uses internally.
    Isolated,
}

/// The evaluated cost of one materialization choice.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBreakdown {
    /// `Σ fq(qi) · C(mv→qi)`.
    pub query_processing: f64,
    /// Maintenance cost under the chosen [`MaintenanceMode`].
    pub maintenance: f64,
    /// `query_processing + maintenance`.
    pub total: f64,
    /// Frequency-weighted processing cost per query, in root order.
    pub per_query: Vec<(String, f64)>,
}

/// Evaluates the total cost of materializing exactly the nodes in `m`.
///
/// Query processing: each query computes from its nearest materialized
/// descendants — a node in `m` is *read* (scan cost) rather than recomputed;
/// shared nodes within one query are charged once. A query whose root is
/// itself materialized only pays the scan of its result.
///
/// Materializing a leaf (base relation) is a no-op: base relations are
/// already stored.
pub fn evaluate(a: &AnnotatedMvpp, m: &BTreeSet<NodeId>, mode: MaintenanceMode) -> CostBreakdown {
    let set = NodeSet::from_ids(a.mvpp().len(), m.iter().copied());
    evaluate_set(a, &set, mode)
}

/// [`evaluate`] over a dense [`NodeSet`] — the hot-path form used by the
/// search algorithms. Produces bit-identical results to [`evaluate`] (same
/// traversal and summation orders).
pub fn evaluate_set(a: &AnnotatedMvpp, m: &NodeSet, mode: MaintenanceMode) -> CostBreakdown {
    let mvpp = a.mvpp();
    let mut per_query = Vec::with_capacity(mvpp.roots().len());
    let mut query_processing = 0.0;
    for (name, fq, root) in mvpp.roots() {
        let one = query_cost_set(a, m, *root);
        let weighted = fq * one;
        query_processing += weighted;
        per_query.push((name.clone(), weighted));
    }

    let maintenance = maintenance_cost(a, m, mode);

    // `+ 0.0` normalises any IEEE negative zero out of the sums.
    CostBreakdown {
        query_processing: query_processing + 0.0,
        maintenance: maintenance + 0.0,
        total: query_processing + maintenance + 0.0,
        per_query,
    }
}

/// The maintenance term of [`evaluate_set`] alone (already `−0.0`-normalised).
pub(crate) fn maintenance_cost(a: &AnnotatedMvpp, m: &NodeSet, mode: MaintenanceMode) -> f64 {
    let mvpp = a.mvpp();
    let maintenance: f64 = match mode {
        MaintenanceMode::Isolated => m
            .iter()
            .filter(|v| !mvpp.node(*v).is_leaf())
            .map(|v| {
                let ann = a.annotation(v);
                ann.fu_weight * ann.cm
            })
            .sum(),
        MaintenanceMode::SharedRecompute => {
            // One refresh pass recomputes every node needed by some view,
            // charging each operator once (weighted by its own update rate).
            // Under incremental maintenance the pass only propagates deltas
            // (a fraction of the full work) and additionally scans each
            // stored view to apply them.
            let fraction = a.maintenance_policy().work_fraction();
            let apply: f64 = match a.maintenance_policy() {
                crate::annotate::MaintenancePolicy::Recompute => 0.0,
                crate::annotate::MaintenancePolicy::Incremental { .. } => m
                    .iter()
                    .filter(|v| !mvpp.node(*v).is_leaf())
                    .map(|v| {
                        let ann = a.annotation(v);
                        ann.fu_weight * ann.scan
                    })
                    .sum(),
            };
            // The "needed" closure is a few word-ORs over the cached
            // descendant bitsets; iteration is ascending-id, matching the
            // BTreeSet-based order exactly.
            let mut needed = NodeSet::with_capacity(mvpp.len());
            for v in m.iter() {
                if mvpp.node(v).is_leaf() {
                    continue;
                }
                needed.insert(v);
                needed.union_with(a.descendant_set(v));
            }
            needed
                .iter()
                .map(|n| {
                    let ann = a.annotation(n);
                    ann.fu_weight * ann.op_cost * fraction
                })
                .sum::<f64>()
                + apply
        }
    };
    maintenance + 0.0
}

/// [`evaluate`] with a per-view maintenance-policy choice: views in `delta`
/// fold append deltas into their stored state (charging
/// [`NodeAnnotation::delta_cm`](crate::annotate::NodeAnnotation::delta_cm))
/// instead of recomputing. Query processing is untouched — a stored view
/// reads the same however it is maintained — so the policy choice moves
/// only the maintenance term.
pub fn evaluate_with_policies(
    a: &AnnotatedMvpp,
    m: &BTreeSet<NodeId>,
    delta: &BTreeSet<NodeId>,
    mode: MaintenanceMode,
) -> CostBreakdown {
    let n = a.mvpp().len();
    evaluate_set_with_policies(
        a,
        &NodeSet::from_ids(n, m.iter().copied()),
        &NodeSet::from_ids(n, delta.iter().copied()),
        mode,
    )
}

/// [`evaluate_with_policies`] over dense [`NodeSet`]s — the search hot
/// path. With an empty `delta` set this is digit-identical to
/// [`evaluate_set`] (it takes the same code path).
pub fn evaluate_set_with_policies(
    a: &AnnotatedMvpp,
    m: &NodeSet,
    delta: &NodeSet,
    mode: MaintenanceMode,
) -> CostBreakdown {
    if !delta.intersects(m) {
        return evaluate_set(a, m, mode);
    }
    let mut cost = evaluate_set(a, m, mode);
    cost.maintenance = maintenance_cost_with_policies(a, m, delta, mode);
    cost.total = cost.query_processing + cost.maintenance + 0.0;
    cost
}

/// The maintenance term under a per-view policy choice: views in `delta`
/// charge `fu·Cmᵟ` each (delta propagation runs per view against the stored
/// base state) and drop out of the recompute pass; the rest are charged by
/// [`maintenance_cost`] exactly as before.
pub(crate) fn maintenance_cost_with_policies(
    a: &AnnotatedMvpp,
    m: &NodeSet,
    delta: &NodeSet,
    mode: MaintenanceMode,
) -> f64 {
    let mvpp = a.mvpp();
    let mut recompute = NodeSet::with_capacity(mvpp.len());
    recompute.copy_from(m);
    let mut delta_term = 0.0;
    for v in m.iter() {
        if mvpp.node(v).is_leaf() || !delta.contains(v) {
            continue;
        }
        recompute.remove(v);
        let ann = a.annotation(v);
        delta_term += ann.fu_weight * ann.delta_cm;
    }
    maintenance_cost(a, &recompute, mode) + delta_term + 0.0
}

/// Chooses a per-view maintenance policy for the materialized set `m` —
/// the subset of views that should fold deltas rather than recompute.
///
/// Deterministic coordinate descent: sweep the views in ascending id order,
/// flipping a view's policy whenever that strictly lowers the maintenance
/// term, and repeat until a full sweep changes nothing. Under
/// [`MaintenanceMode::Isolated`] the term is separable per view, so one
/// sweep is exact (`min(Cm, Cmᵟ)` per view); under
/// [`MaintenanceMode::SharedRecompute`] later sweeps can improve further
/// because removing a view from the recompute pass only pays off once no
/// other recomputed view still needs its sub-DAG.
pub fn choose_policies(a: &AnnotatedMvpp, m: &NodeSet, mode: MaintenanceMode) -> NodeSet {
    let mvpp = a.mvpp();
    let mut delta = NodeSet::with_capacity(mvpp.len());
    let mut best = maintenance_cost_with_policies(a, m, &delta, mode);
    loop {
        let mut improved = false;
        for v in m.iter() {
            if mvpp.node(v).is_leaf() {
                continue;
            }
            delta.toggle(v);
            let cost = maintenance_cost_with_policies(a, m, &delta, mode);
            if cost < best {
                best = cost;
                improved = true;
            } else {
                delta.toggle(v);
            }
        }
        if !improved {
            return delta;
        }
    }
}

/// Cost of answering the workload with *multiple-query processing* instead
/// of materialization — the alternative the paper distinguishes itself from
/// in §3.2.
///
/// MQP executes the queries together as a batch, sharing common
/// subexpressions transiently (each DAG operator runs once per batch) but
/// persisting nothing. Queries arrive at their own frequencies, so the batch
/// must run as often as the most frequent query demands:
/// `C_mqp = max_q fq(q) · Σ_{v ∈ V} op_cost(v)`. There is no maintenance
/// term — nothing is stored.
///
/// The paper's argument (§3.2) is that for warehouse workloads — repeated
/// queries over slowly-changing data — materializing the shared temporaries
/// beats recomputing them per batch; [`evaluate`] vs this function makes
/// that comparison concrete.
pub fn mqp_batch_cost(a: &AnnotatedMvpp) -> f64 {
    let mvpp = a.mvpp();
    let batches = mvpp
        .roots()
        .iter()
        .map(|(_, fq, _)| *fq)
        .fold(0.0, f64::max);
    let batch: f64 = mvpp
        .interior()
        .into_iter()
        .map(|v| a.annotation(v).op_cost)
        .sum();
    batches * batch
}

/// The update frequency at which materializing `v` (alone) stops paying —
/// the closed-form piece of the "analytical model for a multiple view
/// processing environment" the paper's conclusion calls for.
///
/// Materializing `v` saves each using query `Ca(v) − scan(v)` per access and
/// costs one maintenance pass of `Cm(v)` per update period, so the break-even
/// update weight is
///
/// ```text
/// U*(v) = Σ_{q∈Ov} fq(q) · (Ca(v) − scan(v)) / Cm(v)
/// ```
///
/// Below `U*` the view wins; above it, recomputation wins. Returns
/// `f64::INFINITY` when maintenance is free (`Cm = 0`) and `0.0` when the
/// view never helps (`scan ≥ Ca`).
pub fn break_even_update_weight(a: &AnnotatedMvpp, v: NodeId) -> f64 {
    let ann = a.annotation(v);
    let per_access_saving = (ann.ca - ann.scan).max(0.0);
    if per_access_saving == 0.0 {
        return 0.0;
    }
    if ann.cm <= 0.0 {
        return f64::INFINITY;
    }
    ann.fq_weight * per_access_saving / ann.cm
}

/// Unweighted cost of answering the query rooted at `root` given
/// materialized set `m`.
pub fn query_cost(a: &AnnotatedMvpp, m: &BTreeSet<NodeId>, root: NodeId) -> f64 {
    let set = NodeSet::from_ids(a.mvpp().len(), m.iter().copied());
    query_cost_set(a, &set, root)
}

/// [`query_cost`] over a dense [`NodeSet`].
pub fn query_cost_set(a: &AnnotatedMvpp, m: &NodeSet, root: NodeId) -> f64 {
    if m.contains(root) && !a.mvpp().node(root).is_leaf() {
        return a.annotation(root).scan;
    }
    let mut visited = NodeSet::with_capacity(a.mvpp().len());
    walk(a, m, root, root, &mut visited)
}

fn walk(a: &AnnotatedMvpp, m: &NodeSet, v: NodeId, root: NodeId, visited: &mut NodeSet) -> f64 {
    if !visited.insert(v) {
        return 0.0;
    }
    let node = a.mvpp().node(v);
    if node.is_leaf() {
        // Base relations are read by the operator above them; the paper
        // assigns leaves zero cost.
        return 0.0;
    }
    if v != root && m.contains(v) {
        return a.annotation(v).scan;
    }
    let mut cost = a.annotation(v).op_cost;
    for c in node.children() {
        cost += walk(a, m, *c, root, visited);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::UpdateWeighting;
    use crate::mvpp::Mvpp;
    use mvdesign_algebra::{AttrRef, CompareOp, Expr, JoinCondition, Predicate};
    use mvdesign_catalog::{AttrType, Catalog, RelName, RelationStats};
    use mvdesign_cost::{CostEstimator, EstimationMode, PaperCostModel};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("Pd")
            .attr("Pid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("Did", AttrType::Int)
            .records(30_000.0)
            .blocks(3_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.relation("Div")
            .attr("Did", AttrType::Int)
            .attr("city", AttrType::Text)
            .records(5_000.0)
            .blocks(500.0)
            .update_frequency(1.0)
            .selectivity("city", 0.02)
            .finish()
            .unwrap();
        c.relation("Pt")
            .attr("Tid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("Pid", AttrType::Int)
            .records(80_000.0)
            .blocks(10_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.set_join_selectivity(
            AttrRef::new("Pd", "Did"),
            AttrRef::new("Div", "Did"),
            1.0 / 5_000.0,
        )
        .unwrap();
        c.set_join_selectivity(
            AttrRef::new("Pt", "Pid"),
            AttrRef::new("Pd", "Pid"),
            1.0 / 30_000.0,
        )
        .unwrap();
        c.set_size_override(
            [RelName::new("Pd"), RelName::new("Div")],
            RelationStats::new(30_000.0, 5_000.0),
        )
        .unwrap();
        c
    }

    fn tmp2() -> Arc<Expr> {
        Expr::join(
            Expr::base("Pd"),
            Expr::select(
                Expr::base("Div"),
                Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
            ),
            JoinCondition::on(AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did")),
        )
    }

    fn tmp3() -> Arc<Expr> {
        Expr::join(
            tmp2(),
            Expr::base("Pt"),
            JoinCondition::on(AttrRef::new("Pt", "Pid"), AttrRef::new("Pd", "Pid")),
        )
    }

    /// Q1 reads tmp2 (fq 10), Q2 reads tmp3 = tmp2 ⋈ Pt (fq 0.5).
    fn annotated() -> AnnotatedMvpp {
        let mut m = Mvpp::new();
        m.insert_query("Q1", 10.0, &tmp2());
        m.insert_query("Q2", 0.5, &tmp3());
        let c = catalog();
        let est = CostEstimator::new(&c, EstimationMode::Calibrated, PaperCostModel::default());
        AnnotatedMvpp::annotate(m, &est, UpdateWeighting::Max)
    }

    #[test]
    fn nothing_materialized_pays_full_recompute() {
        let a = annotated();
        let cost = evaluate(&a, &BTreeSet::new(), MaintenanceMode::SharedRecompute);
        assert_eq!(cost.maintenance, 0.0);
        let ca_q1 = a.annotation(a.mvpp().find(&tmp2()).unwrap()).ca;
        let ca_q2 = a.annotation(a.mvpp().find(&tmp3()).unwrap()).ca;
        assert_eq!(cost.query_processing, 10.0 * ca_q1 + 0.5 * ca_q2);
        assert_eq!(cost.total, cost.query_processing);
        assert_eq!(cost.per_query.len(), 2);
    }

    #[test]
    fn materializing_shared_node_cuts_both_queries() {
        let a = annotated();
        let shared = a.mvpp().find(&tmp2()).unwrap();
        let m: BTreeSet<_> = [shared].into();
        let cost = evaluate(&a, &m, MaintenanceMode::SharedRecompute);
        let scan = a.annotation(shared).scan;
        // Q1 reads the view; Q2 joins the view with Pt.
        let q2_join = a.annotation(a.mvpp().find(&tmp3()).unwrap()).op_cost;
        assert_eq!(cost.query_processing, 10.0 * scan + 0.5 * (scan + q2_join));
        // Maintenance recomputes σ + tmp2 once.
        assert_eq!(cost.maintenance, a.annotation(shared).cm);
    }

    #[test]
    fn materializing_roots_leaves_only_scans() {
        let a = annotated();
        let m: BTreeSet<_> = a.mvpp().roots().iter().map(|r| r.2).collect();
        let cost = evaluate(&a, &m, MaintenanceMode::SharedRecompute);
        let s1 = a.annotation(a.mvpp().find(&tmp2()).unwrap()).scan;
        let s2 = a.annotation(a.mvpp().find(&tmp3()).unwrap()).scan;
        assert_eq!(cost.query_processing, 10.0 * s1 + 0.5 * s2);
        // Shared maintenance charges tmp2's chain once, not twice.
        let ca_q2 = a.annotation(a.mvpp().find(&tmp3()).unwrap()).ca;
        assert_eq!(cost.maintenance, ca_q2);
    }

    #[test]
    fn isolated_maintenance_double_charges_shared_chains() {
        let a = annotated();
        let m: BTreeSet<_> = a.mvpp().roots().iter().map(|r| r.2).collect();
        let shared = evaluate(&a, &m, MaintenanceMode::SharedRecompute);
        let isolated = evaluate(&a, &m, MaintenanceMode::Isolated);
        assert!(isolated.maintenance > shared.maintenance);
        let ca1 = a.annotation(a.mvpp().find(&tmp2()).unwrap()).ca;
        let ca2 = a.annotation(a.mvpp().find(&tmp3()).unwrap()).ca;
        assert_eq!(isolated.maintenance, ca1 + ca2);
    }

    #[test]
    fn materializing_leaves_is_free_noop() {
        let a = annotated();
        let m: BTreeSet<_> = a.mvpp().leaves().into_iter().collect();
        let with = evaluate(&a, &m, MaintenanceMode::SharedRecompute);
        let without = evaluate(&a, &BTreeSet::new(), MaintenanceMode::SharedRecompute);
        assert_eq!(with.total, without.total);
    }

    #[test]
    fn break_even_weight_separates_win_from_loss() {
        let a = annotated();
        let shared = a.mvpp().find(&tmp2()).unwrap();
        let ustar = break_even_update_weight(&a, shared);
        assert!(ustar.is_finite() && ustar > 0.0);
        // Evaluate the single-view strategy just below and above U*: the
        // Isolated-maintenance total must cross the all-virtual total there.
        let ann = a.annotation(shared);
        let m: BTreeSet<_> = [shared].into();
        let base = evaluate(&a, &BTreeSet::new(), MaintenanceMode::Isolated);
        // Savings at weight u: fq·(ca − scan) − u·cm; check the sign flips.
        for (u, expect_win) in [(ustar * 0.5, true), (ustar * 2.0, false)] {
            let saving = ann.fq_weight * (ann.ca - ann.scan) - u * ann.cm;
            assert_eq!(saving > 0.0, expect_win, "u = {u}");
        }
        let with_view = evaluate(&a, &m, MaintenanceMode::Isolated);
        // At the catalog's actual fu (1.0 < U*), the view must win.
        assert!(ustar > 1.0);
        assert!(with_view.total < base.total);
    }

    #[test]
    fn mqp_batching_shares_but_repeats_per_batch() {
        let a = annotated();
        // Batch = every interior operator once; batches = max fq = 10.
        let ops: f64 = a
            .mvpp()
            .interior()
            .into_iter()
            .map(|v| a.annotation(v).op_cost)
            .sum();
        assert!((mqp_batch_cost(&a) - 10.0 * ops).abs() < 1e-9);
        // The MVPP design (materialize the shared join) beats MQP here:
        // fu = 1 refresh vs 10 batch recomputations.
        let shared = a.mvpp().find(&tmp2()).unwrap();
        let mvpp_total = evaluate(&a, &[shared].into(), MaintenanceMode::SharedRecompute).total;
        assert!(mvpp_total < mqp_batch_cost(&a));
    }

    #[test]
    fn per_query_sums_to_query_processing() {
        let a = annotated();
        let shared = a.mvpp().find(&tmp2()).unwrap();
        let cost = evaluate(&a, &[shared].into(), MaintenanceMode::SharedRecompute);
        let sum: f64 = cost.per_query.iter().map(|(_, c)| c).sum();
        assert!((sum - cost.query_processing).abs() < 1e-9);
    }

    #[test]
    fn empty_delta_set_is_digit_identical_to_evaluate() {
        let a = annotated();
        let m: BTreeSet<_> = [a.mvpp().find(&tmp2()).unwrap()].into();
        for mode in [MaintenanceMode::SharedRecompute, MaintenanceMode::Isolated] {
            let plain = evaluate(&a, &m, mode);
            let with = evaluate_with_policies(&a, &m, &BTreeSet::new(), mode);
            assert_eq!(plain, with, "{mode:?}");
        }
    }

    #[test]
    fn delta_policy_charges_delta_cm_and_leaves_queries_alone() {
        let a = annotated();
        let shared = a.mvpp().find(&tmp2()).unwrap();
        let m: BTreeSet<_> = [shared].into();
        let delta: BTreeSet<_> = [shared].into();
        for mode in [MaintenanceMode::SharedRecompute, MaintenanceMode::Isolated] {
            let plain = evaluate(&a, &m, mode);
            let with = evaluate_with_policies(&a, &m, &delta, mode);
            assert_eq!(
                plain.query_processing, with.query_processing,
                "policy must not move the query term ({mode:?})"
            );
            let ann = a.annotation(shared);
            assert_eq!(with.maintenance, ann.fu_weight * ann.delta_cm, "{mode:?}");
        }
    }

    #[test]
    fn choose_policies_flips_views_whose_delta_cm_wins() {
        let a = annotated();
        let shared = a.mvpp().find(&tmp2()).unwrap();
        let ann = a.annotation(shared);
        assert!(
            ann.delta_cm < ann.cm,
            "fixture: delta maintenance is cheaper"
        );
        let n = a.mvpp().len();
        let m = NodeSet::from_ids(n, [shared]);
        for mode in [MaintenanceMode::Isolated, MaintenanceMode::SharedRecompute] {
            let delta = choose_policies(&a, &m, mode);
            assert!(delta.contains(shared), "{mode:?}");
            let with = evaluate_set_with_policies(&a, &m, &delta, mode);
            let without = evaluate_set(&a, &m, mode);
            assert!(
                with.total < without.total,
                "the chosen policies must lower total cost ({mode:?})"
            );
        }
    }

    #[test]
    fn choose_policies_keeps_recompute_when_delta_loses() {
        // A view whose stored result is as large as its input makes the
        // scan-to-apply term dominate: recompute stays the better policy.
        let a = annotated();
        let n = a.mvpp().len();
        for v in a.mvpp().interior() {
            let ann = a.annotation(v);
            if ann.delta_cm >= ann.cm {
                let m = NodeSet::from_ids(n, [v]);
                let delta = choose_policies(&a, &m, MaintenanceMode::Isolated);
                assert!(delta.is_empty(), "node {v} should keep recompute");
            }
        }
    }
}
