//! Cost annotations: turning an [`Mvpp`] into the fully-labelled DAG
//! `M = (V, A, R, Ca, Cm, fq, fu)` of the paper's §3.1.

use mvdesign_catalog::RelationStats;
use mvdesign_cost::{CostEstimator, CostModel};

use crate::mvpp::{Mvpp, NodeId};
use crate::nodeset::NodeSet;

/// How per-view update weights are derived from base-relation update
/// frequencies.
///
/// The paper's formula sums `fu` over a view's base inputs, but its worked
/// example (§4.3) charges one recomputation per period for views over
/// several once-per-period relations — i.e. refreshes are batched, which
/// corresponds to taking the *maximum*. `Max` therefore reproduces the
/// paper's trace and is the default; `Sum` implements the formula literally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateWeighting {
    /// One batched refresh per update period: `U(v) = max_{b∈Iv} fu(b)`.
    #[default]
    Max,
    /// Refresh per base-relation update: `U(v) = Σ_{b∈Iv} fu(b)`.
    Sum,
}

/// How a materialized view is refreshed when its base relations change.
///
/// The paper assumes recomputation ("we assume that re-computing is used
/// whenever an update of involved base relation occurs", §2) and lists
/// incremental maintenance as the standard alternative from the literature
/// it builds on (Gupta & Mumick's survey, the paper's reference 11).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MaintenancePolicy {
    /// Rebuild the view from its inputs on every refresh: `Cm(v) = Ca(v)`.
    #[default]
    Recompute,
    /// Propagate deltas: each refresh costs the stated fraction of a full
    /// recomputation (the share of the base data that changed, amplified
    /// through the joins) plus one scan of the stored view to apply the
    /// delta: `Cm(v) = f·Ca(v) + scan(v)`.
    Incremental {
        /// Fraction of the full recomputation a delta pass costs, in `[0,1]`.
        update_fraction: f64,
    },
}

impl MaintenancePolicy {
    /// The multiplier applied to recomputation work under this policy.
    pub fn work_fraction(&self) -> f64 {
        match self {
            MaintenancePolicy::Recompute => 1.0,
            MaintenancePolicy::Incremental { update_fraction } => update_fraction.clamp(0.0, 1.0),
        }
    }
}

/// The per-period append fraction `|ΔR|/|R|` the delta cost model assumes
/// when the maintenance policy does not state one (i.e. under
/// [`MaintenancePolicy::Recompute`], where the fraction only feeds the
/// *alternative* [`NodeAnnotation::delta_cm`] column).
pub const DEFAULT_DELTA_FRACTION: f64 = 0.1;

/// Everything the paper labels one MVPP vertex with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeAnnotation {
    /// Estimated result statistics of `R(v)`.
    pub stats: RelationStats,
    /// Cost of this operator alone, inputs available.
    pub op_cost: f64,
    /// `Ca(v)`: cost of producing `R(v)` from base relations, sharing common
    /// subexpressions (zero for leaves).
    pub ca: f64,
    /// `Cm(v)`: cost of maintaining `v` if materialized. Recomputation
    /// maintenance (the paper's assumption) makes `Cm(v) = Ca(v)`.
    pub cm: f64,
    /// `Cmᵟ(v)`: cost of maintaining `v` by delta propagation instead of
    /// recomputation — every operator below `v` re-run at its *delta*
    /// cardinality (the `ΔR⋈S ∪ R⋈ΔS ∪ ΔR⋈ΔS` expansion sizes a join's
    /// delta at `(1+f)^k − 1` of its result for `k` base inputs with append
    /// fraction `f`), plus one scan of the stored view to fold the delta
    /// in. Zero for leaves; never charged above a full recomputation per
    /// operator.
    pub delta_cm: f64,
    /// Cost of scanning a materialized copy of `R(v)`.
    pub scan: f64,
    /// `Σ_{q ∈ Ov} fq(q)`: combined frequency of queries using `v`.
    pub fq_weight: f64,
    /// `U(v)`: update weight from the base relations below `v`.
    pub fu_weight: f64,
    /// `w(v) = fq_weight·Ca(v) − fu_weight·Cm(v)` (paper §4.3).
    pub weight: f64,
}

/// An [`Mvpp`] together with per-node annotations computed against a
/// catalog and cost model.
#[derive(Debug, Clone)]
pub struct AnnotatedMvpp {
    mvpp: Mvpp,
    annotations: Vec<NodeAnnotation>,
    policy: MaintenancePolicy,
    /// Per-node `S*{v}` (descendants, excluding `v`) as dense bitsets.
    desc_sets: Vec<NodeSet>,
    /// Per-node `D*{v}` (ancestors, excluding `v`) as dense bitsets.
    anc_sets: Vec<NodeSet>,
}

impl AnnotatedMvpp {
    /// Annotates every node of `mvpp` under recomputation maintenance.
    pub fn annotate<M: CostModel>(
        mvpp: Mvpp,
        est: &CostEstimator<'_, M>,
        weighting: UpdateWeighting,
    ) -> Self {
        Self::annotate_with(mvpp, est, weighting, MaintenancePolicy::Recompute)
    }

    /// Annotates every node of `mvpp` under an explicit maintenance policy.
    pub fn annotate_with<M: CostModel>(
        mvpp: Mvpp,
        est: &CostEstimator<'_, M>,
        weighting: UpdateWeighting,
        policy: MaintenancePolicy,
    ) -> Self {
        let catalog = est.cardinalities().catalog();
        let n = mvpp.len();
        // Transitive closures as bitsets, one pass each way. Nodes are stored
        // in topological (children-first) order, so every child's descendant
        // set is complete before its parents', and vice versa for ancestors.
        let mut desc_sets: Vec<NodeSet> = Vec::with_capacity(n);
        for node in mvpp.nodes() {
            let mut d = NodeSet::with_capacity(n);
            for c in node.children() {
                d.insert(*c);
                d.union_with(&desc_sets[c.0]);
            }
            desc_sets.push(d);
        }
        let mut anc_sets: Vec<NodeSet> = vec![NodeSet::with_capacity(n); n];
        for node in mvpp.nodes().iter().rev() {
            let mut up = NodeSet::with_capacity(n);
            for p in node.parents() {
                up.insert(*p);
                up.union_with(&anc_sets[p.0]);
            }
            anc_sets[node.id().0] = up;
        }

        // Append fraction feeding the delta-maintenance column: the policy's
        // stated fraction when it has one, the model default otherwise.
        let delta_fraction = match policy {
            MaintenancePolicy::Incremental { .. } => policy.work_fraction(),
            MaintenancePolicy::Recompute => DEFAULT_DELTA_FRACTION,
        };
        // Per-node delta size as a fraction of the full result. A node over
        // `k` base relations each growing by fraction `f` has a new state
        // `(1+f)^k` times the old per-relation product, so its delta is
        // `(1+f)^k − 1` of the old result — capped at 1 (a delta pass never
        // costs more than the recomputation it replaces).
        let mut delta_factors: Vec<f64> = Vec::with_capacity(n);
        let mut annotations: Vec<NodeAnnotation> = Vec::with_capacity(n);
        for node in mvpp.nodes() {
            let stats = est.stats(node.expr());
            let op_cost = est.op_cost(node.expr());
            let ca = if node.is_leaf() {
                0.0
            } else {
                // Ca over the *DAG*: this operator plus each distinct
                // descendant operator once, summed in ascending id order
                // (bitset iteration == BTreeSet iteration).
                let mut total = op_cost;
                for d in desc_sets[node.id().0].iter() {
                    total += annotations[d.0].op_cost;
                }
                total
            };
            let scan = est.scan_cost(node.expr());
            let cm = match policy {
                MaintenancePolicy::Recompute => ca,
                MaintenancePolicy::Incremental { .. } if node.is_leaf() => 0.0,
                MaintenancePolicy::Incremental { .. } => policy.work_fraction() * ca + scan,
            };
            let leaves_below = desc_sets[node.id().0]
                .iter()
                .filter(|d| mvpp.node(*d).is_leaf())
                .count()
                .max(1);
            let delta_factor = ((1.0 + delta_fraction).powi(leaves_below as i32) - 1.0).min(1.0);
            delta_factors.push(delta_factor);
            let delta_cm = if node.is_leaf() {
                0.0
            } else {
                // Every operator below `v` re-runs at its own delta size
                // (leaves have zero op_cost), plus one scan of the stored
                // view to apply the result.
                let mut total = op_cost * delta_factor;
                for d in desc_sets[node.id().0].iter() {
                    total += annotations[d.0].op_cost * delta_factors[d.0];
                }
                total + scan
            };
            // `Σ fq` over the queries using this node, in root order — same
            // order (and therefore same float sum) as `queries_using` gives.
            let up = &anc_sets[node.id().0];
            let fq_weight: f64 = mvpp
                .roots()
                .iter()
                .filter(|(_, _, root)| *root == node.id() || up.contains(*root))
                .map(|(_, fq, _)| *fq)
                .sum();
            let fus = mvpp
                .base_inputs(node.id())
                .into_iter()
                .map(|r| catalog.update_frequency(r.as_str()));
            let fu_weight = match weighting {
                UpdateWeighting::Max => fus.fold(0.0, f64::max),
                UpdateWeighting::Sum => fus.sum(),
            };
            annotations.push(NodeAnnotation {
                stats,
                op_cost,
                ca,
                cm,
                delta_cm,
                scan,
                fq_weight,
                fu_weight,
                weight: fq_weight * ca - fu_weight * cm,
            });
        }
        Self {
            mvpp,
            annotations,
            policy,
            desc_sets,
            anc_sets,
        }
    }

    /// The underlying DAG.
    pub fn mvpp(&self) -> &Mvpp {
        &self.mvpp
    }

    /// The maintenance policy the annotations were computed under.
    pub fn maintenance_policy(&self) -> MaintenancePolicy {
        self.policy
    }

    /// Annotation of one node.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this MVPP.
    pub fn annotation(&self, id: NodeId) -> &NodeAnnotation {
        &self.annotations[id.0]
    }

    /// Cached `S*{v}` (all descendants of `v`, excluding `v`) as a bitset —
    /// the precomputed form of [`Mvpp::descendants`].
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this MVPP.
    pub fn descendant_set(&self, id: NodeId) -> &NodeSet {
        &self.desc_sets[id.0]
    }

    /// Cached `D*{v}` (all ancestors of `v`, excluding `v`) as a bitset —
    /// the precomputed form of [`Mvpp::ancestors`].
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this MVPP.
    pub fn ancestor_set(&self, id: NodeId) -> &NodeSet {
        &self.anc_sets[id.0]
    }

    /// Whether `u` and `v` lie on one root-to-leaf branch, answered from the
    /// cached closures (the fast form of [`Mvpp::same_branch`]).
    pub fn same_branch(&self, u: NodeId, v: NodeId) -> bool {
        u == v || self.anc_sets[u.0].contains(v) || self.anc_sets[v.0].contains(u)
    }

    /// Interior nodes with positive weight, in descending weight order —
    /// the paper's list `LV` (Figure 9, step 2). Ties break by node id for
    /// determinism.
    pub fn weight_ordered_interior(&self) -> Vec<NodeId> {
        let mut lv: Vec<NodeId> = self
            .mvpp
            .interior()
            .into_iter()
            .filter(|v| self.annotations[v.0].weight > 0.0)
            .collect();
        lv.sort_by(|a, b| {
            let wa = self.annotations[a.0].weight;
            let wb = self.annotations[b.0].weight;
            wb.total_cmp(&wa).then(a.0.cmp(&b.0))
        });
        lv
    }

    /// Renders the DAG as DOT, labelling every interior node with its
    /// `Ca` — the same annotation the paper draws beside each node in
    /// Figure 3.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=BT;");
        for n in self.mvpp.nodes() {
            let a = &self.annotations[n.id().0];
            let shape = if n.is_leaf() { "box" } else { "plaintext" };
            let _ = writeln!(
                out,
                "  {} [label=\"{} Ca={:.4}\", shape={shape}];",
                n.id(),
                n.label(),
                a.ca
            );
        }
        for n in self.mvpp.nodes() {
            for c in n.children() {
                let _ = writeln!(out, "  {} -> {};", c, n.id());
            }
        }
        for (i, (qname, fq, root)) in self.mvpp.roots().iter().enumerate() {
            let _ = writeln!(out, "  q{i} [label=\"{qname} fq={fq}\", shape=ellipse];");
            let _ = writeln!(out, "  {root} -> q{i};");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdesign_algebra::{AttrRef, CompareOp, Expr, JoinCondition, Predicate};
    use mvdesign_catalog::{AttrType, Catalog, RelName};
    use mvdesign_cost::{EstimationMode, PaperCostModel};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.relation("Pd")
            .attr("Pid", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("Did", AttrType::Int)
            .records(30_000.0)
            .blocks(3_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.relation("Div")
            .attr("Did", AttrType::Int)
            .attr("name", AttrType::Text)
            .attr("city", AttrType::Text)
            .records(5_000.0)
            .blocks(500.0)
            .update_frequency(1.0)
            .selectivity("city", 0.02)
            .finish()
            .unwrap();
        c.set_join_selectivity(
            AttrRef::new("Pd", "Did"),
            AttrRef::new("Div", "Did"),
            1.0 / 5_000.0,
        )
        .unwrap();
        c.set_size_override(
            [RelName::new("Pd"), RelName::new("Div")],
            RelationStats::new(30_000.0, 5_000.0),
        )
        .unwrap();
        c
    }

    fn tmp2() -> std::sync::Arc<Expr> {
        Expr::join(
            Expr::base("Pd"),
            Expr::select(
                Expr::base("Div"),
                Predicate::cmp(AttrRef::new("Div", "city"), CompareOp::Eq, "LA"),
            ),
            JoinCondition::on(AttrRef::new("Pd", "Did"), AttrRef::new("Div", "Did")),
        )
    }

    fn annotated() -> AnnotatedMvpp {
        let mut m = Mvpp::new();
        m.insert_query("Q1", 10.0, &tmp2());
        let catalog = catalog();
        let est = CostEstimator::new(
            &catalog,
            EstimationMode::Calibrated,
            PaperCostModel::default(),
        );
        AnnotatedMvpp::annotate(m, &est, UpdateWeighting::Max)
    }

    #[test]
    fn leaves_have_zero_ca() {
        let a = annotated();
        for leaf in a.mvpp().leaves() {
            assert_eq!(a.annotation(leaf).ca, 0.0);
            assert_eq!(a.annotation(leaf).cm, 0.0);
        }
    }

    #[test]
    fn ca_accumulates_over_the_dag() {
        let a = annotated();
        let join = a.mvpp().find(&tmp2()).unwrap();
        // σ costs 500, join costs 3000·10 + 100 = 30 100.
        assert_eq!(a.annotation(join).ca, 30_600.0);
        assert_eq!(a.annotation(join).op_cost, 30_100.0);
    }

    #[test]
    fn weights_follow_paper_formula() {
        let a = annotated();
        let join = a.mvpp().find(&tmp2()).unwrap();
        let ann = a.annotation(join);
        assert_eq!(ann.fq_weight, 10.0);
        assert_eq!(ann.fu_weight, 1.0);
        assert_eq!(ann.weight, 10.0 * 30_600.0 - 30_600.0);
    }

    #[test]
    fn weight_ordered_interior_is_descending() {
        let a = annotated();
        let lv = a.weight_ordered_interior();
        for pair in lv.windows(2) {
            assert!(a.annotation(pair[0]).weight >= a.annotation(pair[1]).weight);
        }
        // Only positive weights appear.
        for v in &lv {
            assert!(a.annotation(*v).weight > 0.0);
        }
    }

    #[test]
    fn sum_weighting_counts_each_base() {
        let mut m = Mvpp::new();
        m.insert_query("Q1", 10.0, &tmp2());
        let catalog = catalog();
        let est = CostEstimator::new(
            &catalog,
            EstimationMode::Calibrated,
            PaperCostModel::default(),
        );
        let a = AnnotatedMvpp::annotate(m, &est, UpdateWeighting::Sum);
        let join = a.mvpp().find(&tmp2()).unwrap();
        assert_eq!(a.annotation(join).fu_weight, 2.0);
    }

    #[test]
    fn dot_contains_ca_labels() {
        let a = annotated();
        assert!(a.to_dot("fig3").contains("Ca=30600"));
    }

    #[test]
    fn delta_cm_charges_delta_sized_work_plus_scan() {
        let a = annotated();
        let join = a.mvpp().find(&tmp2()).unwrap();
        let ann = a.annotation(join);
        // The join sits over two base relations (delta factor
        // 1.1² − 1 = 0.21), the σ below it over one (0.1); the stored view
        // is scanned once to fold the delta in.
        let want = (1.1f64.powi(2) - 1.0) * 30_100.0 + 0.1 * 500.0 + ann.scan;
        assert!(
            (ann.delta_cm - want).abs() < 1e-6,
            "{} vs {want}",
            ann.delta_cm
        );
        assert!(ann.delta_cm < ann.cm, "delta maintenance beats recompute");
        for leaf in a.mvpp().leaves() {
            assert_eq!(a.annotation(leaf).delta_cm, 0.0);
        }
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::mvpp::Mvpp;
    use mvdesign_algebra::{AttrRef, Expr, JoinCondition};
    use mvdesign_catalog::{AttrType, Catalog};
    use mvdesign_cost::{CostEstimator, EstimationMode, PaperCostModel};

    fn setup() -> (Catalog, Mvpp) {
        let mut c = Catalog::new();
        for name in ["A", "B"] {
            c.relation(name)
                .attr("k", AttrType::Int)
                .records(10_000.0)
                .blocks(1_000.0)
                .update_frequency(2.0)
                .finish()
                .unwrap();
        }
        let join = Expr::join(
            Expr::base("A"),
            Expr::base("B"),
            JoinCondition::on(AttrRef::new("A", "k"), AttrRef::new("B", "k")),
        );
        let mut m = Mvpp::new();
        m.insert_query("Q", 5.0, &join);
        (c, m)
    }

    #[test]
    fn incremental_policy_shrinks_cm_and_grows_weight() {
        let (c, m) = setup();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        let rec = AnnotatedMvpp::annotate_with(
            m.clone(),
            &est,
            UpdateWeighting::Max,
            MaintenancePolicy::Recompute,
        );
        let inc = AnnotatedMvpp::annotate_with(
            m,
            &est,
            UpdateWeighting::Max,
            MaintenancePolicy::Incremental {
                update_fraction: 0.1,
            },
        );
        let v = rec.mvpp().interior()[0];
        assert!(inc.annotation(v).cm < rec.annotation(v).cm);
        assert!(inc.annotation(v).weight > rec.annotation(v).weight);
        // Ca itself is policy-independent.
        assert_eq!(inc.annotation(v).ca, rec.annotation(v).ca);
    }

    #[test]
    fn incremental_cm_is_fraction_of_ca_plus_scan() {
        let (c, m) = setup();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        let a = AnnotatedMvpp::annotate_with(
            m,
            &est,
            UpdateWeighting::Max,
            MaintenancePolicy::Incremental {
                update_fraction: 0.25,
            },
        );
        let v = a.mvpp().interior()[0];
        let ann = a.annotation(v);
        assert!((ann.cm - (0.25 * ann.ca + ann.scan)).abs() < 1e-9);
    }

    #[test]
    fn update_fraction_is_clamped() {
        assert_eq!(
            MaintenancePolicy::Incremental {
                update_fraction: 7.0
            }
            .work_fraction(),
            1.0
        );
        assert_eq!(
            MaintenancePolicy::Incremental {
                update_fraction: -1.0
            }
            .work_fraction(),
            0.0
        );
        assert_eq!(MaintenancePolicy::Recompute.work_fraction(), 1.0);
    }

    #[test]
    fn leaves_have_zero_cm_under_every_policy() {
        let (c, m) = setup();
        let est = CostEstimator::new(&c, EstimationMode::Analytic, PaperCostModel::default());
        for policy in [
            MaintenancePolicy::Recompute,
            MaintenancePolicy::Incremental {
                update_fraction: 0.5,
            },
        ] {
            let a = AnnotatedMvpp::annotate_with(m.clone(), &est, UpdateWeighting::Max, policy);
            for leaf in a.mvpp().leaves() {
                assert_eq!(a.annotation(leaf).cm, 0.0, "{policy:?}");
            }
        }
    }
}
