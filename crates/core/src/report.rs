//! Human-readable reporting of a finished design: the chosen views, the
//! cost breakdown, and the greedy decision trace, rendered once here so the
//! CLI, examples and logs all agree.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::annotate::AnnotatedMvpp;
use crate::designer::DesignResult;
use crate::evaluate::{evaluate, MaintenanceMode};
use crate::greedy::{SelectionTrace, TraceVerdict};

/// Renders the §4.3-style decision trace of a greedy run.
///
/// Each step shows the node's label, its relations, the computed `Cs` and
/// the verdict, e.g.:
///
/// ```text
/// LV = ⟨tmp2[Customer⋈Order], tmp7[Division⋈Product], …⟩
/// tmp2     Cs =     43246800  materialize
/// tmp4     Cs =     -8987250  reject (prunes 2)
/// ```
pub fn render_trace(trace: &SelectionTrace, a: &AnnotatedMvpp) -> String {
    let mut out = String::new();
    let label = |id: crate::mvpp::NodeId| -> String {
        let node = a.mvpp().node(id);
        let rels: Vec<String> = node
            .expr()
            .base_relations()
            .into_iter()
            .map(|r| r.as_str().to_string())
            .collect();
        format!("{}[{}]", node.label(), rels.join("⋈"))
    };
    let lv: Vec<String> = trace.initial_lv.iter().map(|id| label(*id)).collect();
    let _ = writeln!(out, "LV = ⟨{}⟩", lv.join(", "));
    for step in &trace.steps {
        match &step.verdict {
            TraceVerdict::Materialized => {
                let _ = writeln!(out, "{:<9} Cs = {:>14.0}  materialize", step.label, step.cs);
            }
            TraceVerdict::Rejected { pruned } => {
                let _ = writeln!(
                    out,
                    "{:<9} Cs = {:>14.0}  reject (prunes {})",
                    step.label,
                    step.cs,
                    pruned.len()
                );
            }
            TraceVerdict::SkippedParentsMaterialized => {
                let _ = writeln!(
                    out,
                    "{:<9} parents already materialized — ignored",
                    step.label
                );
            }
            TraceVerdict::RemovedRedundant => {
                let _ = writeln!(
                    out,
                    "{:<9} all consumers materialized — dropped",
                    step.label
                );
            }
        }
    }
    out
}

/// Renders a complete design report: chosen views with build/read costs,
/// the cost breakdown, the comparison against materialize-nothing, and the
/// decision trace.
pub fn render_design(design: &DesignResult) -> String {
    let mut out = String::new();
    let a = &design.mvpp;
    let _ = writeln!(
        out,
        "design: {} view(s) from candidate MVPP #{} of {}",
        design.materialized.len(),
        design.candidate_index,
        design.candidate_costs.len()
    );
    for id in &design.materialized {
        let node = a.mvpp().node(*id);
        let ann = a.annotation(*id);
        let rels: Vec<String> = node
            .expr()
            .base_relations()
            .into_iter()
            .map(|r| r.as_str().to_string())
            .collect();
        let _ = writeln!(
            out,
            "  {:<8} over {:<32} build {:>14.0}  read {:>12.0}",
            node.label(),
            rels.join("⋈"),
            ann.ca,
            ann.scan
        );
    }
    let _ = writeln!(out, "cost per period (block accesses):");
    let _ = writeln!(
        out,
        "  query processing {:>16.0}",
        design.cost.query_processing
    );
    let _ = writeln!(out, "  view maintenance {:>16.0}", design.cost.maintenance);
    let _ = writeln!(out, "  total            {:>16.0}", design.cost.total);
    let none = evaluate(a, &BTreeSet::new(), MaintenanceMode::SharedRecompute);
    if none.total > 0.0 {
        let _ = writeln!(
            out,
            "  vs all-virtual   {:>16.0}  ({:.1}% saved)",
            none.total,
            100.0 * (none.total - design.cost.total) / none.total
        );
    }
    let _ = writeln!(out, "decision trace:");
    out.push_str(&render_trace(&design.trace, a));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designer::Designer;
    use crate::workload::Workload;
    use mvdesign_algebra::{parse_query_with, Query};
    use mvdesign_catalog::{AttrType, Catalog};

    fn design() -> DesignResult {
        let mut c = Catalog::new();
        c.relation("A")
            .attr("k", AttrType::Int)
            .records(10_000.0)
            .blocks(1_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        c.relation("B")
            .attr("k", AttrType::Int)
            .records(10_000.0)
            .blocks(1_000.0)
            .update_frequency(1.0)
            .finish()
            .unwrap();
        let q = parse_query_with("SELECT A.k FROM A, B WHERE A.k = B.k", &c).unwrap();
        let w = Workload::new([Query::new("hot", 40.0, q)]).unwrap();
        Designer::new().design(&c, &w).unwrap()
    }

    #[test]
    fn report_names_every_materialized_view() {
        let d = design();
        let text = render_design(&d);
        for id in &d.materialized {
            let label = d.mvpp.mvpp().node(*id).label().to_string();
            assert!(text.contains(&label), "missing {label} in:\n{text}");
        }
        assert!(text.contains("query processing"));
        assert!(text.contains("decision trace:"));
    }

    #[test]
    fn trace_rendering_shows_lv_and_verdicts() {
        let d = design();
        let text = render_trace(&d.trace, &d.mvpp);
        assert!(text.starts_with("LV = ⟨"), "{text}");
        assert!(
            text.contains("materialize") || text.contains("reject"),
            "{text}"
        );
    }

    #[test]
    fn report_includes_the_all_virtual_comparison() {
        let text = render_design(&design());
        assert!(text.contains("vs all-virtual"), "{text}");
        assert!(text.contains("% saved"), "{text}");
    }
}
